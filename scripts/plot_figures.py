#!/usr/bin/env python3
"""Plot the CSVs the figure binaries export to target/figures/.

Usage:
    # 1. regenerate the data
    cargo run --release -p lgv-bench --bin fig9   # …and the others
    # 2. plot everything found
    python3 scripts/plot_figures.py [target/figures] [out_dir]

Profile mode plots the wall-clock profile artifact instead (one
horizontal self-time bar chart per scenario, plus a coverage chart):

    cargo run --release -p lgv-bench --bin suite -- --quick --profile
    python3 scripts/plot_figures.py --profile BENCH_profile.json [out_dir]

Requires matplotlib (`pip install matplotlib`). The Rust side never
depends on this script — it is a convenience for eyeballing the shapes
against the paper's figures.
"""

import csv
import json
import pathlib
import sys


def read(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def numeric(cell):
    try:
        return float(cell.rstrip("x%"))
    except ValueError:
        return None


def plot_matrix(ax, header, rows, title):
    """Thread × sweep matrices (fig9/fig10): one line per column."""
    xs = [numeric(r[0]) for r in rows]
    for col in range(1, len(header)):
        ys = [numeric(r[col]) for r in rows]
        if any(y is None for y in ys):
            continue
        ax.plot(xs, ys, marker="o", label=header[col])
    ax.set_xlabel(header[0])
    ax.set_yscale("log")
    ax.set_title(title)
    ax.legend(fontsize=7)


def plot_trace(ax, header, rows, title, x_col, y_cols):
    xs = [numeric(r[x_col]) for r in rows]
    for col in y_cols:
        ys = [numeric(r[col]) for r in rows]
        pairs = [(x, y) for x, y in zip(xs, ys) if x is not None and y is not None]
        if not pairs:
            continue
        ax.plot([p[0] for p in pairs], [p[1] for p in pairs], label=header[col])
    ax.set_xlabel(header[x_col])
    ax.set_title(title)
    ax.legend(fontsize=7)


def plot_profile(path, out, plt):
    """BENCH_profile.json -> per-scenario self-time bars + coverage."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "lgv-bench-profile/v1":
        sys.exit(f"{path}: not a lgv-bench-profile/v1 artifact")
    made = []

    # Coverage overview: how much of each scenario's wall time the
    # instrumented scopes account for.
    scenarios = doc.get("scenarios", [])
    with_scopes = [s for s in scenarios if s.get("scopes")]
    fig, ax = plt.subplots(figsize=(7, 4), dpi=120)
    names = [s["name"] for s in scenarios]
    ax.bar(names, [100.0 * s.get("coverage", 0.0) for s in scenarios])
    ax.axhline(80, linestyle="--", linewidth=1, color="gray")
    ax.set_ylabel("profiled coverage (% of wall time)")
    ax.set_title("profile coverage per scenario (dashed: 80% target)")
    ax.tick_params(axis="x", rotation=45, labelsize=7)
    fig.tight_layout()
    target = out / "profile_coverage.png"
    fig.savefig(target)
    plt.close(fig)
    made.append(target)

    # Per-scenario self-time breakdown: horizontal bars, hottest scope
    # at the top, path labels as emitted (relative to the scenario).
    for s in with_scopes:
        rows = sorted(s["scopes"], key=lambda r: -r["self_ns"])[:12]
        fig, ax = plt.subplots(figsize=(7, 0.4 * len(rows) + 1.5), dpi=120)
        paths = [r["path"] for r in rows][::-1]
        ms = [r["self_ns"] / 1e6 for r in rows][::-1]
        ax.barh(paths, ms)
        ax.set_xlabel("self time (ms)")
        ax.set_title(f"{s['name']}: wall {s['wall_ms']:.1f} ms, "
                     f"coverage {100.0 * s.get('coverage', 0.0):.1f}%")
        ax.tick_params(axis="y", labelsize=7)
        fig.tight_layout()
        target = out / f"profile_{s['name']}.png"
        fig.savefig(target)
        plt.close(fig)
        made.append(target)
    return made


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--profile":
        if len(sys.argv) < 3:
            sys.exit("usage: plot_figures.py --profile BENCH_profile.json [out_dir]")
        prof = pathlib.Path(sys.argv[2])
        out = pathlib.Path(sys.argv[3] if len(sys.argv) > 3 else "target/figures")
        out.mkdir(parents=True, exist_ok=True)
        try:
            import matplotlib

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("matplotlib is required: pip install matplotlib")
        for p in plot_profile(prof, out, plt):
            print(p)
        return

    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "target/figures")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else src)
    if not src.is_dir():
        sys.exit(f"no CSV directory at {src}; run the figure binaries first")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    made = []
    for path in sorted(src.glob("*.csv")):
        header, rows = read(path)
        if not rows:
            continue
        fig, ax = plt.subplots(figsize=(6, 4), dpi=120)
        name = path.stem
        if name.startswith(("fig9", "fig10")):
            plot_matrix(ax, header, rows, name)
        elif name == "fig11_trace":
            plot_trace(ax, header, rows, name, 0, [2, 3])
        elif name == "fig12_vmax_series":
            plot_trace(ax, header, rows, name, 0, list(range(1, len(header))))
        else:
            # Generic: bar chart of the first numeric column per row.
            labels = [r[0] for r in rows]
            col = next(
                (c for c in range(1, len(header)) if numeric(rows[0][c]) is not None),
                None,
            )
            if col is None:
                plt.close(fig)
                continue
            ax.bar(labels, [numeric(r[col]) or 0.0 for r in rows])
            ax.set_ylabel(header[col])
            ax.set_title(name)
            ax.tick_params(axis="x", rotation=45, labelsize=7)
        fig.tight_layout()
        target = out / f"{name}.png"
        fig.savefig(target)
        plt.close(fig)
        made.append(target)

    for p in made:
        print(p)
    if not made:
        print("no plottable CSVs found")


if __name__ == "__main__":
    main()
