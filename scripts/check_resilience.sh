#!/usr/bin/env bash
# Resilience gate: the whole workspace must be clippy-clean with
# warnings denied, and the seeded chaos sweep must run end to end
# (randomized fault schedules + the scripted remote-crash showcase;
# see docs/RESILIENCE.md).
#
# Usage: ./scripts/check_resilience.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "== chaos smoke (quick mode, seeded) =="
LGV_BENCH_QUICK=1 cargo run -q -p lgv-bench --bin chaos

echo
echo "resilience OK"
