#!/usr/bin/env bash
# Recovery-SLO gate: diff the SLO lines of a quick-mode chaos-fleet
# run against the committed baseline (BENCH_recovery_baseline.txt) and
# fail when any arm's recovery SLO regressed. Invoked by
# scripts/ci.sh stage 6 after the quick chaos-fleet run has written
# target/BENCH_recovery.txt, and runnable on its own.
#
# The chaos-fleet scenario prints one machine-greppable line per arm:
#
#   SLO arm=<name> ttr_s=<secs|n/a> degraded_frac=<frac> missed=<n>
#
# All three values are measured on the virtual clock, so they are
# machine-independent and exactly reproducible; the tolerance exists
# to absorb deliberate small tuning changes, not hardware noise.
#
# What it checks, per arm present in BOTH files:
#   - ttr_s (mean heartbeat-miss -> re-offload latency): regressing
#     beyond the tolerance fails; so does an arm losing its measurement
#     (numeric in the baseline, n/a now) or gaining one unexpectedly.
#   - degraded_frac (fraction of the trace spent at reduced fidelity):
#     regressing beyond the tolerance fails.
#   - missed (control cycles dropped while degraded): any increase
#     fails — degraded mode exists precisely to keep this at zero.
# Arms only in one file are reported (registry drift) but do not fail
# the gate; the suite's own artifact-freshness test owns that.
#
# Tunables (environment):
#   LGV_RECOVERY_TOLERANCE  fractional regression allowed (default 0.10)
#   LGV_RECOVERY_SKIP=1     skip the gate entirely
#
# Regenerate the baseline (and commit) after deliberate changes with:
#   LGV_BENCH_QUICK=1 ./target/release/chaos_fleet \
#       | grep '^SLO ' > BENCH_recovery_baseline.txt
#
# Usage: ./scripts/check_recovery.sh [current.txt] [baseline.txt]
set -euo pipefail
cd "$(dirname "$0")/.."

current="${1:-target/BENCH_recovery.txt}"
baseline="${2:-BENCH_recovery_baseline.txt}"
tolerance="${LGV_RECOVERY_TOLERANCE:-0.10}"

if [ "${LGV_RECOVERY_SKIP:-0}" = "1" ]; then
    echo "recovery gate skipped (LGV_RECOVERY_SKIP=1)"
    exit 0
fi
[ -f "$current" ] || { echo "missing current output $current (run the quick chaos-fleet first)"; exit 1; }
[ -f "$baseline" ] || { echo "missing committed baseline $baseline"; exit 1; }

extract() {
    grep -E '^SLO arm=' "$1" \
        | sed -E 's/^SLO arm=([^ ]+) ttr_s=([^ ]+) degraded_frac=([^ ]+) missed=([0-9]+)$/\1 \2 \3 \4/'
}

mkdir -p target
extract "$current"  > target/recovery_current.tsv
extract "$baseline" > target/recovery_baseline.tsv
[ -s target/recovery_current.tsv ] || { echo "$current: no SLO lines parsed"; exit 1; }
[ -s target/recovery_baseline.tsv ] || { echo "$baseline: no SLO lines parsed"; exit 1; }

awk -v tol="$tolerance" '
    NR == FNR { base_ttr[$1] = $2; base_frac[$1] = $3; base_miss[$1] = $4; next }
    {
        name = $1; ttr = $2; frac = $3; miss = $4; seen[name] = 1
        if (!(name in base_ttr)) {
            printf "  new arm (not in baseline):  %s\n", name
            next
        }
        if (ttr == "n/a" && base_ttr[name] != "n/a") {
            printf "  SLO REGRESSION:  %-20s lost its ttr measurement (was %s s)\n", name, base_ttr[name]
            bad = 1; bad_for_name[name] = 1
        } else if (ttr != "n/a" && base_ttr[name] == "n/a") {
            printf "  SLO DRIFT:       %-20s gained a ttr measurement (%s s); regenerate the baseline\n", name, ttr
            bad = 1; bad_for_name[name] = 1
        } else if (ttr != "n/a" && ttr + 0 > (base_ttr[name] + 0) * (1 + tol)) {
            printf "  SLO REGRESSION:  %-20s ttr %s s -> %s s (tol %.0f%%)\n", name, base_ttr[name], ttr, tol * 100
            bad = 1; bad_for_name[name] = 1
        }
        if (frac + 0 > (base_frac[name] + 0) * (1 + tol) + 0.01) {
            printf "  SLO REGRESSION:  %-20s degraded_frac %s -> %s (tol %.0f%%)\n", name, base_frac[name], frac, tol * 100
            bad = 1; bad_for_name[name] = 1
        }
        if (miss + 0 > base_miss[name] + 0) {
            printf "  SLO REGRESSION:  %-20s missed cycles %s -> %s (zero tolerance)\n", name, base_miss[name], miss
            bad = 1; bad_for_name[name] = 1
        }
        if (!bad_for_name[name]) printf "  ok: %-20s ttr %s s, degraded %s, missed %s\n", name, ttr, frac, miss
    }
    END {
        for (name in base_ttr) if (!(name in seen))
            printf "  arm dropped from current run: %s\n", name
        exit bad ? 1 : 0
    }
' target/recovery_baseline.tsv target/recovery_current.tsv \
    || { echo "recovery gate FAILED (baseline $baseline, tolerance ${tolerance})"; exit 1; }

echo "recovery gate OK (tolerance ${tolerance})"
