#!/usr/bin/env bash
# The unified CI gate. Runs every check the repo enforces, in the same
# order the GitHub workflow does (.github/workflows/ci.yml invokes this
# script verbatim), so a clean local run means a green CI run.
#
# Stages (see docs/CI.md for the full description):
#   1. build        — cargo build --release, whole workspace
#   2. tests        — cargo test -q (unit + integration, all crates)
#   3. clippy       — warnings denied, all targets
#   4. fmt          — rustfmt --check
#   5. docs         — rustdoc warnings denied + doctests + trace
#                     schema-drift check (event.rs vs OBSERVABILITY.md)
#   6. suite gate   — release-mode quick run of the full evaluation
#                     suite: every scenario must succeed, and the
#                     parallel fan-out must be byte-identical to serial
#                     (the #[ignore]d all-scenario determinism test);
#                     plus the recovery-SLO gate: a quick chaos-fleet
#                     run vs the committed BENCH_recovery_baseline.txt
#   7. perf gate    — scripts/check_perf.sh: the stage-6 artifact vs
#                     the committed BENCH_baseline_quick.json — fails
#                     on >15% per-scenario wall-time regressions and
#                     on checksum drift
#
# Everything is hermetic: dependencies are the in-tree shims under
# crates/shims/, so no stage touches the network.
#
# Usage: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/7 cargo build --release =="
cargo build --release --workspace

echo
echo "== 2/7 cargo test =="
cargo test -q --workspace

echo
echo "== 3/7 cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "== 4/7 cargo fmt --check =="
cargo fmt --all -- --check

echo
echo "== 5/7 docs (rustdoc warnings denied, doctests, schema drift) =="
./scripts/check_docs.sh

echo
echo "== 6/7 evaluation-suite gate (quick, all scenarios) =="
# Full fan-out in quick mode: exercises every scenario (including the
# chaos sweep the old resilience gate ran) and writes the JSON
# artifact. A non-zero exit means some scenario failed.
LGV_BENCH_QUICK=1 ./target/release/suite --threads 4 --out target/BENCH_ci.json
# Byte-identical parallel vs serial across every scenario, in release
# mode (too slow for the default debug-mode test run, hence #[ignore]).
cargo test --release -q -p lgv-bench --test suite -- --ignored --nocapture
# Fleet multi-tenancy determinism: a fleet of four on one shared box,
# run twice, must agree on every per-vehicle fingerprint and every
# shared-resource counter (and a fleet of one must stay byte-identical
# to the single-vehicle runner — asserted by the same test file). The
# same run covers the elastic-cloud gates: elastic fleets are
# reproducible, batch same-stage work, and queue no worse than fixed.
cargo test --release -q -p lgv-offload --test fleet -- --include-ignored
# Elastic-fleet quick job: the elasticity ablation on its own, so a
# regression in the elastic scheduler fails fast with readable output.
LGV_BENCH_QUICK=1 ./target/release/suite --threads 2 --only elastic-fleet \
    --out target/BENCH_elastic.json
# Chaos-fleet quick job + recovery-SLO gate: the SLO lines from a
# quick chaos-fleet run (time-to-recover, degraded fraction, missed
# cycles — all virtual-clock, machine-independent) are diffed against
# the committed baseline. Set LGV_RECOVERY_SKIP=1 to bypass.
LGV_BENCH_QUICK=1 ./target/release/chaos_fleet > target/BENCH_recovery.txt
./scripts/check_recovery.sh target/BENCH_recovery.txt BENCH_recovery_baseline.txt
# Artifact freshness: the committed BENCH_suite.json must already list
# the newest scenarios (regenerate it after registry changes — the
# suite test `committed_bench_artifact_matches_registry` checks every
# scenario; this is the fast, explicit guard for the newest ones).
grep -q '"name": "elastic-fleet"' BENCH_suite.json \
    || { echo "BENCH_suite.json is stale: missing elastic-fleet"; exit 1; }
grep -q '"name": "chaos-fleet"' BENCH_suite.json \
    || { echo "BENCH_suite.json is stale: missing chaos-fleet"; exit 1; }

echo
echo "== 7/7 perf-regression gate (vs committed quick baseline) =="
# Diffs the stage-6 quick artifact against BENCH_baseline_quick.json:
# >15% per-scenario wall-time regression or any checksum drift fails.
# Set LGV_PERF_SKIP=1 on hardware slower than the baseline machine.
./scripts/check_perf.sh target/BENCH_ci.json BENCH_baseline_quick.json

echo
echo "CI gate OK"
