#!/usr/bin/env bash
# The unified CI gate. Runs every check the repo enforces; the GitHub
# workflow (.github/workflows/ci.yml) runs the same stages split across
# parallel jobs via LGV_CI_STAGES, so a clean local run of the full
# script means a green CI run.
#
# Stages (see docs/CI.md for the full description):
#   build   — cargo build --release, whole workspace
#   tests   — cargo test -q (unit + integration, all crates)
#   clippy  — warnings denied, all targets
#   fmt     — rustfmt --check
#   docs    — rustdoc warnings denied + doctests + trace schema-drift
#             check (event.rs vs OBSERVABILITY.md)
#   suite   — release-mode quick run of the full evaluation suite
#             (every scenario must succeed; writes BENCH_ci.json and
#             the wall-clock profile BENCH_profile.json), the
#             parallel-vs-serial and sharded-fleet determinism gates,
#             the elastic-fleet and chaos-fleet quick jobs, and the
#             registry-driven artifact-freshness check
#   perf    — scripts/check_perf.sh: the suite-stage artifact vs the
#             committed BENCH_baseline_quick.json — fails on >15%
#             per-scenario wall-time regressions and checksum drift
#   noprof  — rebuild the suite with the profiler compiled out
#             (--no-default-features) and verify quick-run checksums
#             still match the committed baseline: tracing must be
#             observability, never physics
#
# Stage selection: set LGV_CI_STAGES to a comma- or space-separated
# subset (e.g. LGV_CI_STAGES=clippy,fmt,docs ./scripts/ci.sh). Stages
# always run in the canonical order above regardless of the order
# named. Per-stage wall-clock timings are printed at the end.
#
# Everything is hermetic: dependencies are the in-tree shims under
# crates/shims/, so no stage touches the network.
#
# Usage: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES="build tests clippy fmt docs suite perf noprof"
SELECT="${LGV_CI_STAGES:-$ALL_STAGES}"
SELECT="${SELECT//,/ }"
for s in $SELECT; do
    case " $ALL_STAGES " in
        *" $s "*) ;;
        *) echo "unknown stage '$s' in LGV_CI_STAGES (known: $ALL_STAGES)"; exit 1 ;;
    esac
done

stage_enabled() {
    local s
    for s in $SELECT; do [ "$s" = "$1" ] && return 0; done
    return 1
}

TIMINGS=""
run_stage() { # run_stage <name> <description>
    local name="$1" desc="$2" t0 t1
    stage_enabled "$name" || return 0
    echo
    echo "== $name: $desc =="
    t0=$SECONDS
    "stage_$name"
    t1=$SECONDS
    TIMINGS="$TIMINGS$(printf '  %-8s %5ds' "$name" "$((t1 - t0))")"$'\n'
}

stage_build() {
    cargo build --release --workspace
}

stage_tests() {
    cargo test -q --workspace
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --all -- --check
}

stage_docs() {
    ./scripts/check_docs.sh
}

stage_suite() {
    # Full fan-out in quick mode: exercises every scenario (including
    # the chaos sweep the old resilience gate ran) and writes the JSON
    # artifact plus the wall-clock scope profile. A non-zero exit
    # means some scenario failed.
    LGV_BENCH_QUICK=1 ./target/release/suite --threads 4 \
        --out target/BENCH_ci.json \
        --profile --profile-out target/BENCH_profile.json
    # Byte-identical parallel vs serial across every scenario, in
    # release mode (too slow for the default debug-mode test run,
    # hence #[ignore]).
    cargo test --release -q -p lgv-bench --test suite -- --ignored --nocapture
    # Fleet multi-tenancy determinism: a fleet of four on one shared
    # box, run twice, must agree on every per-vehicle fingerprint and
    # every shared-resource counter (and a fleet of one must stay
    # byte-identical to the single-vehicle runner). The same run
    # covers the elastic-cloud gates and the regional-sharding gates:
    # a sharded fleet's report is byte-identical at thread counts
    # 1/2/8, and a 1-region topology matches the unsharded driver.
    cargo test --release -q -p lgv-offload --test fleet -- --include-ignored
    # Elastic-fleet quick job: the elasticity ablation on its own, so
    # a regression in the elastic scheduler fails fast with readable
    # output.
    LGV_BENCH_QUICK=1 ./target/release/suite --threads 2 --only elastic-fleet \
        --out target/BENCH_elastic.json
    # Chaos-fleet quick job + recovery-SLO gate: the SLO lines from a
    # quick chaos-fleet run (time-to-recover, degraded fraction,
    # missed cycles — all virtual-clock, machine-independent) are
    # diffed against the committed baseline. LGV_RECOVERY_SKIP=1
    # bypasses.
    LGV_BENCH_QUICK=1 ./target/release/chaos_fleet > target/BENCH_recovery.txt
    ./scripts/check_recovery.sh target/BENCH_recovery.txt BENCH_recovery_baseline.txt
    # Artifact freshness: the committed BENCH_suite.json must list
    # exactly the registered scenario set — no stale names, no missing
    # ones. Registry-driven, so adding a scenario without regenerating
    # the artifact fails here without any script edit.
    diff <(./target/release/suite --list-names | sort) \
         <(grep -oE '"name": "[^"]+"' BENCH_suite.json \
               | sed -E 's/"name": "([^"]+)"/\1/' | sort) \
        || { echo "BENCH_suite.json is stale: scenario set differs from the registry (regenerate with ./target/release/suite --out BENCH_suite.json)"; exit 1; }
}

stage_perf() {
    # Diffs the suite-stage quick artifact against the committed
    # baseline: >15% per-scenario wall-time regression or any checksum
    # drift fails. Set LGV_PERF_SKIP=1 on hardware slower than the
    # baseline machine.
    ./scripts/check_perf.sh target/BENCH_ci.json BENCH_baseline_quick.json
}

stage_noprof() {
    # Profiler-off control build in its own target dir (keeps the
    # default build's cache intact), then a checksum-only comparison
    # against the committed baseline: an effectively infinite wall
    # tolerance leaves checksum drift as the only failure mode, so
    # this gate proves compiling the profiler out changes no output
    # byte.
    CARGO_TARGET_DIR=target/noprof cargo build --release -p lgv-bench \
        --no-default-features --bin suite
    LGV_BENCH_QUICK=1 ./target/noprof/release/suite --threads 4 \
        --no-history --out target/BENCH_noprof.json
    LGV_PERF_TOLERANCE=1000 ./scripts/check_perf.sh \
        target/BENCH_noprof.json BENCH_baseline_quick.json
}

run_stage build  "cargo build --release"
run_stage tests  "cargo test"
run_stage clippy "cargo clippy (warnings denied)"
run_stage fmt    "cargo fmt --check"
run_stage docs   "docs (rustdoc warnings denied, doctests, schema drift)"
run_stage suite  "evaluation-suite gate (quick, all scenarios)"
run_stage perf   "perf-regression gate (vs committed quick baseline)"
run_stage noprof "no-prof control build (checksum identity)"

echo
echo "stage timings:"
printf '%s' "$TIMINGS"
echo "CI gate OK ($(echo "$SELECT" | wc -w | tr -d ' ') stage(s))"
