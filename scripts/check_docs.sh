#!/usr/bin/env bash
# Documentation gate: rustdoc warnings denied, doctests, and the trace
# schema-drift check. Invoked by scripts/ci.sh stage 5 and runnable on
# its own.
#
# The schema-drift check keeps docs/OBSERVABILITY.md honest: every
# event kind the code can emit (the match arms of TraceEvent::kind(),
# including `cloud_batch` / `cloud_scale` from the elastic cloud tier)
# must appear as a row in the doc's event-schema tables, and vice
# versa. It is generic over the kind list, so adding an event without
# documenting it — or documenting one that does not exist — fails CI.
#
# Usage: ./scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "-- rustdoc (warnings denied) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo test --doc --workspace -q

echo "-- trace schema drift (event.rs vs docs/OBSERVABILITY.md)"
# Kinds the code can emit: the match arms of TraceEvent::kind().
code_kinds=$(sed -n '/fn kind(/,/^    }$/p' crates/trace/src/event.rs \
    | grep -oE '=> "[a-z_]+"' | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
# Kinds documented in the event-schema tables (first backticked cell
# of each row between the Event schema and Metrics registry headings).
doc_kinds=$(sed -n '/^## Event schema/,/^## Metrics registry/p' docs/OBSERVABILITY.md \
    | grep -oE '^\| `[a-z_]+` \|' | grep -oE '`[a-z_]+`' | tr -d '`' | sort -u)
if ! diff <(echo "$code_kinds") <(echo "$doc_kinds") >/dev/null; then
    echo "event kinds out of sync (< code only, > docs only):"
    diff <(echo "$code_kinds") <(echo "$doc_kinds") | grep '^[<>]' || true
    exit 1
fi
echo "$(echo "$code_kinds" | wc -l) kinds documented, no drift"

echo "-- bench artifact schema drift (suite.rs vs docs/CI.md)"
# Every schema tag the suite serializers emit (lgv-bench-suite/vN,
# lgv-bench-profile/vN, lgv-bench-history/vN) must be the version
# documented in docs/CI.md, and vice versa — bumping a serializer
# without touching the docs (or the other way round) fails CI.
code_schemas=$(grep -oE 'lgv-bench-[a-z]+/v[0-9]+' crates/bench/src/suite.rs | sort -u)
doc_schemas=$(grep -oE 'lgv-bench-[a-z]+/v[0-9]+' docs/CI.md | sort -u)
if ! diff <(echo "$code_schemas") <(echo "$doc_schemas") >/dev/null; then
    echo "bench artifact schemas out of sync (< code only, > docs only):"
    diff <(echo "$code_schemas") <(echo "$doc_schemas") | grep '^[<>]' || true
    exit 1
fi
echo "$(echo "$code_schemas" | wc -l) artifact schemas documented, no drift"

echo "-- cross-linked docs exist"
# The navigable doc set (README -> ARCHITECTURE -> subsystem docs);
# a missing file here means a dangling link somewhere.
for doc in docs/ARCHITECTURE.md docs/FLEET.md docs/OBSERVABILITY.md \
    docs/RESILIENCE.md docs/POLICY.md docs/CI.md; do
    [ -f "$doc" ] || { echo "missing $doc"; exit 1; }
done
grep -q 'docs/ARCHITECTURE.md' README.md \
    || { echo "README.md does not link docs/ARCHITECTURE.md"; exit 1; }

echo "docs OK"
