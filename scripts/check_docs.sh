#!/usr/bin/env bash
# Documentation gate: the API docs must build without a single rustdoc
# warning (broken intra-doc links are denied per-crate, everything else
# via RUSTDOCFLAGS), and every doctest must pass.
#
# Usage: ./scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo
echo "== cargo test --doc =="
cargo test --doc --workspace

echo
echo "== trace schema drift (event.rs vs OBSERVABILITY.md) =="
# Kinds the code can emit: the match arms of TraceEvent::kind().
code_kinds=$(sed -n '/fn kind(/,/^    }$/p' crates/trace/src/event.rs \
    | grep -oE '=> "[a-z_]+"' | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
# Kinds documented in the event-schema tables (first backticked cell
# of each row between the Event schema and Metrics registry headings).
doc_kinds=$(sed -n '/^## Event schema/,/^## Metrics registry/p' docs/OBSERVABILITY.md \
    | grep -oE '^\| `[a-z_]+` \|' | grep -oE '`[a-z_]+`' | tr -d '`' | sort -u)
if ! diff <(echo "$code_kinds") <(echo "$doc_kinds") >/dev/null; then
    echo "event kinds out of sync (< code only, > docs only):"
    diff <(echo "$code_kinds") <(echo "$doc_kinds") | grep '^[<>]' || true
    exit 1
fi
echo "$(echo "$code_kinds" | wc -l) kinds documented, no drift"

echo
echo "docs OK"
