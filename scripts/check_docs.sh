#!/usr/bin/env bash
# Documentation gate: the API docs must build without a single rustdoc
# warning (broken intra-doc links are denied per-crate, everything else
# via RUSTDOCFLAGS), and every doctest must pass.
#
# Usage: ./scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo
echo "== cargo test --doc =="
cargo test --doc --workspace

echo
echo "docs OK"
