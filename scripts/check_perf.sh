#!/usr/bin/env bash
# Perf-regression gate: diff the latest quick-mode suite artifact
# against the committed baseline (BENCH_baseline_quick.json) and fail
# when any scenario's wall time regressed by more than the tolerance.
# Invoked by scripts/ci.sh stage 7 after the stage-6 quick run has
# written target/BENCH_ci.json, and runnable on its own.
#
# What it checks, per scenario present in BOTH files:
#   - checksum equality (quick vs quick): a checksum change is NOT a
#     perf regression — it means outputs drifted, and the baseline must
#     be regenerated deliberately. Hard failure.
#   - wall_ms ratio: current > baseline * (1 + tolerance) fails, but
#     only for scenarios above the absolute floor — sub-100ms jobs are
#     dominated by noise, not by the kernels we track.
# Scenarios only in one file are reported (registry drift) but do not
# fail the gate; the suite's own artifact-freshness test owns that.
#
# Tunables (environment):
#   LGV_PERF_TOLERANCE  fractional regression allowed (default 0.15)
#   LGV_PERF_FLOOR_MS   ignore scenarios under this baseline wall time
#                       (default 100)
#   LGV_PERF_SKIP=1     skip the gate entirely (e.g. on a machine
#                       known to be slower than the baseline's)
#
# Wall time is machine-dependent: the committed baseline is only
# meaningful against comparable hardware. Regenerate it (and commit)
# with:
#   LGV_BENCH_QUICK=1 ./target/release/suite --threads 4 \
#       --out BENCH_baseline_quick.json --no-history
#
# Usage: ./scripts/check_perf.sh [current.json] [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

current="${1:-target/BENCH_ci.json}"
baseline="${2:-BENCH_baseline_quick.json}"
tolerance="${LGV_PERF_TOLERANCE:-0.15}"
floor_ms="${LGV_PERF_FLOOR_MS:-100}"

if [ "${LGV_PERF_SKIP:-0}" = "1" ]; then
    echo "perf gate skipped (LGV_PERF_SKIP=1)"
    exit 0
fi
[ -f "$current" ] || { echo "missing current artifact $current (run the quick suite first)"; exit 1; }
[ -f "$baseline" ] || { echo "missing committed baseline $baseline"; exit 1; }

for f in "$current" "$baseline"; do
    grep -q '"schema": "lgv-bench-suite/v3"' "$f" \
        || { echo "$f: not a lgv-bench-suite/v3 artifact"; exit 1; }
    grep -q '"quick": true' "$f" \
        || { echo "$f: perf gate compares quick runs only"; exit 1; }
done

# The artifact serializes one scenario object per line with fixed key
# order (to_json in crates/bench/src/suite.rs), so field extraction is
# a matter of matching `"key": value` pairs on scenario lines.
extract() {
    grep -oE '\{"name": "[^"]+", "seed": [0-9]+, "wall_ms": [0-9.]+, .*"checksum": "[^"]+"' "$1" \
        | sed -E 's/\{"name": "([^"]+)", "seed": [0-9]+, "wall_ms": ([0-9.]+), .*"checksum": "([^"]+)"/\1 \2 \3/'
}

extract "$current"  > target/perf_current.tsv
extract "$baseline" > target/perf_baseline.tsv
[ -s target/perf_current.tsv ] || { echo "$current: no scenario rows parsed"; exit 1; }
[ -s target/perf_baseline.tsv ] || { echo "$baseline: no scenario rows parsed"; exit 1; }

awk -v tol="$tolerance" -v floor="$floor_ms" '
    NR == FNR { base_ms[$1] = $2; base_ck[$1] = $3; next }
    {
        name = $1; ms = $2; ck = $3; seen[name] = 1
        if (!(name in base_ms)) {
            printf "  new scenario (not in baseline):   %-15s %10.1f ms\n", name, ms
            next
        }
        if (ck != base_ck[name]) {
            printf "  CHECKSUM DRIFT:                   %-15s %s -> %s\n", name, base_ck[name], ck
            printf "    (outputs changed; regenerate BENCH_baseline_quick.json deliberately)\n"
            bad = 1
            next
        }
        ratio = base_ms[name] > 0 ? ms / base_ms[name] : 1
        if (base_ms[name] >= floor && ratio > 1 + tol) {
            printf "  PERF REGRESSION:                  %-15s %10.1f ms -> %10.1f ms (%+.0f%%, tol %.0f%%)\n", \
                name, base_ms[name], ms, (ratio - 1) * 100, tol * 100
            bad = 1
        } else {
            printf "  ok: %-31s %10.1f ms -> %10.1f ms (%+.0f%%)\n", \
                name, base_ms[name], ms, (ratio - 1) * 100
        }
    }
    END {
        for (name in base_ms) if (!(name in seen))
            printf "  scenario dropped from current run: %s\n", name
        exit bad ? 1 : 0
    }
' target/perf_baseline.tsv target/perf_current.tsv \
    || { echo "perf gate FAILED (baseline $baseline, tolerance ${tolerance})"; exit 1; }

echo "perf gate OK (tolerance ${tolerance}, floor ${floor_ms} ms)"
