/root/repo/target/release/deps/fig13-d68f0ef9cb13d323.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-d68f0ef9cb13d323: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
