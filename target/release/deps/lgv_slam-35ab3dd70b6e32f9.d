/root/repo/target/release/deps/lgv_slam-35ab3dd70b6e32f9.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/release/deps/lgv_slam-35ab3dd70b6e32f9: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
