/root/repo/target/release/deps/lgv_net-ba410503fdbac9dc.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/release/deps/lgv_net-ba410503fdbac9dc: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
