/root/repo/target/release/deps/parking_lot-89a7eb2221bc6325.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-89a7eb2221bc6325.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-89a7eb2221bc6325.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
