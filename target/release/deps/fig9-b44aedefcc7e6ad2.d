/root/repo/target/release/deps/fig9-b44aedefcc7e6ad2.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-b44aedefcc7e6ad2: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
