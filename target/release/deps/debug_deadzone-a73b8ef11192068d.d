/root/repo/target/release/deps/debug_deadzone-a73b8ef11192068d.d: crates/bench/src/bin/debug_deadzone.rs

/root/repo/target/release/deps/debug_deadzone-a73b8ef11192068d: crates/bench/src/bin/debug_deadzone.rs

crates/bench/src/bin/debug_deadzone.rs:
