/root/repo/target/release/deps/lgv_nav-0b7542eb78599c44.d: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/release/deps/lgv_nav-0b7542eb78599c44: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

crates/nav/src/lib.rs:
crates/nav/src/amcl.rs:
crates/nav/src/costmap.rs:
crates/nav/src/dwa.rs:
crates/nav/src/frontier.rs:
crates/nav/src/global_planner.rs:
crates/nav/src/velocity_mux.rs:
