/root/repo/target/release/deps/serde_derive-df03cdb3afb4c3f5.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-df03cdb3afb4c3f5: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
