/root/repo/target/release/deps/fig14-5162274a8b2c2113.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-5162274a8b2c2113: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
