/root/repo/target/release/deps/criterion-0b7bc2120589e043.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-0b7bc2120589e043: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
