/root/repo/target/release/deps/end_to_end-3ea14be7837bcc69.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-3ea14be7837bcc69: tests/end_to_end.rs

tests/end_to_end.rs:
