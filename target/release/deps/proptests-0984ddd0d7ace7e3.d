/root/repo/target/release/deps/proptests-0984ddd0d7ace7e3.d: crates/middleware/tests/proptests.rs

/root/repo/target/release/deps/proptests-0984ddd0d7ace7e3: crates/middleware/tests/proptests.rs

crates/middleware/tests/proptests.rs:
