/root/repo/target/release/deps/table2-c9e2b494a6a19388.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c9e2b494a6a19388: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
