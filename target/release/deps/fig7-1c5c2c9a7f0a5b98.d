/root/repo/target/release/deps/fig7-1c5c2c9a7f0a5b98.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-1c5c2c9a7f0a5b98: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
