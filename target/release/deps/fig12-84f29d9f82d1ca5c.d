/root/repo/target/release/deps/fig12-84f29d9f82d1ca5c.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-84f29d9f82d1ca5c: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
