/root/repo/target/release/deps/fig13-c98739ea0255189f.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-c98739ea0255189f: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
