/root/repo/target/release/deps/proptests-885d11010c0319a9.d: crates/slam/tests/proptests.rs

/root/repo/target/release/deps/proptests-885d11010c0319a9: crates/slam/tests/proptests.rs

crates/slam/tests/proptests.rs:
