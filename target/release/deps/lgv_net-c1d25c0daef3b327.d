/root/repo/target/release/deps/lgv_net-c1d25c0daef3b327.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/release/deps/liblgv_net-c1d25c0daef3b327.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/release/deps/liblgv_net-c1d25c0daef3b327.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
