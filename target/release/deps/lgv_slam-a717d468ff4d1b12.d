/root/repo/target/release/deps/lgv_slam-a717d468ff4d1b12.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/release/deps/liblgv_slam-a717d468ff4d1b12.rlib: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/release/deps/liblgv_slam-a717d468ff4d1b12.rmeta: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
