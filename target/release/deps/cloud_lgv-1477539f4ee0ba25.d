/root/repo/target/release/deps/cloud_lgv-1477539f4ee0ba25.d: src/lib.rs

/root/repo/target/release/deps/libcloud_lgv-1477539f4ee0ba25.rlib: src/lib.rs

/root/repo/target/release/deps/libcloud_lgv-1477539f4ee0ba25.rmeta: src/lib.rs

src/lib.rs:
