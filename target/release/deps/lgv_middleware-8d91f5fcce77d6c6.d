/root/repo/target/release/deps/lgv_middleware-8d91f5fcce77d6c6.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/release/deps/liblgv_middleware-8d91f5fcce77d6c6.rlib: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/release/deps/liblgv_middleware-8d91f5fcce77d6c6.rmeta: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
