/root/repo/target/release/deps/lgv_middleware-56653cefe66c6d17.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/release/deps/lgv_middleware-56653cefe66c6d17: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
