/root/repo/target/release/deps/proptests-cb721da5c0e1f2de.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-cb721da5c0e1f2de: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
