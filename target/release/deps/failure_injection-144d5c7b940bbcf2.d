/root/repo/target/release/deps/failure_injection-144d5c7b940bbcf2.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-144d5c7b940bbcf2: tests/failure_injection.rs

tests/failure_injection.rs:
