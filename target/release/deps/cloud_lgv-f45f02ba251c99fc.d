/root/repo/target/release/deps/cloud_lgv-f45f02ba251c99fc.d: src/lib.rs

/root/repo/target/release/deps/cloud_lgv-f45f02ba251c99fc: src/lib.rs

src/lib.rs:
