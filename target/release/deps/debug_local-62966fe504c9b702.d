/root/repo/target/release/deps/debug_local-62966fe504c9b702.d: crates/bench/src/bin/debug_local.rs

/root/repo/target/release/deps/debug_local-62966fe504c9b702: crates/bench/src/bin/debug_local.rs

crates/bench/src/bin/debug_local.rs:
