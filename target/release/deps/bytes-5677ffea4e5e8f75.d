/root/repo/target/release/deps/bytes-5677ffea4e5e8f75.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-5677ffea4e5e8f75: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
