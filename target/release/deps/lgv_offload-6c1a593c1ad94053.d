/root/repo/target/release/deps/lgv_offload-6c1a593c1ad94053.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/controller.rs crates/core/src/deploy.rs crates/core/src/governor.rs crates/core/src/migration.rs crates/core/src/mission.rs crates/core/src/model.rs crates/core/src/netctl.rs crates/core/src/profiler.rs crates/core/src/strategy.rs

/root/repo/target/release/deps/lgv_offload-6c1a593c1ad94053: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/controller.rs crates/core/src/deploy.rs crates/core/src/governor.rs crates/core/src/migration.rs crates/core/src/mission.rs crates/core/src/model.rs crates/core/src/netctl.rs crates/core/src/profiler.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/controller.rs:
crates/core/src/deploy.rs:
crates/core/src/governor.rs:
crates/core/src/migration.rs:
crates/core/src/mission.rs:
crates/core/src/model.rs:
crates/core/src/netctl.rs:
crates/core/src/profiler.rs:
crates/core/src/strategy.rs:
