/root/repo/target/release/deps/rand-fae6612020fa8b33.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-fae6612020fa8b33: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
