/root/repo/target/release/deps/lgv_net-7f00f1e756b98794.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/release/deps/liblgv_net-7f00f1e756b98794.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/release/deps/liblgv_net-7f00f1e756b98794.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
