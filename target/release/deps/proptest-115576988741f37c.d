/root/repo/target/release/deps/proptest-115576988741f37c.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/release/deps/proptest-115576988741f37c: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
crates/shims/proptest/src/arbitrary.rs:
