/root/repo/target/release/deps/ablations-7b69d94ba6f71ad1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7b69d94ba6f71ad1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
