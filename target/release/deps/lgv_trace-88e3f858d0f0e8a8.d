/root/repo/target/release/deps/lgv_trace-88e3f858d0f0e8a8.d: crates/trace/src/lib.rs

/root/repo/target/release/deps/lgv_trace-88e3f858d0f0e8a8: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
