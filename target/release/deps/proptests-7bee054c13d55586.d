/root/repo/target/release/deps/proptests-7bee054c13d55586.d: crates/net/tests/proptests.rs

/root/repo/target/release/deps/proptests-7bee054c13d55586: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
