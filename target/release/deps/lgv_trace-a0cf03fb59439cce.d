/root/repo/target/release/deps/lgv_trace-a0cf03fb59439cce.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/liblgv_trace-a0cf03fb59439cce.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/liblgv_trace-a0cf03fb59439cce.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
