/root/repo/target/release/deps/parking_lot-8ac7b53ced1561da.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-8ac7b53ced1561da: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
