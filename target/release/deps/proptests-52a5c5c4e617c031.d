/root/repo/target/release/deps/proptests-52a5c5c4e617c031.d: crates/types/tests/proptests.rs

/root/repo/target/release/deps/proptests-52a5c5c4e617c031: crates/types/tests/proptests.rs

crates/types/tests/proptests.rs:
