/root/repo/target/release/deps/crossbeam-cdd3d70444d4f730.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-cdd3d70444d4f730: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
