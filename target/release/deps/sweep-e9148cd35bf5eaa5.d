/root/repo/target/release/deps/sweep-e9148cd35bf5eaa5.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-e9148cd35bf5eaa5: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
