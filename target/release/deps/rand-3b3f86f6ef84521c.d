/root/repo/target/release/deps/rand-3b3f86f6ef84521c.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3b3f86f6ef84521c.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3b3f86f6ef84521c.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
