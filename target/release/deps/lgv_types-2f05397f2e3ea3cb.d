/root/repo/target/release/deps/lgv_types-2f05397f2e3ea3cb.d: crates/types/src/lib.rs crates/types/src/angle.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/grid.rs crates/types/src/msg.rs crates/types/src/node.rs crates/types/src/rng.rs crates/types/src/stats.rs crates/types/src/time.rs crates/types/src/work.rs

/root/repo/target/release/deps/lgv_types-2f05397f2e3ea3cb: crates/types/src/lib.rs crates/types/src/angle.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/grid.rs crates/types/src/msg.rs crates/types/src/node.rs crates/types/src/rng.rs crates/types/src/stats.rs crates/types/src/time.rs crates/types/src/work.rs

crates/types/src/lib.rs:
crates/types/src/angle.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/grid.rs:
crates/types/src/msg.rs:
crates/types/src/node.rs:
crates/types/src/rng.rs:
crates/types/src/stats.rs:
crates/types/src/time.rs:
crates/types/src/work.rs:
