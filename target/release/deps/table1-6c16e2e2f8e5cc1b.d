/root/repo/target/release/deps/table1-6c16e2e2f8e5cc1b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-6c16e2e2f8e5cc1b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
