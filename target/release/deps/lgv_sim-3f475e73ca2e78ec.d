/root/repo/target/release/deps/lgv_sim-3f475e73ca2e78ec.d: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

/root/repo/target/release/deps/liblgv_sim-3f475e73ca2e78ec.rlib: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

/root/repo/target/release/deps/liblgv_sim-3f475e73ca2e78ec.rmeta: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

crates/sim/src/lib.rs:
crates/sim/src/battery.rs:
crates/sim/src/energy.rs:
crates/sim/src/lidar.rs:
crates/sim/src/platform.rs:
crates/sim/src/power.rs:
crates/sim/src/vehicle.rs:
crates/sim/src/world.rs:
crates/sim/src/world/generator.rs:
crates/sim/src/world/presets.rs:
