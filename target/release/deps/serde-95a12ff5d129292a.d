/root/repo/target/release/deps/serde-95a12ff5d129292a.d: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

/root/repo/target/release/deps/serde-95a12ff5d129292a: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

crates/shims/serde/src/lib.rs:
crates/shims/serde/src/de.rs:
crates/shims/serde/src/ser.rs:
