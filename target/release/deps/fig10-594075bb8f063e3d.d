/root/repo/target/release/deps/fig10-594075bb8f063e3d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-594075bb8f063e3d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
