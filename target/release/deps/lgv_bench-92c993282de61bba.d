/root/repo/target/release/deps/lgv_bench-92c993282de61bba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblgv_bench-92c993282de61bba.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblgv_bench-92c993282de61bba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
