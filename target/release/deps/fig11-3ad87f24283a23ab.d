/root/repo/target/release/deps/fig11-3ad87f24283a23ab.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-3ad87f24283a23ab: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
