/root/repo/target/release/deps/proptests-1706de2dfff81cb8.d: crates/nav/tests/proptests.rs

/root/repo/target/release/deps/proptests-1706de2dfff81cb8: crates/nav/tests/proptests.rs

crates/nav/tests/proptests.rs:
