/root/repo/target/release/deps/proptest-8f02a38423b79b60.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/release/deps/libproptest-8f02a38423b79b60.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/release/deps/libproptest-8f02a38423b79b60.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
crates/shims/proptest/src/arbitrary.rs:
