/root/repo/target/release/deps/proptests-3d2075abc3287774.d: crates/sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-3d2075abc3287774: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
