/root/repo/target/release/deps/cloud_lgv-fdc4db2a29782273.d: src/lib.rs

/root/repo/target/release/deps/libcloud_lgv-fdc4db2a29782273.rlib: src/lib.rs

/root/repo/target/release/deps/libcloud_lgv-fdc4db2a29782273.rmeta: src/lib.rs

src/lib.rs:
