/root/repo/target/release/deps/stack_integration-d69f68268791e841.d: tests/stack_integration.rs

/root/repo/target/release/deps/stack_integration-d69f68268791e841: tests/stack_integration.rs

tests/stack_integration.rs:
