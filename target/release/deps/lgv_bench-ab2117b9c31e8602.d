/root/repo/target/release/deps/lgv_bench-ab2117b9c31e8602.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblgv_bench-ab2117b9c31e8602.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblgv_bench-ab2117b9c31e8602.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
