/root/repo/target/release/deps/energy_integration-e3faa8d4f9382fb6.d: crates/sim/tests/energy_integration.rs

/root/repo/target/release/deps/energy_integration-e3faa8d4f9382fb6: crates/sim/tests/energy_integration.rs

crates/sim/tests/energy_integration.rs:
