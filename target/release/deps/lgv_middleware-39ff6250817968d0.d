/root/repo/target/release/deps/lgv_middleware-39ff6250817968d0.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/release/deps/liblgv_middleware-39ff6250817968d0.rlib: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/release/deps/liblgv_middleware-39ff6250817968d0.rmeta: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
