/root/repo/target/release/deps/lgv_bench-324661d994755ca8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/lgv_bench-324661d994755ca8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
