/root/repo/target/release/deps/lgv_slam-5eda40be587a78c9.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/release/deps/liblgv_slam-5eda40be587a78c9.rlib: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/release/deps/liblgv_slam-5eda40be587a78c9.rmeta: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
