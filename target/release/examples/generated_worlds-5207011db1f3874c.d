/root/repo/target/release/examples/generated_worlds-5207011db1f3874c.d: examples/generated_worlds.rs

/root/repo/target/release/examples/generated_worlds-5207011db1f3874c: examples/generated_worlds.rs

examples/generated_worlds.rs:
