/root/repo/target/release/examples/adaptive_network-1d5674306bbbf81b.d: examples/adaptive_network.rs

/root/repo/target/release/examples/adaptive_network-1d5674306bbbf81b: examples/adaptive_network.rs

examples/adaptive_network.rs:
