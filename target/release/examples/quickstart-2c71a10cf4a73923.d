/root/repo/target/release/examples/quickstart-2c71a10cf4a73923.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2c71a10cf4a73923: examples/quickstart.rs

examples/quickstart.rs:
