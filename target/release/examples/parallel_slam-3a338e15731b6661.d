/root/repo/target/release/examples/parallel_slam-3a338e15731b6661.d: examples/parallel_slam.rs

/root/repo/target/release/examples/parallel_slam-3a338e15731b6661: examples/parallel_slam.rs

examples/parallel_slam.rs:
