/root/repo/target/release/examples/compare_deployments-f32355276647bd06.d: examples/compare_deployments.rs

/root/repo/target/release/examples/compare_deployments-f32355276647bd06: examples/compare_deployments.rs

examples/compare_deployments.rs:
