/root/repo/target/release/examples/quickstart-48642ddeedda98db.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-48642ddeedda98db: examples/quickstart.rs

examples/quickstart.rs:
