(function() {
    const implementors = Object.fromEntries([["lgv_middleware",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"lgv_middleware/codec/struct.CodecError.html\" title=\"struct lgv_middleware::codec::CodecError\">CodecError</a>",0]]],["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"lgv_types/error/enum.LgvError.html\" title=\"enum lgv_types::error::LgvError\">LgvError</a>",0]]],["serde",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"serde/de/value/struct.Error.html\" title=\"struct serde::de::value::Error\">Error</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[308,282,274]}