(function() {
    const implementors = Object.fromEntries([["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"lgv_types/grid/struct.GridRay.html\" title=\"struct lgv_types::grid::GridRay\">GridRay</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[323]}