(function() {
    const implementors = Object.fromEntries([["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"enum\" href=\"lgv_types/node/enum.NodeKind.html\" title=\"enum lgv_types::node::NodeKind\">NodeKind</a>&gt; for <a class=\"struct\" href=\"lgv_types/node/struct.NodeSet.html\" title=\"struct lgv_types::node::NodeSet\">NodeSet</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[455]}