(function() {
    const implementors = Object.fromEntries([["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a> for <a class=\"struct\" href=\"lgv_types/time/struct.Duration.html\" title=\"struct lgv_types::time::Duration\">Duration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a> for <a class=\"struct\" href=\"lgv_types/work/struct.Work.html\" title=\"struct lgv_types::work::Work\">Work</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a>&lt;<a class=\"struct\" href=\"lgv_types/time/struct.Duration.html\" title=\"struct lgv_types::time::Duration\">Duration</a>&gt; for <a class=\"struct\" href=\"lgv_types/time/struct.SimTime.html\" title=\"struct lgv_types::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1001]}