(function() {
    const implementors = Object.fromEntries([["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Neg.html\" title=\"trait core::ops::arith::Neg\">Neg</a> for <a class=\"struct\" href=\"lgv_types/angle/struct.Angle.html\" title=\"struct lgv_types::angle::Angle\">Angle</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Neg.html\" title=\"trait core::ops::arith::Neg\">Neg</a> for <a class=\"struct\" href=\"lgv_types/geometry/struct.Vec2.html\" title=\"struct lgv_types::geometry::Vec2\">Vec2</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[550]}