(function() {
    const implementors = Object.fromEntries([["lgv_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"lgv_types/geometry/struct.Vec2.html\" title=\"struct lgv_types::geometry::Vec2\">Vec2</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"lgv_types/time/struct.Duration.html\" title=\"struct lgv_types::time::Duration\">Duration</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[763]}