(function() {
    const implementors = Object.fromEntries([["proptest",[["impl Rng for <a class=\"struct\" href=\"proptest/test_runner/struct.TestRng.html\" title=\"struct proptest::test_runner::TestRng\">TestRng</a>",0]]],["rand",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[163,12]}