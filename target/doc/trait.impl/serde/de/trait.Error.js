(function() {
    const implementors = Object.fromEntries([["lgv_middleware",[["impl Error for <a class=\"struct\" href=\"lgv_middleware/codec/struct.CodecError.html\" title=\"struct lgv_middleware::codec::CodecError\">CodecError</a>",0]]],["serde",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[180,13]}