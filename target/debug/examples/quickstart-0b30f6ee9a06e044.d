/root/repo/target/debug/examples/quickstart-0b30f6ee9a06e044.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0b30f6ee9a06e044: examples/quickstart.rs

examples/quickstart.rs:
