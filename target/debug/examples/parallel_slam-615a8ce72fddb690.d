/root/repo/target/debug/examples/parallel_slam-615a8ce72fddb690.d: examples/parallel_slam.rs

/root/repo/target/debug/examples/parallel_slam-615a8ce72fddb690: examples/parallel_slam.rs

examples/parallel_slam.rs:
