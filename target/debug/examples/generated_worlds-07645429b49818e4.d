/root/repo/target/debug/examples/generated_worlds-07645429b49818e4.d: examples/generated_worlds.rs

/root/repo/target/debug/examples/generated_worlds-07645429b49818e4: examples/generated_worlds.rs

examples/generated_worlds.rs:
