/root/repo/target/debug/examples/adaptive_network-bf62deb7d428c701.d: examples/adaptive_network.rs

/root/repo/target/debug/examples/adaptive_network-bf62deb7d428c701: examples/adaptive_network.rs

examples/adaptive_network.rs:
