/root/repo/target/debug/examples/compare_deployments-35acb6d8d0888cda.d: examples/compare_deployments.rs

/root/repo/target/debug/examples/compare_deployments-35acb6d8d0888cda: examples/compare_deployments.rs

examples/compare_deployments.rs:
