/root/repo/target/debug/liblgv_trace.rlib: /root/repo/crates/trace/src/event.rs /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/metrics.rs /root/repo/crates/trace/src/sink.rs
