/root/repo/target/debug/deps/lgv_bench-2f1d336bf0428a90.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblgv_bench-2f1d336bf0428a90.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
