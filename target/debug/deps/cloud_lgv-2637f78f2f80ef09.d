/root/repo/target/debug/deps/cloud_lgv-2637f78f2f80ef09.d: src/lib.rs

/root/repo/target/debug/deps/libcloud_lgv-2637f78f2f80ef09.rlib: src/lib.rs

/root/repo/target/debug/deps/libcloud_lgv-2637f78f2f80ef09.rmeta: src/lib.rs

src/lib.rs:
