/root/repo/target/debug/deps/table2-8add634c755cda2b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8add634c755cda2b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
