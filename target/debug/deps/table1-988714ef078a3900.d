/root/repo/target/debug/deps/table1-988714ef078a3900.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-988714ef078a3900: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
