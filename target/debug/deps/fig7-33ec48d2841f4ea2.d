/root/repo/target/debug/deps/fig7-33ec48d2841f4ea2.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-33ec48d2841f4ea2: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
