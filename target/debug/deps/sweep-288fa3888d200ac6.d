/root/repo/target/debug/deps/sweep-288fa3888d200ac6.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-288fa3888d200ac6: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
