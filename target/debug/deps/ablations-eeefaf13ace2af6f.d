/root/repo/target/debug/deps/ablations-eeefaf13ace2af6f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-eeefaf13ace2af6f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
