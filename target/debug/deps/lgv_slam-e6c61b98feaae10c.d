/root/repo/target/debug/deps/lgv_slam-e6c61b98feaae10c.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/liblgv_slam-e6c61b98feaae10c.rmeta: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
