/root/repo/target/debug/deps/lgv_bench-ff4d196c2ed59b5c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblgv_bench-ff4d196c2ed59b5c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblgv_bench-ff4d196c2ed59b5c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
