/root/repo/target/debug/deps/debug_deadzone-6de2b9e30bd83aeb.d: crates/bench/src/bin/debug_deadzone.rs

/root/repo/target/debug/deps/debug_deadzone-6de2b9e30bd83aeb: crates/bench/src/bin/debug_deadzone.rs

crates/bench/src/bin/debug_deadzone.rs:
