/root/repo/target/debug/deps/lgv_middleware-43b29bf3fba1bc33.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/debug/deps/liblgv_middleware-43b29bf3fba1bc33.rlib: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/debug/deps/liblgv_middleware-43b29bf3fba1bc33.rmeta: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
