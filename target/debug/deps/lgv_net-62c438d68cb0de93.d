/root/repo/target/debug/deps/lgv_net-62c438d68cb0de93.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/lgv_net-62c438d68cb0de93: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
