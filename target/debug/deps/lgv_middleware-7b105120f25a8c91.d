/root/repo/target/debug/deps/lgv_middleware-7b105120f25a8c91.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/debug/deps/liblgv_middleware-7b105120f25a8c91.rlib: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/debug/deps/liblgv_middleware-7b105120f25a8c91.rmeta: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
