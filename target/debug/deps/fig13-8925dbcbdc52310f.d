/root/repo/target/debug/deps/fig13-8925dbcbdc52310f.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-8925dbcbdc52310f: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
