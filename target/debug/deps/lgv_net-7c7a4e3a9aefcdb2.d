/root/repo/target/debug/deps/lgv_net-7c7a4e3a9aefcdb2.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/liblgv_net-7c7a4e3a9aefcdb2.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/liblgv_net-7c7a4e3a9aefcdb2.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
