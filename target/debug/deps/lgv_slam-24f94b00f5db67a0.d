/root/repo/target/debug/deps/lgv_slam-24f94b00f5db67a0.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/lgv_slam-24f94b00f5db67a0: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
