/root/repo/target/debug/deps/lgv_slam-646e2934184aa2da.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/liblgv_slam-646e2934184aa2da.rlib: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/liblgv_slam-646e2934184aa2da.rmeta: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
