/root/repo/target/debug/deps/fig14-5be1e2d9db1faed8.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-5be1e2d9db1faed8: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
