/root/repo/target/debug/deps/cloud_lgv-cf6f15036c1f3a0a.d: src/lib.rs

/root/repo/target/debug/deps/libcloud_lgv-cf6f15036c1f3a0a.rlib: src/lib.rs

/root/repo/target/debug/deps/libcloud_lgv-cf6f15036c1f3a0a.rmeta: src/lib.rs

src/lib.rs:
