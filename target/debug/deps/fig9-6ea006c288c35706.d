/root/repo/target/debug/deps/fig9-6ea006c288c35706.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-6ea006c288c35706: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
