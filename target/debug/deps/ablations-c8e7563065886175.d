/root/repo/target/debug/deps/ablations-c8e7563065886175.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c8e7563065886175: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
