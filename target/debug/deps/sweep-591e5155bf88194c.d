/root/repo/target/debug/deps/sweep-591e5155bf88194c.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-591e5155bf88194c: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
