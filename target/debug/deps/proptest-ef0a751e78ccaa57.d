/root/repo/target/debug/deps/proptest-ef0a751e78ccaa57.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/debug/deps/libproptest-ef0a751e78ccaa57.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/debug/deps/libproptest-ef0a751e78ccaa57.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
crates/shims/proptest/src/arbitrary.rs:
