/root/repo/target/debug/deps/serde-0625e9b34dbfa943.d: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-0625e9b34dbfa943.rlib: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-0625e9b34dbfa943.rmeta: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

crates/shims/serde/src/lib.rs:
crates/shims/serde/src/de.rs:
crates/shims/serde/src/ser.rs:
