/root/repo/target/debug/deps/lgv_slam-196f2079b9e96702.d: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/liblgv_slam-196f2079b9e96702.rlib: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

/root/repo/target/debug/deps/liblgv_slam-196f2079b9e96702.rmeta: crates/slam/src/lib.rs crates/slam/src/map.rs crates/slam/src/motion.rs crates/slam/src/pool.rs crates/slam/src/rbpf.rs crates/slam/src/scan_match.rs

crates/slam/src/lib.rs:
crates/slam/src/map.rs:
crates/slam/src/motion.rs:
crates/slam/src/pool.rs:
crates/slam/src/rbpf.rs:
crates/slam/src/scan_match.rs:
