/root/repo/target/debug/deps/proptest-d73cdc6f5a80f2ee.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

/root/repo/target/debug/deps/proptest-d73cdc6f5a80f2ee: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs crates/shims/proptest/src/arbitrary.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
crates/shims/proptest/src/arbitrary.rs:
