/root/repo/target/debug/deps/fig12-73ca0383d99ae694.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-73ca0383d99ae694: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
