/root/repo/target/debug/deps/lgv_middleware-0773737661aa94c4.d: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

/root/repo/target/debug/deps/liblgv_middleware-0773737661aa94c4.rmeta: crates/middleware/src/lib.rs crates/middleware/src/bus.rs crates/middleware/src/codec.rs crates/middleware/src/service.rs crates/middleware/src/switcher.rs crates/middleware/src/topic.rs

crates/middleware/src/lib.rs:
crates/middleware/src/bus.rs:
crates/middleware/src/codec.rs:
crates/middleware/src/service.rs:
crates/middleware/src/switcher.rs:
crates/middleware/src/topic.rs:
