/root/repo/target/debug/deps/lgv_trace-2eb60e71c42425ac.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/liblgv_trace-2eb60e71c42425ac.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
