/root/repo/target/debug/deps/fig11-b9c5db620b1bf68b.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-b9c5db620b1bf68b: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
