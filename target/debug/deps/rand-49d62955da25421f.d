/root/repo/target/debug/deps/rand-49d62955da25421f.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-49d62955da25421f.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-49d62955da25421f.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
