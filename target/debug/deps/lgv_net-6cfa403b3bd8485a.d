/root/repo/target/debug/deps/lgv_net-6cfa403b3bd8485a.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/liblgv_net-6cfa403b3bd8485a.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/liblgv_net-6cfa403b3bd8485a.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
