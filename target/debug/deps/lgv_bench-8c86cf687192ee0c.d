/root/repo/target/debug/deps/lgv_bench-8c86cf687192ee0c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lgv_bench-8c86cf687192ee0c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
