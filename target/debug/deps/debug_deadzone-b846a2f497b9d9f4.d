/root/repo/target/debug/deps/debug_deadzone-b846a2f497b9d9f4.d: crates/bench/src/bin/debug_deadzone.rs

/root/repo/target/debug/deps/debug_deadzone-b846a2f497b9d9f4: crates/bench/src/bin/debug_deadzone.rs

crates/bench/src/bin/debug_deadzone.rs:
