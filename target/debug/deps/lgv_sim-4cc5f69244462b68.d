/root/repo/target/debug/deps/lgv_sim-4cc5f69244462b68.d: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

/root/repo/target/debug/deps/liblgv_sim-4cc5f69244462b68.rlib: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

/root/repo/target/debug/deps/liblgv_sim-4cc5f69244462b68.rmeta: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

crates/sim/src/lib.rs:
crates/sim/src/battery.rs:
crates/sim/src/energy.rs:
crates/sim/src/lidar.rs:
crates/sim/src/platform.rs:
crates/sim/src/power.rs:
crates/sim/src/vehicle.rs:
crates/sim/src/world.rs:
crates/sim/src/world/generator.rs:
crates/sim/src/world/presets.rs:
