/root/repo/target/debug/deps/debug_local-e37089edb6a08eb7.d: crates/bench/src/bin/debug_local.rs

/root/repo/target/debug/deps/debug_local-e37089edb6a08eb7: crates/bench/src/bin/debug_local.rs

crates/bench/src/bin/debug_local.rs:
