/root/repo/target/debug/deps/fig11-19a3257c13fe0c4d.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-19a3257c13fe0c4d: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
