/root/repo/target/debug/deps/debug_local-b21fa5be911e372b.d: crates/bench/src/bin/debug_local.rs

/root/repo/target/debug/deps/debug_local-b21fa5be911e372b: crates/bench/src/bin/debug_local.rs

crates/bench/src/bin/debug_local.rs:
