/root/repo/target/debug/deps/serde-e25d9cd95f0072e4.d: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

/root/repo/target/debug/deps/serde-e25d9cd95f0072e4: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

crates/shims/serde/src/lib.rs:
crates/shims/serde/src/de.rs:
crates/shims/serde/src/ser.rs:
