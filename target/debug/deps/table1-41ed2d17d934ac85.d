/root/repo/target/debug/deps/table1-41ed2d17d934ac85.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-41ed2d17d934ac85: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
