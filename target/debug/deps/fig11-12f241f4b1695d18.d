/root/repo/target/debug/deps/fig11-12f241f4b1695d18.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-12f241f4b1695d18: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
