/root/repo/target/debug/deps/lgv_bench-7b52abd149f5a080.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblgv_bench-7b52abd149f5a080.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblgv_bench-7b52abd149f5a080.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
