/root/repo/target/debug/deps/fig9-4a9a9cb3f481b697.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-4a9a9cb3f481b697: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
