/root/repo/target/debug/deps/criterion-0b6141f738b7d193.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0b6141f738b7d193.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0b6141f738b7d193.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
