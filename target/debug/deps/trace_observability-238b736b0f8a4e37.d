/root/repo/target/debug/deps/trace_observability-238b736b0f8a4e37.d: tests/trace_observability.rs

/root/repo/target/debug/deps/trace_observability-238b736b0f8a4e37: tests/trace_observability.rs

tests/trace_observability.rs:
