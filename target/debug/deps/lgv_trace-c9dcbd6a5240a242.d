/root/repo/target/debug/deps/lgv_trace-c9dcbd6a5240a242.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/liblgv_trace-c9dcbd6a5240a242.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/liblgv_trace-c9dcbd6a5240a242.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
