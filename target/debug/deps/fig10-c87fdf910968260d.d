/root/repo/target/debug/deps/fig10-c87fdf910968260d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c87fdf910968260d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
