/root/repo/target/debug/deps/lgv_nav-ff70ea459b9eb2ca.d: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/liblgv_nav-ff70ea459b9eb2ca.rmeta: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

crates/nav/src/lib.rs:
crates/nav/src/amcl.rs:
crates/nav/src/costmap.rs:
crates/nav/src/dwa.rs:
crates/nav/src/frontier.rs:
crates/nav/src/global_planner.rs:
crates/nav/src/velocity_mux.rs:
