/root/repo/target/debug/deps/proptests-e9f204017c241459.d: crates/net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e9f204017c241459: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
