/root/repo/target/debug/deps/end_to_end-bc0192bfb276f7eb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-bc0192bfb276f7eb: tests/end_to_end.rs

tests/end_to_end.rs:
