/root/repo/target/debug/deps/cloud_lgv-5097577b6abe829a.d: src/lib.rs

/root/repo/target/debug/deps/cloud_lgv-5097577b6abe829a: src/lib.rs

src/lib.rs:
