/root/repo/target/debug/deps/failure_injection-d6e8aa2c2d38bc27.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-d6e8aa2c2d38bc27: tests/failure_injection.rs

tests/failure_injection.rs:
