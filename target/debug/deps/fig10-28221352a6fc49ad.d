/root/repo/target/debug/deps/fig10-28221352a6fc49ad.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-28221352a6fc49ad: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
