/root/repo/target/debug/deps/table2-3c45aab8d283216c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3c45aab8d283216c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
