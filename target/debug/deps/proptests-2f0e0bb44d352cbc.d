/root/repo/target/debug/deps/proptests-2f0e0bb44d352cbc.d: crates/types/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2f0e0bb44d352cbc: crates/types/tests/proptests.rs

crates/types/tests/proptests.rs:
