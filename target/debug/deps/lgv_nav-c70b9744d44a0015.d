/root/repo/target/debug/deps/lgv_nav-c70b9744d44a0015.d: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/lgv_nav-c70b9744d44a0015: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

crates/nav/src/lib.rs:
crates/nav/src/amcl.rs:
crates/nav/src/costmap.rs:
crates/nav/src/dwa.rs:
crates/nav/src/frontier.rs:
crates/nav/src/global_planner.rs:
crates/nav/src/velocity_mux.rs:
