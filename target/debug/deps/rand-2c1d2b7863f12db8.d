/root/repo/target/debug/deps/rand-2c1d2b7863f12db8.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-2c1d2b7863f12db8: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
