/root/repo/target/debug/deps/proptests-68e133357dc4b9f4.d: crates/middleware/tests/proptests.rs

/root/repo/target/debug/deps/proptests-68e133357dc4b9f4: crates/middleware/tests/proptests.rs

crates/middleware/tests/proptests.rs:
