/root/repo/target/debug/deps/proptests-20e7fb5531aa1243.d: crates/slam/tests/proptests.rs

/root/repo/target/debug/deps/proptests-20e7fb5531aa1243: crates/slam/tests/proptests.rs

crates/slam/tests/proptests.rs:
