/root/repo/target/debug/deps/lgv_nav-634de5973ff720a2.d: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/liblgv_nav-634de5973ff720a2.rlib: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/liblgv_nav-634de5973ff720a2.rmeta: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

crates/nav/src/lib.rs:
crates/nav/src/amcl.rs:
crates/nav/src/costmap.rs:
crates/nav/src/dwa.rs:
crates/nav/src/frontier.rs:
crates/nav/src/global_planner.rs:
crates/nav/src/velocity_mux.rs:
