/root/repo/target/debug/deps/fig10-074927e8e6722e51.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-074927e8e6722e51: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
