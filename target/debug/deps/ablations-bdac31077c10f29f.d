/root/repo/target/debug/deps/ablations-bdac31077c10f29f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-bdac31077c10f29f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
