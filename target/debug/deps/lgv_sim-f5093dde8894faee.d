/root/repo/target/debug/deps/lgv_sim-f5093dde8894faee.d: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

/root/repo/target/debug/deps/lgv_sim-f5093dde8894faee: crates/sim/src/lib.rs crates/sim/src/battery.rs crates/sim/src/energy.rs crates/sim/src/lidar.rs crates/sim/src/platform.rs crates/sim/src/power.rs crates/sim/src/vehicle.rs crates/sim/src/world.rs crates/sim/src/world/generator.rs crates/sim/src/world/presets.rs

crates/sim/src/lib.rs:
crates/sim/src/battery.rs:
crates/sim/src/energy.rs:
crates/sim/src/lidar.rs:
crates/sim/src/platform.rs:
crates/sim/src/power.rs:
crates/sim/src/vehicle.rs:
crates/sim/src/world.rs:
crates/sim/src/world/generator.rs:
crates/sim/src/world/presets.rs:
