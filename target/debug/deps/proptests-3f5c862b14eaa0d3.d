/root/repo/target/debug/deps/proptests-3f5c862b14eaa0d3.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3f5c862b14eaa0d3: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
