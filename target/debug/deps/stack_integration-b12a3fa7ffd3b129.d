/root/repo/target/debug/deps/stack_integration-b12a3fa7ffd3b129.d: tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-b12a3fa7ffd3b129: tests/stack_integration.rs

tests/stack_integration.rs:
