/root/repo/target/debug/deps/rand-e976c935fd5c3d2c.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e976c935fd5c3d2c.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
