/root/repo/target/debug/deps/fig14-517631f4f4fdec6c.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-517631f4f4fdec6c: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
