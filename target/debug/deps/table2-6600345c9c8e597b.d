/root/repo/target/debug/deps/table2-6600345c9c8e597b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-6600345c9c8e597b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
