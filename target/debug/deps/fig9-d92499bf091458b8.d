/root/repo/target/debug/deps/fig9-d92499bf091458b8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-d92499bf091458b8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
