/root/repo/target/debug/deps/proptests-1fb52db25be00eff.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1fb52db25be00eff: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
