/root/repo/target/debug/deps/criterion-ec8537ae32f02706.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-ec8537ae32f02706: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
