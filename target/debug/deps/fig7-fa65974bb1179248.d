/root/repo/target/debug/deps/fig7-fa65974bb1179248.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-fa65974bb1179248: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
