/root/repo/target/debug/deps/lgv_types-50e29cddb97c7c14.d: crates/types/src/lib.rs crates/types/src/angle.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/grid.rs crates/types/src/msg.rs crates/types/src/node.rs crates/types/src/rng.rs crates/types/src/stats.rs crates/types/src/time.rs crates/types/src/work.rs

/root/repo/target/debug/deps/liblgv_types-50e29cddb97c7c14.rlib: crates/types/src/lib.rs crates/types/src/angle.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/grid.rs crates/types/src/msg.rs crates/types/src/node.rs crates/types/src/rng.rs crates/types/src/stats.rs crates/types/src/time.rs crates/types/src/work.rs

/root/repo/target/debug/deps/liblgv_types-50e29cddb97c7c14.rmeta: crates/types/src/lib.rs crates/types/src/angle.rs crates/types/src/error.rs crates/types/src/geometry.rs crates/types/src/grid.rs crates/types/src/msg.rs crates/types/src/node.rs crates/types/src/rng.rs crates/types/src/stats.rs crates/types/src/time.rs crates/types/src/work.rs

crates/types/src/lib.rs:
crates/types/src/angle.rs:
crates/types/src/error.rs:
crates/types/src/geometry.rs:
crates/types/src/grid.rs:
crates/types/src/msg.rs:
crates/types/src/node.rs:
crates/types/src/rng.rs:
crates/types/src/stats.rs:
crates/types/src/time.rs:
crates/types/src/work.rs:
