/root/repo/target/debug/deps/serde-d85b83336c446bd9.d: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-d85b83336c446bd9.rmeta: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs

crates/shims/serde/src/lib.rs:
crates/shims/serde/src/de.rs:
crates/shims/serde/src/ser.rs:
