/root/repo/target/debug/deps/lgv_net-7cdea2abf5d46f4d.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

/root/repo/target/debug/deps/liblgv_net-7cdea2abf5d46f4d.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/link.rs crates/net/src/measure.rs crates/net/src/signal.rs crates/net/src/tcp.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/link.rs:
crates/net/src/measure.rs:
crates/net/src/signal.rs:
crates/net/src/tcp.rs:
