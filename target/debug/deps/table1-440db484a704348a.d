/root/repo/target/debug/deps/table1-440db484a704348a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-440db484a704348a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
