/root/repo/target/debug/deps/fig14-236ad278f07805ea.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-236ad278f07805ea: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
