/root/repo/target/debug/deps/debug_deadzone-9b2c17ba279aa432.d: crates/bench/src/bin/debug_deadzone.rs

/root/repo/target/debug/deps/debug_deadzone-9b2c17ba279aa432: crates/bench/src/bin/debug_deadzone.rs

crates/bench/src/bin/debug_deadzone.rs:
