/root/repo/target/debug/deps/debug_local-b6021f2d061fc24e.d: crates/bench/src/bin/debug_local.rs

/root/repo/target/debug/deps/debug_local-b6021f2d061fc24e: crates/bench/src/bin/debug_local.rs

crates/bench/src/bin/debug_local.rs:
