/root/repo/target/debug/deps/lgv_trace-c4c2e445060c8a3c.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/lgv_trace-c4c2e445060c8a3c: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
