/root/repo/target/debug/deps/fig13-de12287d5a92a081.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-de12287d5a92a081: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
