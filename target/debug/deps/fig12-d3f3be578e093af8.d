/root/repo/target/debug/deps/fig12-d3f3be578e093af8.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-d3f3be578e093af8: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
