/root/repo/target/debug/deps/energy_integration-be066695b764e106.d: crates/sim/tests/energy_integration.rs

/root/repo/target/debug/deps/energy_integration-be066695b764e106: crates/sim/tests/energy_integration.rs

crates/sim/tests/energy_integration.rs:
