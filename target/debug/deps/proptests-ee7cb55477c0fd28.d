/root/repo/target/debug/deps/proptests-ee7cb55477c0fd28.d: crates/nav/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee7cb55477c0fd28: crates/nav/tests/proptests.rs

crates/nav/tests/proptests.rs:
