/root/repo/target/debug/deps/fig7-3fff50c855373024.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3fff50c855373024: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
