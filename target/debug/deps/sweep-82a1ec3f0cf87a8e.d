/root/repo/target/debug/deps/sweep-82a1ec3f0cf87a8e.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-82a1ec3f0cf87a8e: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
