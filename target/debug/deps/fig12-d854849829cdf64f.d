/root/repo/target/debug/deps/fig12-d854849829cdf64f.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-d854849829cdf64f: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
