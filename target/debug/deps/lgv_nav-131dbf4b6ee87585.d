/root/repo/target/debug/deps/lgv_nav-131dbf4b6ee87585.d: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/liblgv_nav-131dbf4b6ee87585.rlib: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

/root/repo/target/debug/deps/liblgv_nav-131dbf4b6ee87585.rmeta: crates/nav/src/lib.rs crates/nav/src/amcl.rs crates/nav/src/costmap.rs crates/nav/src/dwa.rs crates/nav/src/frontier.rs crates/nav/src/global_planner.rs crates/nav/src/velocity_mux.rs

crates/nav/src/lib.rs:
crates/nav/src/amcl.rs:
crates/nav/src/costmap.rs:
crates/nav/src/dwa.rs:
crates/nav/src/frontier.rs:
crates/nav/src/global_planner.rs:
crates/nav/src/velocity_mux.rs:
