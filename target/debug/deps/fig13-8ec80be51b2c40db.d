/root/repo/target/debug/deps/fig13-8ec80be51b2c40db.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-8ec80be51b2c40db: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
