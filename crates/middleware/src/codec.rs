//! Compact binary serde codec.
//!
//! The paper serializes ROS messages with protobuf for efficient
//! transmission (§VII); protobuf is outside our allowed dependency
//! set, so this module implements an equivalent little-endian,
//! non-self-describing wire format directly against the `serde` data
//! model:
//!
//! * fixed-width little-endian integers and floats;
//! * `u64` length prefixes for strings, byte arrays, sequences, maps;
//! * one byte for `bool` / `Option` tags;
//! * `u32` variant indices for enums;
//! * struct fields in declaration order, no field names on the wire.
//!
//! Because the format is non-self-describing, both ends must agree on
//! the message type — which the topic name guarantees, as in ROS.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Serialize a value into bytes.
///
/// ```
/// use lgv_middleware::{to_bytes, from_bytes};
/// use lgv_types::Twist;
///
/// let cmd = Twist::new(0.22, -0.8);
/// let wire = to_bytes(&cmd).unwrap();
/// let back: Twist = from_bytes(&wire).unwrap();
/// assert_eq!(back, cmd);
/// ```
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Bytes, CodecError> {
    let mut ser = BinSerializer {
        out: BytesMut::with_capacity(128),
    };
    value.serialize(&mut ser)?;
    Ok(ser.out.freeze())
}

/// Deserialize a value from bytes, requiring the buffer to be fully
/// consumed (trailing garbage indicates a framing bug).
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let v = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError(format!("{} trailing bytes", de.input.len())));
    }
    Ok(v)
}

struct BinSerializer {
    out: BytesMut,
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.put_u8(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.put_i64_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.put_u64_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.serialize_bytes(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.out.put_u64_le(v.len() as u64);
        self.out.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<(), CodecError> {
        self.out.put_u8(1);
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(idx);
        Ok(())
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(idx);
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("sequences need a known length".into()))?;
        self.out.put_u64_le(len as u64);
        Ok(self)
    }
    fn serialize_tuple(self, _: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(idx);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("maps need a known length".into()))?;
        self.out.put_u64_le(len as u64);
        Ok(self)
    }
    fn serialize_struct(self, _: &'static str, _: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(idx);
        Ok(self)
    }
}

macro_rules! impl_seq_like {
    ($trait:path, $method:ident) => {
        impl $trait for &mut BinSerializer {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), CodecError> {
                v.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_seq_like!(ser::SerializeSeq, serialize_element);
impl_seq_like!(ser::SerializeTuple, serialize_element);
impl_seq_like!(ser::SerializeTupleStruct, serialize_field);
impl_seq_like!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, k: &T) -> Result<(), CodecError> {
        k.serialize(&mut **self)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), CodecError> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.input.remaining() < n {
            Err(CodecError(format!(
                "unexpected EOF: need {n}, have {}",
                self.input.len()
            )))
        } else {
            Ok(())
        }
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        self.need(8)?;
        let n = self.input.get_u64_le();
        if n > self.input.len() as u64 {
            return Err(CodecError(format!("length {n} exceeds remaining input")));
        }
        Ok(n as usize)
    }
}

macro_rules! de_prim {
    ($fn:ident, $visit:ident, $get:ident, $n:expr) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            self.need($n)?;
            visitor.$visit(self.input.$get())
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _: V) -> Result<V::Value, CodecError> {
        Err(CodecError("format is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(1)?;
        match self.input.get_u8() {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError(format!("invalid bool byte {b}"))),
        }
    }

    de_prim!(deserialize_i8, visit_i8, get_i8, 1);
    de_prim!(deserialize_i16, visit_i16, get_i16_le, 2);
    de_prim!(deserialize_i32, visit_i32, get_i32_le, 4);
    de_prim!(deserialize_i64, visit_i64, get_i64_le, 8);
    de_prim!(deserialize_u8, visit_u8, get_u8, 1);
    de_prim!(deserialize_u16, visit_u16, get_u16_le, 2);
    de_prim!(deserialize_u32, visit_u32, get_u32_le, 4);
    de_prim!(deserialize_u64, visit_u64, get_u64_le, 8);
    de_prim!(deserialize_f32, visit_f32, get_f32_le, 4);
    de_prim!(deserialize_f64, visit_f64, get_f64_le, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(4)?;
        let c = self.input.get_u32_le();
        visitor.visit_char(char::from_u32(c).ok_or_else(|| CodecError(format!("bad char {c}")))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        let (s, rest) = self.input.split_at(n);
        self.input = rest;
        visitor.visit_str(
            std::str::from_utf8(s).map_err(|e| CodecError(format!("invalid utf8: {e}")))?,
        )
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        let (b, rest) = self.input.split_at(n);
        self.input = rest;
        visitor.visit_bytes(b)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(1)?;
        match self.input.get_u8() {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        visitor.visit_seq(CountedSeq {
            de: self,
            remaining: n,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedSeq {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        visitor.visit_map(CountedMap {
            de: self,
            remaining: n,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _: V) -> Result<V::Value, CodecError> {
        Err(CodecError("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedSeq<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for CountedSeq<'a, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct CountedMap<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::MapAccess<'de> for CountedMap<'a, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        self.de.need(4)?;
        let idx = self.de.input.get_u32_le();
        let v = seed.deserialize(idx.into_deserializer())?;
        Ok((v, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_types::prelude::*;
    use serde::Deserialize;
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: &T) {
        let b = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&b).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&-7i8);
        roundtrip(&123456789i64);
        roundtrip(&1.2345678f64);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<f64>::new());
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u8);
        m.insert("b".to_string(), 2u8);
        roundtrip(&m);
        roundtrip(&(1u8, "two".to_string(), 3.0f32));
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    enum TestEnum {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { a: f64, b: String },
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(&TestEnum::Unit);
        roundtrip(&TestEnum::Newtype(9));
        roundtrip(&TestEnum::Tuple(1, 2));
        roundtrip(&TestEnum::Struct {
            a: 1.5,
            b: "x".into(),
        });
    }

    #[test]
    fn message_types_roundtrip() {
        roundtrip(&Pose2D::new(1.0, -2.0, 0.7));
        roundtrip(&Twist::new(0.22, -1.1));
        let scan = LaserScan {
            stamp: SimTime::from_nanos(123456),
            angle_min: 0.0,
            angle_increment: 0.0175,
            range_max: 3.5,
            ranges: (0..360).map(|i| i as f64 * 0.01).collect(),
        };
        roundtrip(&scan);
        let cmd = VelocityCmd {
            stamp: SimTime::from_nanos(99),
            twist: Twist::new(0.1, 0.2),
            source: VelocitySource::SafetyController,
        };
        roundtrip(&cmd);
        let map = MapMsg {
            stamp: SimTime::EPOCH,
            dims: GridDims::new(4, 3, 0.5, Point2::new(-1.0, 2.0)),
            cells: vec![-1, 0, 100, 0, -1, 0, 100, 0, -1, 0, 100, 0],
        };
        roundtrip(&map);
    }

    #[test]
    fn scan_wire_size_is_compact() {
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 0.0175,
            range_max: 3.5,
            ranges: vec![1.0; 360],
        };
        let b = to_bytes(&scan).unwrap();
        // stamp + 3 floats + len + 360 doubles ≈ 2.9 KB: matches the
        // paper's 2.94 KB laser-scan transmission size.
        assert!(b.len() < 3000, "wire size {}", b.len());
        assert!(b.len() > 2880);
    }

    #[test]
    fn truncated_input_errors() {
        let b = to_bytes(&12345u64).unwrap();
        let r: Result<u64, _> = from_bytes(&b[..4]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut b = to_bytes(&1u32).unwrap().to_vec();
        b.push(0xFF);
        let r: Result<u32, _> = from_bytes(&b);
        assert!(r.is_err());
    }

    #[test]
    fn corrupt_bool_errors() {
        let r: Result<bool, _> = from_bytes(&[7]);
        assert!(r.is_err());
    }

    #[test]
    fn oversized_length_prefix_errors() {
        // Claims a 10^12-byte string in a 9-byte buffer.
        let mut b = vec![];
        b.extend_from_slice(&(1_000_000_000_000u64).to_le_bytes());
        b.push(b'x');
        let r: Result<String, _> = from_bytes(&b);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut b = vec![];
        b.extend_from_slice(&2u64.to_le_bytes());
        b.extend_from_slice(&[0xFF, 0xFE]);
        let r: Result<String, _> = from_bytes(&b);
        assert!(r.is_err());
    }
}
