//! Topic names of the standard LGV pipeline (paper Fig. 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An interned topic name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopicName(pub &'static str);

impl TopicName {
    /// Laser scans from the sensor driver.
    pub const SCAN: TopicName = TopicName("/scan");
    /// Wheel odometry.
    pub const ODOM: TopicName = TopicName("/odom");
    /// Pose estimate from localization / SLAM.
    pub const POSE: TopicName = TopicName("/amcl_pose");
    /// Occupancy map from SLAM or the map server.
    pub const MAP: TopicName = TopicName("/map");
    /// Costmap updates.
    pub const COSTMAP: TopicName = TopicName("/costmap");
    /// Global plan.
    pub const PLAN: TopicName = TopicName("/plan");
    /// Navigation goal.
    pub const GOAL: TopicName = TopicName("/move_base_simple/goal");
    /// Velocity candidates from the local planner.
    pub const CMD_VEL_NAV: TopicName = TopicName("/cmd_vel/navigation");
    /// Velocity from the safety controller.
    pub const CMD_VEL_SAFETY: TopicName = TopicName("/cmd_vel/safety");
    /// Velocity from the joystick.
    pub const CMD_VEL_JOY: TopicName = TopicName("/cmd_vel/joystick");
    /// Final multiplexed velocity to the actuators.
    pub const CMD_VEL: TopicName = TopicName("/cmd_vel");
    /// Per-node processing-time reports from the Profiler.
    pub const PROC_TIME: TopicName = TopicName("/profiler/proc_time");

    /// The raw name.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Every well-known pipeline topic.
    pub const ALL: [TopicName; 12] = [
        TopicName::SCAN,
        TopicName::ODOM,
        TopicName::POSE,
        TopicName::MAP,
        TopicName::COSTMAP,
        TopicName::PLAN,
        TopicName::GOAL,
        TopicName::CMD_VEL_NAV,
        TopicName::CMD_VEL_SAFETY,
        TopicName::CMD_VEL_JOY,
        TopicName::CMD_VEL,
        TopicName::PROC_TIME,
    ];

    /// Resolve a wire-transmitted name back to a known topic.
    pub fn resolve(name: &str) -> Option<TopicName> {
        TopicName::ALL.into_iter().find(|t| t.0 == name)
    }
}

impl fmt::Display for TopicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_names_are_distinct() {
        let all = [
            TopicName::SCAN,
            TopicName::ODOM,
            TopicName::POSE,
            TopicName::MAP,
            TopicName::COSTMAP,
            TopicName::PLAN,
            TopicName::GOAL,
            TopicName::CMD_VEL_NAV,
            TopicName::CMD_VEL_SAFETY,
            TopicName::CMD_VEL_JOY,
            TopicName::CMD_VEL,
            TopicName::PROC_TIME,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_is_path_like() {
        assert_eq!(TopicName::SCAN.to_string(), "/scan");
    }
}
