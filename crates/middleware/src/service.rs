//! Request/response services over the topic bus.
//!
//! The paper's pipeline (Fig. 2) uses two communication paradigms:
//! solid arrows are publish/subscribe streams, dashed arrows are a
//! **client/server** exchange (Path Planning serves route requests
//! from Path Tracking/Exploration). This module layers that paradigm
//! on the [`crate::bus::Bus`]: requests carry a correlation id and a
//! reply topic; a [`ServiceServer`] drains requests and publishes
//! typed responses; a [`ServiceClient`] matches responses back to its
//! outstanding calls.
//!
//! Like ROS services, calls are asynchronous at the transport level:
//! the client polls for the response (the virtual-time simulator has
//! no blocking).

use crate::bus::{Bus, Subscriber};
use crate::codec::CodecError;
use crate::topic::TopicName;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Wire wrapper for a service request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RequestEnvelope<R> {
    call_id: u64,
    client_id: u64,
    request: R,
}

/// Wire wrapper for a service response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResponseEnvelope<R> {
    call_id: u64,
    client_id: u64,
    response: R,
}

/// Server half of a service.
pub struct ServiceServer<Req, Resp> {
    bus: Bus,
    requests: Subscriber,
    response_topic: TopicName,
    _marker: PhantomData<(Req, Resp)>,
}

impl<Req: DeserializeOwned, Resp: Serialize> ServiceServer<Req, Resp> {
    /// Serve `request_topic`, answering on `response_topic`.
    pub fn new(bus: &Bus, request_topic: TopicName, response_topic: TopicName) -> Self {
        ServiceServer {
            bus: bus.clone(),
            requests: bus.subscribe(request_topic, 8),
            response_topic,
            _marker: PhantomData,
        }
    }

    /// Answer every queued request with `handler`. Returns how many
    /// calls were served.
    pub fn serve<F: FnMut(Req) -> Resp>(&self, mut handler: F) -> Result<usize, CodecError> {
        let mut served = 0;
        while let Some(bytes) = self.requests.recv_bytes() {
            let env: RequestEnvelope<Req> = crate::codec::from_bytes(&bytes)?;
            let response = handler(env.request);
            let out = ResponseEnvelope {
                call_id: env.call_id,
                client_id: env.client_id,
                response,
            };
            self.bus.publish(self.response_topic, &out)?;
            served += 1;
        }
        Ok(served)
    }
}

/// Client half of a service.
pub struct ServiceClient<Req, Resp> {
    bus: Bus,
    request_topic: TopicName,
    responses: Subscriber,
    client_id: u64,
    next_call: u64,
    /// Responses that arrived before being polled for.
    ready: HashMap<u64, Resp>,
    _marker: PhantomData<Req>,
}

impl<Req: Serialize, Resp: DeserializeOwned> ServiceClient<Req, Resp> {
    /// Connect a client. `client_id` distinguishes multiple clients of
    /// the same service (responses are broadcast on the reply topic).
    pub fn new(
        bus: &Bus,
        request_topic: TopicName,
        response_topic: TopicName,
        client_id: u64,
    ) -> Self {
        ServiceClient {
            bus: bus.clone(),
            request_topic,
            responses: bus.subscribe(response_topic, 16),
            client_id,
            next_call: 0,
            ready: HashMap::new(),
            _marker: PhantomData,
        }
    }

    /// Issue a call; returns its id for later [`ServiceClient::poll`].
    pub fn call(&mut self, request: Req) -> Result<u64, CodecError> {
        let call_id = self.next_call;
        self.next_call += 1;
        let env = RequestEnvelope {
            call_id,
            client_id: self.client_id,
            request,
        };
        self.bus.publish(self.request_topic, &env)?;
        Ok(call_id)
    }

    fn drain(&mut self) -> Result<(), CodecError> {
        while let Some(bytes) = self.responses.recv_bytes() {
            let env: ResponseEnvelope<Resp> = crate::codec::from_bytes(&bytes)?;
            if env.client_id == self.client_id {
                self.ready.insert(env.call_id, env.response);
            }
        }
        Ok(())
    }

    /// Take the response for `call_id` if it has arrived.
    pub fn poll(&mut self, call_id: u64) -> Result<Option<Resp>, CodecError> {
        self.drain()?;
        Ok(self.ready.remove(&call_id))
    }

    /// Outstanding responses buffered for this client.
    pub fn pending(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_types::prelude::*;

    type PlanReq = (Point2, Point2);
    type PlanResp = Vec<Point2>;

    fn wire() -> (
        Bus,
        ServiceServer<PlanReq, PlanResp>,
        ServiceClient<PlanReq, PlanResp>,
    ) {
        let bus = Bus::new();
        let server = ServiceServer::new(&bus, TopicName::GOAL, TopicName::PLAN);
        let client = ServiceClient::new(&bus, TopicName::GOAL, TopicName::PLAN, 1);
        (bus, server, client)
    }

    #[test]
    fn call_serve_poll_roundtrip() {
        let (_bus, server, mut client) = wire();
        let id = client
            .call((Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)))
            .unwrap();
        assert_eq!(client.poll(id).unwrap(), None, "not served yet");
        let served = server
            .serve(|(from, to)| vec![from, Point2::new(0.5, 0.5), to])
            .unwrap();
        assert_eq!(served, 1);
        let path = client.poll(id).unwrap().expect("response arrived");
        assert_eq!(path.len(), 3);
        assert_eq!(path[2], Point2::new(1.0, 1.0));
        // Polling again yields nothing (consumed).
        assert_eq!(client.poll(id).unwrap(), None);
    }

    #[test]
    fn multiple_outstanding_calls_match_by_id() {
        let (_bus, server, mut client) = wire();
        let a = client
            .call((Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)))
            .unwrap();
        let b = client
            .call((Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)))
            .unwrap();
        server.serve(|(_, to)| vec![to]).unwrap();
        let rb = client.poll(b).unwrap().unwrap();
        let ra = client.poll(a).unwrap().unwrap();
        assert_eq!(ra[0], Point2::new(1.0, 0.0));
        assert_eq!(rb[0], Point2::new(2.0, 0.0));
    }

    #[test]
    fn responses_are_filtered_by_client_id() {
        let bus = Bus::new();
        let server: ServiceServer<PlanReq, PlanResp> =
            ServiceServer::new(&bus, TopicName::GOAL, TopicName::PLAN);
        let mut c1: ServiceClient<PlanReq, PlanResp> =
            ServiceClient::new(&bus, TopicName::GOAL, TopicName::PLAN, 1);
        let mut c2: ServiceClient<PlanReq, PlanResp> =
            ServiceClient::new(&bus, TopicName::GOAL, TopicName::PLAN, 2);
        let id1 = c1
            .call((Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)))
            .unwrap();
        let id2 = c2
            .call((Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)))
            .unwrap();
        server.serve(|(_, to)| vec![to]).unwrap();
        // Each client only sees its own response (same call ids would
        // otherwise collide: both are call 0 of their client).
        assert_eq!(id1, 0);
        assert_eq!(id2, 0);
        assert_eq!(c1.poll(id1).unwrap().unwrap()[0], Point2::new(1.0, 0.0));
        assert_eq!(c2.poll(id2).unwrap().unwrap()[0], Point2::new(2.0, 0.0));
        assert_eq!(c1.pending(), 0);
        assert_eq!(c2.pending(), 0);
    }

    #[test]
    fn server_handles_empty_queue() {
        let (_bus, server, _client) = wire();
        assert_eq!(server.serve(|_| vec![]).unwrap(), 0);
    }
}
