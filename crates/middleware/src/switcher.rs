//! The Switcher: cross-host topic relay (paper §VII).
//!
//! The Switcher is "the main thread that maintains data communication
//! between different worker nodes deployed in the local LGV and the
//! remote server. It attaches temporal information to each ROS message
//! and sends it to the receiver with a serialized data structure."
//!
//! Our Switcher owns the simulated [`DuplexLink`] and relays a
//! configured set of topics between the robot's [`Bus`] and the remote
//! host's [`Bus`], wrapping every message in an [`Envelope`] carrying:
//!
//! * the send timestamp (for latency bookkeeping),
//! * an echo of the latest stamp received from the peer (the Profiler
//!   computes RTT from this, §VII "Profiler (2)"),
//! * the remote nodes' processing times piggybacked on downlink
//!   traffic (§VII "the remote switcher … attaches the subscribed
//!   processing time of the cloud worker nodes and returns it").

use crate::bus::{Bus, Subscriber};
use crate::codec::{from_bytes, to_bytes};
use crate::topic::TopicName;
use lgv_net::channel::SendOutcome;
use lgv_net::measure::{BandwidthMeter, RttTracker};
use lgv_net::DuplexLink;
use lgv_trace::{MsgId, TraceEvent, Tracer};
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The wire envelope around every relayed message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Topic the payload belongs to.
    pub topic: String,
    /// Relay sequence number.
    pub seq: u64,
    /// When the sending switcher emitted this envelope.
    pub sent_at: SimTime,
    /// Echo of the newest `sent_at` seen from the peer (RTT probe).
    pub echo_stamp: Option<SimTime>,
    /// Remote node processing times piggybacked on this envelope.
    pub proc_times: Vec<(NodeKind, Duration)>,
    /// Lineage id of the bus message inside (0 = untraced/control),
    /// carried across the wire so the receiving side can chain its
    /// re-publication back to the original publish.
    pub msg: u64,
    /// Tenant id of the vehicle this envelope belongs to (0 = the
    /// single-vehicle sentinel, [`VehicleId::NONE`]). A shared cloud
    /// demultiplexes fleet traffic by this field.
    pub vehicle: u64,
    /// The serialized inner message.
    pub payload: Vec<u8>,
}

/// Which topics flow in each direction.
#[derive(Debug, Clone, Default)]
pub struct SwitcherConfig {
    /// Robot → server topics with per-topic relay queue capacity.
    pub up_topics: Vec<(TopicName, usize)>,
    /// Server → robot topics with per-topic relay queue capacity.
    pub down_topics: Vec<(TopicName, usize)>,
}

impl SwitcherConfig {
    /// The standard VDP offloading set: sensor data up, velocity
    /// commands down, all with one-length queues for freshness.
    pub fn vdp_offload() -> Self {
        SwitcherConfig {
            up_topics: vec![
                (TopicName::SCAN, 1),
                (TopicName::ODOM, 1),
                (TopicName::POSE, 1),
            ],
            down_topics: vec![(TopicName::CMD_VEL_NAV, 1), (TopicName::PLAN, 1)],
        }
    }
}

/// Relay statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitcherStats {
    /// Envelopes sent up.
    pub up_sent: u64,
    /// Uplink sends silently discarded at the sender (weak signal).
    pub up_discarded: u64,
    /// Envelopes delivered to the remote bus.
    pub up_delivered: u64,
    /// Envelopes sent down.
    pub down_sent: u64,
    /// Downlink sends silently discarded at the sender.
    pub down_discarded: u64,
    /// Envelopes delivered to the robot bus.
    pub down_delivered: u64,
}

/// The cross-host relay.
#[derive(Debug)]
pub struct Switcher {
    link: DuplexLink,
    robot_bus: Bus,
    remote_bus: Bus,
    up_subs: Vec<Subscriber>,
    down_subs: Vec<Subscriber>,
    seq: u64,
    /// Newest robot stamp the remote side has seen (echoed downward).
    latest_up_stamp: Option<SimTime>,
    /// Newest remote stamp the robot side has seen (echoed upward).
    latest_down_stamp: Option<SimTime>,
    /// Robot-side RTT estimate from echoed stamps.
    rtt: RttTracker,
    /// Robot-side receive-rate meter over the downlink (Algorithm 2's
    /// packet bandwidth `r_t`).
    bandwidth: BandwidthMeter,
    /// Remote processing times as last reported (robot-side view).
    remote_proc: HashMap<NodeKind, Duration>,
    /// Pending processing times to piggyback on the next downlink
    /// envelopes (remote-side state).
    pending_proc: Vec<(NodeKind, Duration)>,
    /// When the robot last heard *anything* over the downlink — data
    /// or ack. Every downlink envelope originates at the remote host,
    /// so silence here under a healthy radio means the host is dead
    /// (the cloud-liveness heartbeat's input).
    last_downlink_at: Option<SimTime>,
    /// Bytes pushed into the uplink radio (for Eq. 1b energy).
    pub uplink_bytes_sent: u64,
    stats: SwitcherStats,
    tracer: Tracer,
    /// Tenant id stamped on every envelope this switcher emits
    /// ([`VehicleId::NONE`] outside a fleet).
    vehicle: VehicleId,
}

impl Switcher {
    /// Wire a switcher between two buses over a link.
    pub fn new(link: DuplexLink, robot_bus: Bus, remote_bus: Bus, cfg: &SwitcherConfig) -> Self {
        let up_subs = cfg
            .up_topics
            .iter()
            .map(|(t, cap)| robot_bus.subscribe(*t, *cap))
            .collect();
        let down_subs = cfg
            .down_topics
            .iter()
            .map(|(t, cap)| remote_bus.subscribe(*t, *cap))
            .collect();
        Switcher {
            link,
            robot_bus,
            remote_bus,
            up_subs,
            down_subs,
            seq: 0,
            latest_up_stamp: None,
            latest_down_stamp: None,
            rtt: RttTracker::new(64),
            bandwidth: BandwidthMeter::new(Duration::from_secs(1)),
            remote_proc: HashMap::new(),
            pending_proc: Vec::new(),
            last_downlink_at: None,
            uplink_bytes_sent: 0,
            stats: SwitcherStats::default(),
            tracer: Tracer::disabled(),
            vehicle: VehicleId::NONE,
        }
    }

    /// Stamp every envelope this switcher emits with a fleet tenant
    /// id. Single-vehicle runs never call this and keep the 0
    /// sentinel.
    pub fn set_vehicle(&mut self, vehicle: VehicleId) {
        self.vehicle = vehicle;
    }

    /// Route relay events (RTT samples) and the underlying link's
    /// channel events to `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.link.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Remote-side hook: report a node's processing time so it is
    /// piggybacked to the robot on the next downlink envelope.
    pub fn report_remote_proc_time(&mut self, node: NodeKind, time: Duration) {
        self.pending_proc.retain(|(n, _)| *n != node);
        self.pending_proc.push((node, time));
    }

    /// Robot-side view of the last reported remote processing time.
    pub fn remote_proc_time(&self, node: NodeKind) -> Option<Duration> {
        self.remote_proc.get(&node).copied()
    }

    /// Robot-side RTT tracker (fed by echoed stamps).
    pub fn rtt(&self) -> &RttTracker {
        &self.rtt
    }

    /// Robot-side downlink packet bandwidth (packets/s) at `now`.
    pub fn downlink_bandwidth(&mut self, now: SimTime) -> f64 {
        self.bandwidth.rate(now)
    }

    /// Relay statistics.
    pub fn stats(&self) -> SwitcherStats {
        self.stats
    }

    /// The link (for signal/diagnostic queries).
    pub fn link(&self) -> &DuplexLink {
        &self.link
    }

    /// Mutable link access, for fleet wiring (joining the shared
    /// wireless medium).
    pub fn link_mut(&mut self) -> &mut DuplexLink {
        &mut self.link
    }

    /// When the robot last received any downlink envelope (`None`
    /// until the remote has been heard from at all).
    pub fn last_downlink_at(&self) -> Option<SimTime> {
        self.last_downlink_at
    }

    /// Reset the liveness clock — call when a placement switch gives
    /// the remote a fresh grace period to produce its first downlink.
    pub fn reset_downlink_clock(&mut self, now: SimTime) {
        self.last_downlink_at = Some(now);
    }

    /// Install scripted fault windows on both link directions.
    pub fn set_faults(&mut self, schedule: &lgv_net::FaultSchedule) {
        self.link.set_faults(schedule);
    }

    fn envelope(&mut self, topic: TopicName, payload: &[u8], now: SimTime, msg: MsgId) -> Envelope {
        let seq = self.seq;
        self.seq += 1;
        Envelope {
            topic: topic.as_str().to_string(),
            seq,
            sent_at: now,
            echo_stamp: None,
            proc_times: Vec::new(),
            msg: msg.0,
            vehicle: self.vehicle.raw(),
            payload: payload.to_vec(),
        }
    }

    /// Relay pending traffic in both directions and advance the link
    /// to `now` with the robot at `robot_pos`.
    pub fn tick(&mut self, now: SimTime, robot_pos: Point2) {
        // Robot → server.
        for i in 0..self.up_subs.len() {
            while let Some((bytes, msg)) = self.up_subs[i].recv_bytes_tagged() {
                let topic = self.up_subs[i].topic();
                let env = self.envelope(topic, &bytes, now, msg);
                let wire = to_bytes(&env).expect("envelope serializes");
                self.uplink_bytes_sent += wire.len() as u64;
                self.stats.up_sent += 1;
                if self.link.send_up_tagged(now, robot_pos, wire, msg)
                    == SendOutcome::DiscardedFullBuffer
                {
                    self.stats.up_discarded += 1;
                }
            }
        }

        // Server → robot.
        for i in 0..self.down_subs.len() {
            while let Some((bytes, msg)) = self.down_subs[i].recv_bytes_tagged() {
                let topic = self.down_subs[i].topic();
                let env = self.envelope(topic, &bytes, now, msg);
                let wire = to_bytes(&env).expect("envelope serializes");
                self.stats.down_sent += 1;
                if self.link.send_down_tagged(now, robot_pos, wire, msg)
                    == SendOutcome::DiscardedFullBuffer
                {
                    self.stats.down_discarded += 1;
                }
            }
        }

        self.link.tick(now, robot_pos);

        // Deliver arrivals at the server; acknowledge each delivery
        // immediately so the robot-side RTT excludes remote processing
        // time (the Profiler's VDP makespan adds processing
        // separately, §VII). Acks also carry the piggybacked remote
        // processing times.
        let mut acks: Vec<Envelope> = Vec::new();
        while let Some(pkt) = self.link.recv_at_server() {
            let Ok(env) = from_bytes::<Envelope>(&pkt.payload) else {
                continue;
            };
            self.latest_up_stamp = Some(
                self.latest_up_stamp
                    .map_or(env.sent_at, |s| s.max(env.sent_at)),
            );
            let seq = self.seq;
            self.seq += 1;
            acks.push(Envelope {
                topic: TopicName::PROC_TIME.as_str().to_string(),
                seq,
                sent_at: now,
                echo_stamp: Some(env.sent_at),
                proc_times: std::mem::take(&mut self.pending_proc),
                msg: 0,
                vehicle: self.vehicle.raw(),
                payload: Vec::new(),
            });
            if let Some(topic) = TopicName::resolve(&env.topic) {
                self.remote_bus
                    .publish_bytes_from(topic, env.payload.into(), MsgId(env.msg));
                self.stats.up_delivered += 1;
            }
        }
        for ack in acks {
            let wire = to_bytes(&ack).expect("ack serializes");
            let _ = self.link.send_down(now, robot_pos, wire);
        }
        self.link.tick(now, robot_pos);

        // Deliver arrivals at the robot. Ack envelopes (PROC_TIME)
        // feed the RTT tracker and remote processing times; data
        // envelopes feed the packet-bandwidth meter (Algorithm 2's
        // r_t counts the VDP data stream, not control chatter).
        while let Some(pkt) = self.link.recv_at_robot() {
            let Ok(env) = from_bytes::<Envelope>(&pkt.payload) else {
                continue;
            };
            self.last_downlink_at = Some(
                self.last_downlink_at
                    .map_or(pkt.arrived_at, |s| s.max(pkt.arrived_at)),
            );
            self.latest_down_stamp = Some(
                self.latest_down_stamp
                    .map_or(env.sent_at, |s| s.max(env.sent_at)),
            );
            if let Some(echo) = env.echo_stamp {
                let rtt = now.saturating_since(echo);
                self.rtt.record(rtt);
                self.tracer.emit_at(
                    now.as_nanos(),
                    TraceEvent::RttSample {
                        rtt_ns: rtt.as_nanos(),
                    },
                );
            }
            for (node, t) in &env.proc_times {
                self.remote_proc.insert(*node, *t);
            }
            if env.topic == TopicName::PROC_TIME.as_str() {
                continue;
            }
            self.bandwidth.record(pkt.arrived_at);
            if let Some(topic) = TopicName::resolve(&env.topic) {
                self.robot_bus
                    .publish_bytes_from(topic, env.payload.into(), MsgId(env.msg));
                self.stats.down_delivered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_net::link::{LinkConfig, RemoteSite};
    use lgv_net::signal::WirelessConfig;

    fn make(site: RemoteSite) -> (Switcher, Bus, Bus) {
        let mut rng = SimRng::seed_from_u64(7);
        let mut cfg = LinkConfig::new(site, Point2::new(0.0, 0.0));
        cfg.wireless = WirelessConfig {
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        }
        .with_weak_radius(20.0);
        let link = DuplexLink::new(cfg, &mut rng);
        let robot = Bus::new();
        let remote = Bus::new();
        let sw = Switcher::new(
            link,
            robot.clone(),
            remote.clone(),
            &SwitcherConfig::vdp_offload(),
        );
        (sw, robot, remote)
    }

    fn near() -> Point2 {
        Point2::new(1.0, 0.0)
    }

    fn step(sw: &mut Switcher, ms: u64, pos: Point2) -> SimTime {
        let t = SimTime::EPOCH + Duration::from_millis(ms);
        sw.tick(t, pos);
        t
    }

    #[test]
    fn relays_scan_up_and_cmd_down() {
        let (mut sw, robot, remote) = make(RemoteSite::EdgeGateway);
        let remote_sub = remote.subscribe(TopicName::SCAN, 2);

        robot.publish(TopicName::SCAN, &42u32).unwrap();
        step(&mut sw, 0, near());
        step(&mut sw, 50, near());
        assert_eq!(remote_sub.recv::<u32>().unwrap(), Some(42));

        let robot_sub = robot.subscribe(TopicName::CMD_VEL_NAV, 2);
        remote
            .publish(TopicName::CMD_VEL_NAV, &Twist::new(0.2, 0.0))
            .unwrap();
        step(&mut sw, 100, near());
        step(&mut sw, 150, near());
        assert_eq!(
            robot_sub.recv::<Twist>().unwrap(),
            Some(Twist::new(0.2, 0.0))
        );
        let st = sw.stats();
        assert_eq!(st.up_delivered, 1);
        assert_eq!(st.down_delivered, 1);
    }

    #[test]
    fn rtt_is_measured_from_echo() {
        let (mut sw, robot, remote) = make(RemoteSite::CloudServer);
        robot.publish(TopicName::SCAN, &1u8).unwrap();
        step(&mut sw, 0, near());
        step(&mut sw, 100, near()); // scan arrives at server
        remote.publish(TopicName::CMD_VEL_NAV, &2u8).unwrap();
        step(&mut sw, 120, near()); // cmd sent with echo of scan stamp
        step(&mut sw, 300, near()); // cmd arrives at robot
        let rtt = sw.rtt().latest().expect("RTT sample");
        // Echo stamp was t=0, received by t=300: RTT ≤ 300 ms and at
        // least the two WAN hops (2 × 12 ms).
        assert!(rtt >= Duration::from_millis(24), "rtt {rtt}");
        assert!(rtt <= Duration::from_millis(300));
    }

    #[test]
    fn remote_proc_times_are_piggybacked() {
        let (mut sw, robot, _remote) = make(RemoteSite::EdgeGateway);
        sw.report_remote_proc_time(NodeKind::PathTracking, Duration::from_millis(15));
        // Proc times ride on the ack generated when uplink traffic is
        // delivered at the server.
        robot.publish(TopicName::SCAN, &0u8).unwrap();
        step(&mut sw, 0, near());
        step(&mut sw, 40, near());
        step(&mut sw, 80, near());
        assert_eq!(
            sw.remote_proc_time(NodeKind::PathTracking),
            Some(Duration::from_millis(15))
        );
        assert_eq!(sw.remote_proc_time(NodeKind::Slam), None);
    }

    #[test]
    fn weak_signal_starves_bandwidth() {
        let (mut sw, _robot, remote) = make(RemoteSite::EdgeGateway);
        let far = Point2::new(30.0, 0.0);
        // Server pushes velocity at 5 Hz for 2 s while the robot is out
        // of range.
        for i in 0..10 {
            remote.publish(TopicName::CMD_VEL_NAV, &(i as u32)).unwrap();
            step(&mut sw, 200 * i, far);
        }
        let now = SimTime::EPOCH + Duration::from_millis(2000);
        assert!(
            sw.downlink_bandwidth(now) <= 1.0,
            "bandwidth should collapse"
        );
        assert!(sw.stats().down_discarded > 0);
    }

    #[test]
    fn strong_signal_sustains_bandwidth() {
        let (mut sw, _robot, remote) = make(RemoteSite::EdgeGateway);
        for i in 0..10 {
            remote.publish(TopicName::CMD_VEL_NAV, &(i as u32)).unwrap();
            step(&mut sw, 200 * i, near());
        }
        let now = SimTime::EPOCH + Duration::from_millis(1900);
        assert!(
            sw.downlink_bandwidth(now) >= 4.0,
            "bandwidth {}",
            sw.downlink_bandwidth(now)
        );
    }

    #[test]
    fn downlink_liveness_clock_tracks_arrivals() {
        let (mut sw, robot, remote) = make(RemoteSite::EdgeGateway);
        assert_eq!(sw.last_downlink_at(), None, "silent until first arrival");
        // A command arriving from the remote stamps the clock...
        remote.publish(TopicName::CMD_VEL_NAV, &1u8).unwrap();
        step(&mut sw, 0, near());
        step(&mut sw, 50, near());
        let first = sw.last_downlink_at().expect("arrival stamps the clock");
        // ...and an ack (PROC_TIME) refreshes it too: any downlink
        // traffic proves the remote host is alive.
        robot.publish(TopicName::SCAN, &2u8).unwrap();
        step(&mut sw, 1000, near());
        step(&mut sw, 1050, near());
        step(&mut sw, 1100, near());
        let refreshed = sw.last_downlink_at().expect("still stamped");
        assert!(refreshed > first, "{refreshed} should advance past {first}");
        // Silence leaves it frozen.
        step(&mut sw, 5000, near());
        assert_eq!(sw.last_downlink_at(), Some(refreshed));
        // A placement switch resets the grace period.
        sw.reset_downlink_clock(SimTime::EPOCH + Duration::from_millis(6000));
        assert_eq!(
            sw.last_downlink_at(),
            Some(SimTime::EPOCH + Duration::from_millis(6000))
        );
    }

    #[test]
    fn envelopes_carry_the_tenant_id() {
        let (mut sw, _robot, _remote) = make(RemoteSite::EdgeGateway);
        // Default: the single-vehicle sentinel.
        let env = sw.envelope(TopicName::SCAN, &[1, 2], SimTime::EPOCH, MsgId::NONE);
        assert_eq!(env.vehicle, 0);
        sw.set_vehicle(VehicleId(5));
        let env = sw.envelope(TopicName::SCAN, &[1, 2], SimTime::EPOCH, MsgId::NONE);
        assert_eq!(env.vehicle, 5);
    }

    #[test]
    fn uplink_bytes_are_counted_for_energy() {
        let (mut sw, robot, _remote) = make(RemoteSite::EdgeGateway);
        robot.publish(TopicName::SCAN, &vec![0.5f64; 360]).unwrap();
        step(&mut sw, 0, near());
        assert!(
            sw.uplink_bytes_sent > 2880,
            "bytes {}",
            sw.uplink_bytes_sent
        );
    }
}
