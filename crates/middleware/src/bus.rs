//! In-process topic bus.
//!
//! Publishers serialize messages once through the [`crate::codec`] and
//! fan the bytes out to every subscriber queue. Queues are bounded;
//! when full, the **oldest** message is dropped — the freshness-over-
//! completeness policy the paper's VDP links rely on (a queue capacity
//! of 1 is exactly the "one-length queue" of §VI).

use crate::codec::{from_bytes, to_bytes, CodecError};
use crate::topic::TopicName;
use bytes::Bytes;
use lgv_trace::{MsgId, TraceEvent, Tracer};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

#[derive(Debug)]
struct SubQueue {
    cap: usize,
    /// Payload plus the lineage id of its publish.
    queue: Mutex<VecDeque<(Bytes, MsgId)>>,
    dropped: Mutex<u64>,
}

impl SubQueue {
    /// Enqueue; returns the lineage id of the oldest message when a
    /// full queue dropped it.
    fn push(&self, b: Bytes, msg: MsgId) -> Option<MsgId> {
        let mut q = self.queue.lock();
        let dropped = if q.len() == self.cap {
            let (_, old) = q.pop_front().expect("cap > 0");
            *self.dropped.lock() += 1;
            Some(old)
        } else {
            None
        };
        q.push_back((b, msg));
        dropped
    }
}

#[derive(Debug, Default)]
struct TopicState {
    subs: Vec<Arc<SubQueue>>,
    latest: Option<Bytes>,
    publish_count: u64,
}

#[derive(Debug, Default)]
struct BusInner {
    topics: HashMap<TopicName, TopicState>,
    tracer: Tracer,
}

/// A shared in-process message bus (one per host: the LGV runs one,
/// each remote VM runs one).
#[derive(Debug, Clone, Default)]
pub struct Bus {
    inner: Arc<Mutex<BusInner>>,
}

impl Bus {
    /// Fresh, empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Create a publisher handle for a topic.
    pub fn publisher(&self, topic: TopicName) -> Publisher {
        Publisher {
            bus: self.clone(),
            topic,
        }
    }

    /// Subscribe to a topic with a bounded queue of `cap` messages.
    pub fn subscribe(&self, topic: TopicName, cap: usize) -> Subscriber {
        assert!(cap > 0, "queue capacity must be at least 1");
        let q = Arc::new(SubQueue {
            cap,
            queue: Mutex::new(VecDeque::with_capacity(cap)),
            dropped: Mutex::new(0),
        });
        self.inner
            .lock()
            .topics
            .entry(topic)
            .or_default()
            .subs
            .push(q.clone());
        Subscriber { queue: q, topic }
    }

    /// Route this bus's publish/drop events to `tracer` (timestamps
    /// come from the tracer's shared virtual clock).
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.lock().tracer = tracer;
    }

    /// Publish raw bytes to a topic, returning the lineage id
    /// allocated to the message ([`MsgId::NONE`] when untraced).
    pub fn publish_bytes(&self, topic: TopicName, bytes: Bytes) -> MsgId {
        self.publish_bytes_from(topic, bytes, MsgId::NONE)
    }

    /// Like [`Bus::publish_bytes`], but records `parent` as the
    /// message's lineage origin — used when relaying a message that
    /// was first published on a peer host's bus, so traces chain the
    /// re-publication back to the original publish.
    pub fn publish_bytes_from(&self, topic: TopicName, bytes: Bytes, parent: MsgId) -> MsgId {
        let mut inner = self.inner.lock();
        let len = bytes.len() as u64;
        let msg = inner.tracer.alloc_msg();
        let state = inner.topics.entry(topic).or_default();
        state.publish_count += 1;
        state.latest = Some(bytes.clone());
        let mut drops = Vec::new();
        for s in &state.subs {
            if let Some(old) = s.push(bytes.clone(), msg) {
                drops.push(old);
            }
        }
        let fanout = state.subs.len() as u32;
        inner.tracer.emit_with(|| TraceEvent::BusPublish {
            topic: topic.as_str().to_string(),
            bytes: len,
            fanout,
            msg,
            parent,
        });
        for old in drops {
            inner.tracer.emit_with(|| TraceEvent::BusDrop {
                topic: topic.as_str().to_string(),
                msg: old,
            });
        }
        msg
    }

    /// Serialize and publish a message, returning its lineage id.
    pub fn publish<T: Serialize>(&self, topic: TopicName, msg: &T) -> Result<MsgId, CodecError> {
        let b = to_bytes(msg)?;
        Ok(self.publish_bytes(topic, b))
    }

    /// Serialize and publish with an explicit lineage parent.
    pub fn publish_from<T: Serialize>(
        &self,
        topic: TopicName,
        msg: &T,
        parent: MsgId,
    ) -> Result<MsgId, CodecError> {
        let b = to_bytes(msg)?;
        Ok(self.publish_bytes_from(topic, b, parent))
    }

    /// The most recently published bytes on a topic ("latched" read,
    /// like a ROS latched topic), regardless of subscriptions.
    pub fn latest_bytes(&self, topic: TopicName) -> Option<Bytes> {
        self.inner
            .lock()
            .topics
            .get(&topic)
            .and_then(|t| t.latest.clone())
    }

    /// Decode the most recent message on a topic.
    pub fn latest<T: DeserializeOwned>(&self, topic: TopicName) -> Option<T> {
        self.latest_bytes(topic).and_then(|b| from_bytes(&b).ok())
    }

    /// Total messages ever published on a topic.
    pub fn publish_count(&self, topic: TopicName) -> u64 {
        self.inner
            .lock()
            .topics
            .get(&topic)
            .map_or(0, |t| t.publish_count)
    }
}

/// A typed publishing handle.
#[derive(Debug, Clone)]
pub struct Publisher {
    bus: Bus,
    topic: TopicName,
}

impl Publisher {
    /// Publish one message, returning its lineage id.
    pub fn send<T: Serialize>(&self, msg: &T) -> Result<MsgId, CodecError> {
        self.bus.publish(self.topic, msg)
    }

    /// The topic this handle publishes to.
    pub fn topic(&self) -> TopicName {
        self.topic
    }
}

/// A subscription handle with its own bounded queue.
#[derive(Debug, Clone)]
pub struct Subscriber {
    queue: Arc<SubQueue>,
    topic: TopicName,
}

impl Subscriber {
    /// Pop the oldest queued raw message.
    pub fn recv_bytes(&self) -> Option<Bytes> {
        self.recv_bytes_tagged().map(|(b, _)| b)
    }

    /// Pop the oldest queued raw message with its lineage id.
    pub fn recv_bytes_tagged(&self) -> Option<(Bytes, MsgId)> {
        self.queue.queue.lock().pop_front()
    }

    /// Pop and decode the oldest queued message.
    pub fn recv<T: DeserializeOwned>(&self) -> Result<Option<T>, CodecError> {
        match self.recv_bytes() {
            None => Ok(None),
            Some(b) => from_bytes(&b).map(Some),
        }
    }

    /// Drain the queue, returning only the newest message (the common
    /// freshness pattern for one-length control queues).
    pub fn recv_latest<T: DeserializeOwned>(&self) -> Result<Option<T>, CodecError> {
        Ok(self.recv_latest_tagged()?.map(|(msg, _)| msg))
    }

    /// Like [`Subscriber::recv_latest`], keeping the lineage id so the
    /// consumer can attribute downstream work to the message.
    pub fn recv_latest_tagged<T: DeserializeOwned>(
        &self,
    ) -> Result<Option<(T, MsgId)>, CodecError> {
        let mut last = None;
        while let Some(pair) = self.recv_bytes_tagged() {
            last = Some(pair);
        }
        match last {
            None => Ok(None),
            Some((b, id)) => Ok(Some((from_bytes(&b)?, id))),
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.queue.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages dropped from this queue because it was full.
    pub fn dropped(&self) -> u64 {
        *self.queue.dropped.lock()
    }

    /// The subscribed topic.
    pub fn topic(&self) -> TopicName {
        self.topic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_types::prelude::*;

    #[test]
    fn pub_sub_roundtrip() {
        let bus = Bus::new();
        let sub = bus.subscribe(TopicName::CMD_VEL, 4);
        bus.publish(TopicName::CMD_VEL, &Twist::new(0.1, 0.2))
            .unwrap();
        let t: Twist = sub.recv().unwrap().expect("message queued");
        assert_eq!(t, Twist::new(0.1, 0.2));
        assert!(sub.recv::<Twist>().unwrap().is_none());
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let bus = Bus::new();
        let a = bus.subscribe(TopicName::SCAN, 2);
        let b = bus.subscribe(TopicName::SCAN, 2);
        bus.publish(TopicName::SCAN, &7u32).unwrap();
        assert_eq!(a.recv::<u32>().unwrap(), Some(7));
        assert_eq!(b.recv::<u32>().unwrap(), Some(7));
    }

    #[test]
    fn one_length_queue_keeps_freshest() {
        let bus = Bus::new();
        let sub = bus.subscribe(TopicName::CMD_VEL, 1);
        for i in 0..5u32 {
            bus.publish(TopicName::CMD_VEL, &i).unwrap();
        }
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.recv::<u32>().unwrap(), Some(4));
        assert_eq!(sub.dropped(), 4);
    }

    #[test]
    fn recv_latest_drains() {
        let bus = Bus::new();
        let sub = bus.subscribe(TopicName::POSE, 8);
        for i in 0..5u32 {
            bus.publish(TopicName::POSE, &i).unwrap();
        }
        assert_eq!(sub.recv_latest::<u32>().unwrap(), Some(4));
        assert!(sub.is_empty());
    }

    #[test]
    fn latched_latest_without_subscription() {
        let bus = Bus::new();
        bus.publish(TopicName::MAP, &42u64).unwrap();
        assert_eq!(bus.latest::<u64>(TopicName::MAP), Some(42));
        assert_eq!(bus.latest::<u64>(TopicName::PLAN), None);
        assert_eq!(bus.publish_count(TopicName::MAP), 1);
    }

    #[test]
    fn subscription_only_sees_later_messages() {
        let bus = Bus::new();
        bus.publish(TopicName::ODOM, &1u32).unwrap();
        let sub = bus.subscribe(TopicName::ODOM, 4);
        assert!(sub.is_empty());
        bus.publish(TopicName::ODOM, &2u32).unwrap();
        assert_eq!(sub.recv::<u32>().unwrap(), Some(2));
    }

    #[test]
    fn traced_publishes_carry_lineage() {
        use lgv_trace::RingBufferSink;
        let bus = Bus::new();
        let tracer = Tracer::enabled();
        let ring = tracer.attach(RingBufferSink::new(16));
        bus.set_tracer(tracer);
        let sub = bus.subscribe(TopicName::SCAN, 1);
        let m1 = bus.publish(TopicName::SCAN, &1u32).unwrap();
        let m2 = bus.publish_from(TopicName::SCAN, &2u32, m1).unwrap();
        assert_eq!(m1, MsgId(1));
        assert_eq!(m2, MsgId(2));
        // The one-length queue kept the fresh message, tagged with m2.
        assert_eq!(sub.recv_latest_tagged::<u32>().unwrap(), Some((2, m2)));
        let ring = ring.lock().unwrap();
        let parents: Vec<MsgId> = ring
            .records()
            .filter_map(|r| match &r.event {
                TraceEvent::BusPublish { parent, .. } => Some(*parent),
                _ => None,
            })
            .collect();
        assert_eq!(parents, vec![MsgId::NONE, m1]);
        let drops: Vec<MsgId> = ring
            .records()
            .filter_map(|r| match &r.event {
                TraceEvent::BusDrop { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![m1]);
    }

    #[test]
    fn bus_clones_share_state() {
        let bus = Bus::new();
        let bus2 = bus.clone();
        let sub = bus.subscribe(TopicName::GOAL, 2);
        bus2.publish(TopicName::GOAL, &9u8).unwrap();
        assert_eq!(sub.recv::<u8>().unwrap(), Some(9));
    }
}
