//! # lgv-middleware
//!
//! A ROS-like publish/subscribe middleware, the programming abstraction
//! the paper's stack runs on (§VII):
//!
//! * [`codec`] — a compact non-self-describing binary serde format
//!   (the stand-in for protobuf over evpp).
//! * [`bus`] — an in-process topic bus with bounded per-subscriber
//!   queues; VDP topics use one-length queues for data freshness.
//! * [`service`] — the client/server paradigm of Fig. 2's dashed
//!   arrows (Path Planning serving route requests).
//! * [`topic`] — the standard topic names of the pipeline (Fig. 2).
//! * [`switcher`] — the cross-host message relay: forwards selected
//!   topics over a simulated [`lgv_net::DuplexLink`], attaching
//!   temporal metadata (send stamps, echoed stamps for RTT, remote
//!   node processing times) exactly as the paper's Switcher/Profiler
//!   threads do.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bus;
pub mod codec;
pub mod service;
pub mod switcher;
pub mod topic;

pub use bus::{Bus, Publisher, Subscriber};
pub use codec::{from_bytes, to_bytes, CodecError};
pub use service::{ServiceClient, ServiceServer};
pub use switcher::{Envelope, Switcher, SwitcherConfig};
pub use topic::TopicName;
