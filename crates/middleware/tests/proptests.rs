//! Property-based tests for the middleware: codec roundtrips over
//! arbitrary data and bus queue invariants.

use lgv_middleware::{from_bytes, to_bytes, Bus, TopicName};
use lgv_types::prelude::*;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    a: Option<i32>,
    b: Vec<u16>,
    c: String,
}

fn nested_strategy() -> impl Strategy<Value = Nested> {
    (
        proptest::option::of(any::<i32>()),
        proptest::collection::vec(any::<u16>(), 0..16),
        ".{0,24}",
    )
        .prop_map(|(a, b, c)| Nested { a, b, c })
}

proptest! {
    #[test]
    fn codec_roundtrips_primitives(
        x in any::<i64>(), y in any::<f64>(), s in ".{0,64}", b in any::<bool>(),
    ) {
        prop_assume!(!y.is_nan());
        let v = (x, y, s.clone(), b);
        let bytes = to_bytes(&v).unwrap();
        let back: (i64, f64, String, bool) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codec_roundtrips_collections(
        v in proptest::collection::vec(any::<u32>(), 0..64),
        m in proptest::collection::btree_map(any::<u16>(), any::<i8>(), 0..32),
    ) {
        let bytes = to_bytes(&(v.clone(), m.clone())).unwrap();
        let back: (Vec<u32>, BTreeMap<u16, i8>) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.0, v);
        prop_assert_eq!(back.1, m);
    }

    #[test]
    fn codec_roundtrips_derived_struct(n in nested_strategy()) {
        let bytes = to_bytes(&n).unwrap();
        let back: Nested = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, n);
    }

    #[test]
    fn codec_roundtrips_scan(ranges in proptest::collection::vec(0.0f64..3.5, 0..400)) {
        let scan = LaserScan {
            stamp: SimTime::from_nanos(123),
            angle_min: 0.0,
            angle_increment: 0.0175,
            range_max: 3.5,
            ranges,
        };
        let bytes = to_bytes(&scan).unwrap();
        let back: LaserScan = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, scan);
    }

    #[test]
    fn codec_rejects_random_garbage_as_scan(junk in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Decoding random bytes must never panic — only `Err` or, for
        // the rare structurally-valid prefix, a full consume.
        let _ = from_bytes::<LaserScan>(&junk);
    }

    #[test]
    fn bounded_queue_keeps_newest(cap in 1usize..8, n in 1usize..32) {
        let bus = Bus::new();
        let sub = bus.subscribe(TopicName::SCAN, cap);
        for i in 0..n as u32 {
            bus.publish(TopicName::SCAN, &i).unwrap();
        }
        let kept = sub.len();
        prop_assert_eq!(kept, cap.min(n));
        // Queue holds exactly the newest `kept` messages in order.
        let mut expected = (n as u32 - kept as u32)..n as u32;
        while let Ok(Some(v)) = sub.recv::<u32>() {
            prop_assert_eq!(Some(v), expected.next());
        }
        prop_assert_eq!(sub.dropped(), (n - kept) as u64);
    }

    #[test]
    fn publish_count_is_exact(n in 0usize..64) {
        let bus = Bus::new();
        for i in 0..n as u64 {
            bus.publish(TopicName::ODOM, &i).unwrap();
        }
        prop_assert_eq!(bus.publish_count(TopicName::ODOM), n as u64);
        if n > 0 {
            prop_assert_eq!(bus.latest::<u64>(TopicName::ODOM), Some(n as u64 - 1));
        }
    }
}
