//! A minimal JSON reader for the suite's own artifacts.
//!
//! The workspace is hermetic (no serde_json), and the only JSON this
//! crate ever *reads back* is JSON it wrote itself
//! (`BENCH_suite.json`, `BENCH_profile.json`, `BENCH_history.jsonl`) —
//! so a small recursive-descent parser into a dynamic [`Value`] is all
//! the tooling (`trace_report --prof`, `check_perf.sh` debugging)
//! needs. It accepts standard JSON; it does not try to be a validator
//! beyond what parsing requires.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins); `None` off objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            _ => &[],
        }
    }

    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64 (floored), if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Value::Null),
        Some(_) => number(b, pos),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(format!("bad \\u escape at offset {pos}"))?;
                        // Surrogate pairs don't occur in our artifacts;
                        // map unpaired surrogates to the replacement
                        // character instead of failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe: find
                // the next char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
                );
            }
        }
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected value at offset {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_our_artifacts_use() {
        let v = Value::parse(
            r#"{"schema": "x/v1", "quick": false, "n": 3, "w": 1.5,
                "none": null, "arr": [{"a": 1}, {"a": 2}]}"#,
        )
        .expect("parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("x/v1"));
        assert_eq!(v.get("quick"), Some(&Value::Bool(false)));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("w").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("arr").unwrap().items().len(), 2);
        assert_eq!(
            v.get("arr").unwrap().items()[1]
                .get("a")
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        let v = Value::parse(r#""a\"b\\c\ndAé""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("nope").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn round_trips_a_real_suite_report() {
        use crate::suite::{fnv1a, JobResult, SuiteReport};
        let report = SuiteReport {
            threads: 2,
            quick: true,
            profiled: false,
            total_wall_ms: 5.0,
            results: vec![JobResult {
                name: "x".into(),
                seed: 7,
                wall_ms: 1.0,
                sim_time_s: 0.0,
                events: 0,
                output: b"hi".to_vec(),
                checksum: format!("fnv1a:{:016x}", fnv1a(b"hi")),
                error: None,
                profile: lgv_trace::prof::ProfileTree::new(),
            }],
        };
        let v = Value::parse(&report.to_json()).expect("suite JSON parses");
        let sc = &v.get("scenarios").unwrap().items()[0];
        assert_eq!(sc.get("sim_time_s"), Some(&Value::Null));
        assert_eq!(sc.get("events"), Some(&Value::Null));
        let hv = Value::parse(&report.history_line()).expect("history line parses");
        assert_eq!(
            hv.get("schema").and_then(Value::as_str),
            Some("lgv-bench-history/v1")
        );
        let pv = Value::parse(&report.profile_json()).expect("profile JSON parses");
        assert_eq!(
            pv.get("schema").and_then(Value::as_str),
            Some("lgv-bench-profile/v1")
        );
    }
}
