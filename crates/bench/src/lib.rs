//! # lgv-bench
//!
//! Shared machinery for the table/figure regeneration binaries (see
//! `src/bin/`) and the Criterion micro-benchmarks (see `benches/`).
//! Every binary prints the rows/series of one table or figure from the
//! paper's evaluation section; `EXPERIMENTS.md` records paper-reported
//! vs measured values.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use lgv_sim::world::World;
use lgv_sim::{Lidar, LidarConfig};
use lgv_types::prelude::*;
use std::io::{self, Write};

pub mod json;
pub mod scenarios;
pub mod suite;

/// Quick mode: set `LGV_BENCH_QUICK=1` to shrink sweeps for smoke runs.
pub fn quick_mode() -> bool {
    std::env::var("LGV_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Build a [`lgv_trace::Tracer`] from the process arguments: passing
/// `--trace <path>` to a figure binary attaches a JSONL file sink (one
/// event per line, stamped with virtual time — see
/// `docs/OBSERVABILITY.md`). Without the flag the returned tracer is
/// disabled and adds zero overhead. With several missions per binary
/// the streams are concatenated in run order; split on the
/// `mission_start` events to separate them.
pub fn tracer_from_args() -> lgv_trace::Tracer {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let Some(path) = args.next() else {
                eprintln!("warning: --trace requires a file path; tracing disabled");
                return lgv_trace::Tracer::disabled();
            };
            match lgv_trace::JsonlSink::create(&path) {
                Ok(sink) => {
                    let tracer = lgv_trace::Tracer::enabled();
                    tracer.attach(sink);
                    println!("(trace: {path})");
                    return tracer;
                }
                Err(e) => {
                    eprintln!("warning: cannot create trace file {path}: {e}; tracing disabled");
                    return lgv_trace::Tracer::disabled();
                }
            }
        }
    }
    lgv_trace::Tracer::disabled()
}

/// A deterministic scan/odometry stream: a scripted tour through a
/// world, sampled by the standard lidar. Feeds the SLAM and VDP
/// microbenchmarks the same kind of data the Intel Research Lab
/// dataset gives the paper (see DESIGN.md substitution table).
pub struct ScanStream {
    world: World,
    lidar: Lidar,
    pose: Pose2D,
    twist: Twist,
    t: SimTime,
    step: Duration,
    k: u32,
}

impl ScanStream {
    /// A stream starting at `start`, driving gentle arcs.
    pub fn new(world: World, start: Pose2D, seed: u64) -> Self {
        ScanStream {
            world,
            lidar: Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(seed)),
            pose: start,
            twist: Twist::new(0.15, 0.0),
            t: SimTime::EPOCH,
            step: Duration::from_millis(200),
            k: 0,
        }
    }

    /// Next (odometry, scan) pair.
    pub fn next_pair(&mut self) -> (OdometryMsg, LaserScan) {
        // Gentle S-curve steering, reversing if about to collide.
        self.k += 1;
        let steer = 0.4 * ((self.k as f64) * 0.12).sin();
        self.twist = Twist::new(0.15, steer);
        let next = self.pose.integrate(self.twist, self.step.as_secs_f64());
        if !self.world.collides_disc(next.position(), 0.18) {
            self.pose = next;
        } else {
            // Turn in place away from the obstacle.
            self.pose = Pose2D::new(self.pose.x, self.pose.y, self.pose.theta + 0.5);
        }
        self.t += self.step;
        let odom = OdometryMsg {
            stamp: self.t,
            pose: self.pose,
            twist: self.twist,
        };
        let scan = self.lidar.scan(&self.world, self.pose, self.t);
        (odom, scan)
    }
}

/// Simple fixed-width table printer for the figure binaries, with CSV
/// export so downstream plotting scripts can consume the same data.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TablePrinter {
            headers: headers.into_iter().map(|s| s.into()).collect(),
            rows: vec![],
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows
            .push(cells.into_iter().map(|s| s.into()).collect());
    }

    /// Render to stdout.
    pub fn print(&self) {
        self.write_to(&mut io::stdout())
            .expect("stdout write failed");
    }

    /// Render into an arbitrary writer (the suite runner captures
    /// scenario output this way to checksum it).
    pub fn write_to(&self, out: &mut dyn Write) -> io::Result<()> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let line = |out: &mut dyn Write, cells: &[String]| -> io::Result<()> {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                s.push_str(&format!("{c:>w$}  "));
            }
            writeln!(out, "{}", s.trim_end())
        };
        line(out, &self.headers)?;
        writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            line(out, row)?;
        }
        Ok(())
    }

    /// Render as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the table as `target/figures/<name>.csv` (best effort:
    /// prints a warning instead of failing the figure run on IO
    /// errors). Returns the path on success.
    pub fn save_csv(&self, name: &str) -> Option<std::path::PathBuf> {
        let mut out = io::stdout();
        self.save_csv_to(&mut out, name)
            .expect("stdout write failed")
    }

    /// [`TablePrinter::save_csv`], but the `(csv: …)` confirmation line
    /// goes to `out` so suite-captured scenario output stays
    /// self-contained. Scenario names are unique, so concurrent suite
    /// jobs never write the same CSV path.
    pub fn save_csv_to(
        &self,
        out: &mut dyn Write,
        name: &str,
    ) -> io::Result<Option<std::path::PathBuf>> {
        let dir = std::path::Path::new("target").join("figures");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return Ok(None);
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, self.to_csv()) {
            Ok(()) => {
                writeln!(out, "(csv: {})", path.display())?;
                Ok(Some(path))
            }
            Err(e) => {
                eprintln!("warning: cannot write {path:?}: {e}");
                Ok(None)
            }
        }
    }
}

/// Print a figure/table banner.
pub fn banner(title: &str, paper_claim: &str) {
    write_banner(&mut io::stdout(), title, paper_claim).expect("stdout write failed");
}

/// [`banner`], into an arbitrary writer (suite capture).
pub fn write_banner(out: &mut dyn Write, title: &str, paper_claim: &str) -> io::Result<()> {
    writeln!(out)?;
    writeln!(out, "==== {title} ====")?;
    writeln!(out, "paper: {paper_claim}")?;
    writeln!(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_sim::world::presets;

    #[test]
    fn scan_stream_is_deterministic_and_collision_free() {
        let mut a = ScanStream::new(presets::intel_like(), presets::intel_start(), 1);
        let mut b = ScanStream::new(presets::intel_like(), presets::intel_start(), 1);
        for _ in 0..50 {
            let (oa, sa) = a.next_pair();
            let (ob, sb) = b.next_pair();
            assert_eq!(oa.pose, ob.pose);
            assert_eq!(sa.ranges, sb.ranges);
            assert!(!presets::intel_like().collides_disc(oa.pose.position(), 0.1));
        }
    }

    #[test]
    fn table_printer_does_not_panic() {
        let mut t = TablePrinter::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        t.print();
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = TablePrinter::new(vec!["name", "value"]);
        t.row(vec!["plain", "1"]);
        t.row(vec!["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn save_csv_writes_file() {
        let mut t = TablePrinter::new(vec!["x"]);
        t.row(vec!["7"]);
        if let Some(path) = t.save_csv("test_table") {
            let content = std::fs::read_to_string(&path).unwrap();
            assert!(content.contains("7"));
            let _ = std::fs::remove_file(path);
        }
    }
}
