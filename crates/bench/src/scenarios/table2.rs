//! Table II — cycle breakdown of each work node (Gigacycles per
//! second of mission), for the with-map (Navigation) and without-map
//! (Exploration) workloads.
//!
//! Method: run each workload end-to-end on the edge-gateway-8T
//! deployment (so no activation is dropped by a busy local CPU) and
//! divide each node's accumulated cycles by the mission duration.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig};
use lgv_types::prelude::*;
use std::io::{self, Write};

fn breakdown(cfg: MissionConfig) -> (Vec<(NodeKind, f64)>, f64) {
    let report = mission::run(cfg);
    let secs = report.time.total().as_secs_f64().max(1e-9);
    let rows: Vec<(NodeKind, f64)> = report
        .node_gcycles
        .iter()
        .map(|(k, g)| (*k, g / secs))
        .collect();
    (rows, secs)
}

fn print_workload(
    out: &mut dyn Write,
    label: &str,
    rows: &[(NodeKind, f64)],
    paper: &[(NodeKind, f64)],
) -> io::Result<()> {
    writeln!(out, "{label}")?;
    let total: f64 = rows.iter().map(|(_, g)| g).sum();
    let mut t = TablePrinter::new(vec!["node", "Gcycles/s", "share", "paper Gcycles/s"]);
    for (kind, g) in rows {
        let paper_g = paper
            .iter()
            .find(|(k, _)| k == kind)
            .map_or("-".to_string(), |(_, v)| format!("{v:.3}"));
        t.row(vec![
            kind.to_string(),
            format!("{g:.3}"),
            format!("{:.0}%", g / total * 100.0),
            paper_g,
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        format!("{total:.3}"),
        "100%".into(),
        "".into(),
    ]);
    t.write_to(out)?;
    let slug: String = label
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .take(24)
        .collect();
    t.save_csv_to(out, &format!("table2_{slug}"))?;
    writeln!(out)
}

/// Regenerate Table II.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Table II: cycle breakdown of each work node (Gcycles/s)",
        "with map: Loc 0.028 (1%), CG 0.857 (37%), PP 0.055 (2%), PT 1.385 (60%) | \
         without map: SLAM 3.327 (62%), CG 0.685 (12%), PP 0.052 (1%), Expl 0.011 (1%), PT 1.207 (23%)",
    )?;

    let mut nav = MissionConfig::navigation_lab(Deployment::edge_8t());
    nav.seed = ctx.seed;
    nav.record_traces = false;
    if ctx.quick {
        nav.max_time = Duration::from_secs(30);
    }
    let (rows, secs) = breakdown(nav);
    print_workload(
        ctx.out,
        &format!("With a map (Navigation, {secs:.0}s mission):"),
        &rows,
        &[
            (NodeKind::Localization, 0.028),
            (NodeKind::CostmapGen, 0.857),
            (NodeKind::PathPlanning, 0.055),
            (NodeKind::PathTracking, 1.385),
        ],
    )?;

    let mut expl = MissionConfig::exploration_lab(Deployment::edge_8t());
    expl.seed = ctx.seed;
    expl.record_traces = false;
    if ctx.quick {
        expl.max_time = Duration::from_secs(30);
    }
    let (rows, secs) = breakdown(expl);
    print_workload(
        ctx.out,
        &format!("Without a map (Exploration, {secs:.0}s mission):"),
        &rows,
        &[
            (NodeKind::Slam, 3.327),
            (NodeKind::CostmapGen, 0.685),
            (NodeKind::PathPlanning, 0.052),
            (NodeKind::Exploration, 0.011),
            (NodeKind::PathTracking, 1.207),
        ],
    )?;

    writeln!(
        ctx.out,
        "energy-critical nodes (share >= 10%): with map -> CostmapGen, PathTracking; \
         without map -> SLAM, CostmapGen, PathTracking (matches paper Fig. 4)"
    )
}
