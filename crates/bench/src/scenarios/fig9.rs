//! Figure 9 — processing time (s) of the energy-critical node (SLAM)
//! under different numbers of threads and particles, on (a) the
//! Turtlebot, (b) the edge gateway, (c) the cloud server.
//!
//! Method: run the real GMapping filter over a deterministic scan
//! stream from the intel-like world at each particle count, average
//! the per-scan `Work` record, then price it on each platform/thread
//! combination with the calibrated timing model.

use crate::suite::ScenarioCtx;
use crate::{write_banner, ScanStream, TablePrinter};
use lgv_sim::platform::Platform;
use lgv_sim::world::presets;
use lgv_slam::{GMapping, SlamConfig};
use lgv_types::prelude::*;
use std::io;

fn average_slam_work(seed: u64, particles: usize, scans: usize) -> Work {
    let world = presets::intel_like();
    let cfg = SlamConfig {
        num_particles: particles,
        threads: 1,
        map_dims: *world.dims(),
        ..SlamConfig::default()
    };
    let mut slam = GMapping::new(cfg, presets::intel_start(), SimRng::seed_from_u64(seed));
    let mut stream = ScanStream::new(world, presets::intel_start(), seed + 1);
    let mut total = Work::ZERO;
    for _ in 0..scans {
        let (odom, scan) = stream.next_pair();
        total += slam.process(&odom, &scan).work;
    }
    Work {
        serial_cycles: total.serial_cycles / scans as f64,
        parallel_cycles: total.parallel_cycles / scans as f64,
        parallel_items: particles as u32,
    }
}

/// Regenerate Figure 9.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 9: ECN (SLAM) processing time (s) vs threads x particles",
        "reduction up to 27.97x on the gateway and 40.84x on the cloud server; \
         manycore wins on ECN; scaling grows with particle count",
    )?;

    let particle_counts: &[usize] = if ctx.quick {
        &[10, 30]
    } else {
        &[10, 30, 50, 100]
    };
    let scans = if ctx.quick { 4 } else { 10 };
    let threads = [1u32, 2, 4, 8, 12];

    let works: Vec<(usize, Work)> = particle_counts
        .iter()
        .map(|&m| (m, average_slam_work(ctx.seed, m, scans)))
        .collect();

    let platforms = [
        ("(a) Turtlebot3", Platform::turtlebot3()),
        ("(b) Edge gateway", Platform::edge_gateway()),
        ("(c) Cloud server", Platform::cloud_server()),
    ];

    let local = Platform::turtlebot3();
    let mut best_gw = 0.0f64;
    let mut best_cloud = 0.0f64;

    for (label, platform) in &platforms {
        writeln!(ctx.out, "{label} ({})", platform.model)?;
        let mut t = TablePrinter::new(
            std::iter::once("# threads".to_string())
                .chain(works.iter().map(|(m, _)| format!("{m} particles")))
                .collect::<Vec<_>>(),
        );
        for &n in &threads {
            let mut row = vec![n.to_string()];
            for (_, w) in &works {
                let secs = platform.exec_time(w, n).as_secs_f64();
                row.push(format!("{secs:.3}"));
                let baseline = local.exec_time(w, 1).as_secs_f64();
                let speedup = baseline / secs;
                match platform.kind {
                    lgv_sim::platform::PlatformKind::EdgeGateway => best_gw = best_gw.max(speedup),
                    lgv_sim::platform::PlatformKind::CloudServer => {
                        best_cloud = best_cloud.max(speedup)
                    }
                    _ => {}
                }
            }
            t.row(row);
        }
        t.write_to(ctx.out)?;
        t.save_csv_to(ctx.out, &format!("fig9_{:?}", platform.kind).to_lowercase())?;
        writeln!(ctx.out)?;
    }

    writeln!(ctx.out, "max ECN speedup vs local 1-thread:")?;
    writeln!(ctx.out, "  edge gateway : {best_gw:.2}x   (paper: 27.97x)")?;
    writeln!(
        ctx.out,
        "  cloud server : {best_cloud:.2}x   (paper: 40.84x)"
    )
}
