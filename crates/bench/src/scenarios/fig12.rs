//! Figure 12 — the maximum velocity of the LGV in a navigation
//! workload under the five deployment strategies.
//!
//! Runs the full lab navigation mission once per deployment and prints
//! the Eq. 2c maximum-velocity series (1 Hz samples), plus the summary
//! the paper highlights: offloading + parallelization raises the
//! maximum velocity by 4–5x, and offloaded curves fluctuate with
//! network latency while the local curve is steady.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_types::prelude::*;
use std::io;

/// Regenerate Figure 12.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 12: maximum velocity under five deployment strategies",
        "no offloading is slow and steady; offloading + parallelization raises \
         max velocity 4-5x with network-induced fluctuation",
    )?;

    let deployments = Deployment::evaluation_set();
    let mut traces: Vec<(String, Vec<f64>)> = Vec::new();
    let mut summary = TablePrinter::new(vec![
        "deployment",
        "mean vmax (m/s)",
        "peak vmax",
        "vmax stddev",
        "ratio vs LGV",
    ]);
    let mut local_mean = 0.0f64;

    for d in deployments {
        let mut cfg = MissionConfig::navigation_lab(d);
        cfg.workload = Workload::Navigation;
        cfg.seed = ctx.seed;
        if ctx.quick {
            cfg.max_time = Duration::from_secs(60);
        }
        let report = mission::run_traced(cfg, ctx.tracer.clone());
        // 1 Hz samples of the in-force maximum velocity.
        let series: Vec<f64> = report
            .velocity_trace
            .iter()
            .filter(|s| (s.t.fract()).abs() < 0.11)
            .map(|s| s.vmax)
            .collect();
        let n = series.len().max(1) as f64;
        let mean = series.iter().sum::<f64>() / n;
        let peak = series.iter().copied().fold(0.0, f64::max);
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        if d.label == "LGV" {
            local_mean = mean;
        }
        summary.row(vec![
            d.label.to_string(),
            format!("{mean:.3}"),
            format!("{peak:.3}"),
            format!("{:.4}", var.sqrt()),
            format!("{:.2}x", mean / local_mean.max(1e-9)),
        ]);
        traces.push((d.label.to_string(), series));
    }

    // Print the first 30 seconds of each series side by side.
    let mut t = TablePrinter::new(
        std::iter::once("t(s)".to_string())
            .chain(traces.iter().map(|(l, _)| l.clone()))
            .collect::<Vec<_>>(),
    );
    let horizon = traces
        .iter()
        .map(|(_, s)| s.len())
        .min()
        .unwrap_or(0)
        .min(30);
    for i in 0..horizon {
        let mut row = vec![format!("{i}")];
        for (_, s) in &traces {
            row.push(format!("{:.3}", s[i]));
        }
        t.row(row);
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fig12_vmax_series")?;
    writeln!(ctx.out)?;
    summary.write_to(ctx.out)?;
    summary.save_csv_to(ctx.out, "fig12_summary")?;
    Ok(())
}
