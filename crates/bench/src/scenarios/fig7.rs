//! Figure 7 — the traditional UDP communication pattern under an
//! unstable wireless network, packet by packet.
//!
//! The paper's diagram walks five packets through the sender: packet 1
//! goes out while the signal is strong; the driver blocks on weak
//! signal and *holds* packet 2 in the one-slot kernel buffer; packets
//! 3–5 hit the full buffer and are silently discarded; when the signal
//! recovers, the held packet finally flies — with seconds of real
//! latency that the receiver-side statistics never attribute to the
//! discarded ones. This scenario replays exactly that against our
//! channel and prints the per-packet outcome.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use bytes::Bytes;
use lgv_net::channel::{SendOutcome, UdpChannel};
use lgv_net::signal::{SignalModel, WirelessConfig};
use lgv_types::prelude::*;
use std::io;

/// Replay the paper's five-packet walk.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 7: UDP under an unstable wireless link, packet by packet",
        "packet 1 transmits; packet 2 is held in the kernel buffer under weak \
         signal; packets 3-5 are silently discarded; the held packet flushes on \
         recovery with huge real latency",
    )?;

    let cfg = WirelessConfig {
        jitter: Duration::ZERO,
        loss_mid_dbm: -120.0,
        ..WirelessConfig::default()
    }
    .with_weak_radius(15.0);
    let signal = SignalModel::new(cfg, Point2::new(0.0, 0.0));
    let mut ch = UdpChannel::new(signal, Duration::ZERO, SimRng::seed_from_u64(ctx.seed));

    let strong = Point2::new(2.0, 0.0);
    let weak = Point2::new(30.0, 0.0);

    // The paper's five packets at 200 ms spacing: strong for #1, weak
    // for #2–#5, recovery afterwards.
    let schedule = [
        (0u64, strong, "strong"),
        (200, weak, "weak"),
        (400, weak, "weak"),
        (600, weak, "weak"),
        (800, weak, "weak"),
    ];

    let mut t = TablePrinter::new(vec!["packet", "t(ms)", "signal", "send outcome"]);
    for (i, (ms, pos, sig)) in schedule.iter().enumerate() {
        let now = SimTime::EPOCH + Duration::from_millis(*ms);
        let outcome = ch.send(now, *pos, Bytes::from(vec![i as u8; 48]));
        t.row(vec![
            format!("{}", i + 1),
            format!("{ms}"),
            sig.to_string(),
            match outcome {
                SendOutcome::Transmitted => "transmitted".to_string(),
                SendOutcome::HeldInKernelBuffer => "HELD in kernel buffer".to_string(),
                SendOutcome::DiscardedFullBuffer => "DISCARDED (buffer full)".to_string(),
            },
        ]);
    }

    // Signal recovers at t = 3 s; the held packet flushes.
    let recover = SimTime::EPOCH + Duration::from_secs(3);
    ch.tick(recover, strong);
    ch.tick(recover + Duration::from_millis(50), strong);
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fig7_packets")?;

    writeln!(ctx.out)?;
    let mut received = Vec::new();
    while let Some(p) = ch.recv() {
        received.push(p);
    }
    // The one-length queue means only the freshest arrival is readable;
    // report from stats + the survivor.
    let stats = ch.stats();
    writeln!(
        ctx.out,
        "sender view : transmitted {}  held-then-flushed 1  discarded {}",
        stats.transmitted - 1,
        stats.sender_discards
    )?;
    for p in &received {
        writeln!(
            ctx.out,
            "receiver view: packet {} arrived with latency {} (sent t={}ms)",
            p.seq + 1,
            p.latency(),
            p.sent_at.as_secs_f64() * 1000.0
        )?;
    }
    writeln!(ctx.out)?;
    writeln!(
        ctx.out,
        "The receiver's latency statistics saw {} sample(s); the {} discards are invisible.",
        stats.delivered, stats.sender_discards
    )?;
    writeln!(
        ctx.out,
        "That is why Algorithm 2 watches packet bandwidth, not latency (fig11)."
    )
}
