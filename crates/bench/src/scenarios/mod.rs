//! Scenario implementations for every table/figure job.
//!
//! Each submodule exports one `run(ctx)` entry point writing the
//! scenario's human-readable output into [`ScenarioCtx::out`]. The
//! `src/bin/` binaries are thin standalone wrappers around these same
//! functions (stdout + `LGV_BENCH_QUICK` + `--trace`); the
//! [`crate::suite`] runner captures the output in memory instead and
//! checksums it.
//!
//! Determinism contract: a scenario's output may depend only on
//! [`ScenarioCtx::seed`] and [`ScenarioCtx::quick`] — never on wall
//! clock, thread interleaving, or global state — so that parallel
//! suite runs are byte-identical to serial ones.
//!
//! [`ScenarioCtx::out`]: crate::suite::ScenarioCtx
//! [`ScenarioCtx::seed`]: crate::suite::ScenarioCtx
//! [`ScenarioCtx::quick`]: crate::suite::ScenarioCtx

pub mod ablations;
pub mod chaos;
pub mod chaos_fleet;
pub mod elastic_fleet;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig7;
pub mod fig9;
pub mod fleet;
pub mod policy;
pub mod sweep;
pub mod table1;
pub mod table2;
