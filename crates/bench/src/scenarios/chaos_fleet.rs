//! Chaos-fleet: the recovery stack under scripted and randomized
//! failures, with recovery-SLO accounting.
//!
//! Six arms pit two recovery postures (the historical defaults vs the
//! full resilient posture: 2 s checkpoints + degraded-mode autonomy)
//! against three failure families:
//!
//! * a scripted **remote crash** mid-mission — cold rebuild vs
//!   checkpointed re-offload,
//! * a sustained **radio blackout** — rigid full-fidelity pipeline vs
//!   reduced-fidelity degraded mode, and
//! * **cloud-tier chaos** (replica crashes, stragglers, failed
//!   scale-ups) against the elastic scheduler, with the waste priced
//!   in the cost ledger.
//!
//! Every arm prints one machine-greppable
//! `SLO arm=<name> ttr_s=<x> degraded_frac=<x> missed=<n>` line —
//! `scripts/check_recovery.sh` diffs these against the committed
//! `BENCH_recovery_baseline.txt` so recovery-SLO regressions fail CI
//! the same way perf regressions do.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_net::fault::{CloudFaultKind, CloudFaultSchedule};
use lgv_net::{FaultKind, FaultSchedule};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet_traced, CloudPolicy, ElasticConfig, FleetConfig, FleetReport};
use lgv_offload::mission::{MissionConfig, Workload};
use lgv_offload::model::VelocityModel;
use lgv_offload::recovery::{DegradedConfig, RecoveryConfig};
use lgv_sim::world::WorldBuilder;
use lgv_trace::{JsonlSink, TraceAnalysis, TraceReader, Tracer};
use lgv_types::prelude::*;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One experimental arm: a failure script plus a recovery posture.
struct Arm {
    name: &'static str,
    faults: FaultSchedule,
    cloud_faults: CloudFaultSchedule,
    recovery: RecoveryConfig,
    policy: CloudPolicy,
}

fn arms(seed: u64) -> Vec<Arm> {
    let crash = || FaultSchedule::none().with(8.0, 10.0, FaultKind::RemoteCrash);
    let blackout = || FaultSchedule::none().with(8.0, 12.0, FaultKind::Blackout);
    let cloud_chaos = || {
        CloudFaultSchedule::none()
            .with(5.0, 10.0, CloudFaultKind::ReplicaCrash { replicas: 1 })
            .with(12.0, 8.0, CloudFaultKind::Straggler { factor: 2.5 })
            .with(5.0, 12.0, CloudFaultKind::FailedScaleUp)
    };
    vec![
        Arm {
            name: "crash-cold",
            faults: crash(),
            cloud_faults: CloudFaultSchedule::none(),
            recovery: RecoveryConfig::default(),
            policy: CloudPolicy::Fixed,
        },
        Arm {
            name: "crash-ckpt",
            faults: crash(),
            cloud_faults: CloudFaultSchedule::none(),
            recovery: RecoveryConfig::default().with_checkpoints(Duration::from_secs(2)),
            policy: CloudPolicy::Fixed,
        },
        Arm {
            name: "blackout-rigid",
            faults: blackout(),
            cloud_faults: CloudFaultSchedule::none(),
            recovery: RecoveryConfig::default(),
            policy: CloudPolicy::Fixed,
        },
        Arm {
            name: "blackout-degraded",
            faults: blackout(),
            cloud_faults: CloudFaultSchedule::none(),
            recovery: RecoveryConfig::default().with_degraded(DegradedConfig::default()),
            policy: CloudPolicy::Fixed,
        },
        Arm {
            name: "cloud-chaos",
            faults: FaultSchedule::none(),
            cloud_faults: cloud_chaos(),
            recovery: RecoveryConfig::default(),
            policy: CloudPolicy::Elastic(ElasticConfig::balanced()),
        },
        Arm {
            name: "compound-resilient",
            faults: FaultSchedule::randomized(seed, Duration::from_secs(20)),
            cloud_faults: CloudFaultSchedule::randomized(seed, Duration::from_secs(20)),
            recovery: RecoveryConfig::resilient(),
            policy: CloudPolicy::Elastic(ElasticConfig::balanced()),
        },
    ]
}

/// The arm's mission: a 14 m corridor drive slow enough (~45 s of
/// virtual time per vehicle) that the scripted failures land
/// mid-flight and the full recovery arc — detect, fall local, back
/// off, re-offload — fits before the goal.
fn corridor_mission(seed: u64) -> MissionConfig {
    let world = WorldBuilder::new(16.0, 4.0, 0.05).walls().build();
    let mut base = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
    base.world = world;
    base.start = Pose2D::new(1.0, 2.0, 0.0);
    base.nav_goal = Point2::new(14.5, 2.0);
    base.wap = Point2::new(14.5, 2.0);
    base.max_time = Duration::from_secs(240);
    base.velocity = VelocityModel {
        hw_cap: 0.35,
        ..VelocityModel::default()
    };
    base.seed = seed;
    base
}

/// Run one arm's fleet with an in-memory trace and analyze it.
fn run_arm(arm: &Arm, seed: u64, size: usize) -> (FleetReport, TraceAnalysis) {
    let mut base = corridor_mission(seed);
    base.faults = arm.faults.clone();
    base.recovery = arm.recovery;
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    let report = run_fleet_traced(
        FleetConfig::new(base, size)
            .with_cloud(arm.policy)
            .with_cloud_faults(arm.cloud_faults.clone()),
        tracer,
    );
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let records = TraceReader::parse_str(&text).expect("trace parses");
    (report, TraceAnalysis::from_records(&records))
}

/// Regenerate the chaos-fleet recovery-SLO study.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Chaos-fleet: recovery SLOs under crash, blackout, and cloud chaos",
        "two recovery postures vs three failure families; SLO lines feed \
         scripts/check_recovery.sh",
    )?;
    let size: usize = if ctx.quick { 2 } else { 3 };

    let mut table = TablePrinter::new(vec![
        "arm",
        "done",
        "mean t s",
        "hb miss",
        "ckpts",
        "degraded s",
        "missed",
        "ttr s",
        "wasted repl-s",
    ]);
    let mut slo_lines = Vec::new();
    let mut mission_secs = Vec::new();
    for arm in arms(ctx.seed) {
        let (report, analysis) = run_arm(&arm, ctx.seed, size);
        mission_secs.push((arm.name, report.mean_mission_secs()));
        let recovery = analysis.recovery_report();
        let (degraded_s, degraded_frac, missed, ckpts) =
            recovery.as_ref().map_or((0.0, 0.0, 0, 0), |r| {
                (
                    r.degraded_ns as f64 / 1e9,
                    r.degraded_fraction,
                    r.missed_cycles,
                    r.checkpoints,
                )
            });
        let ttr = analysis
            .mean_reoffload_latency_ns()
            .map_or("n/a".to_string(), |ns| format!("{:.3}", ns as f64 / 1e9));
        let wasted = report
            .cloud
            .as_ref()
            .map_or(0.0, |c| c.wasted_replica_seconds);
        table.row(vec![
            arm.name.to_string(),
            format!("{}/{}", report.completed(), report.vehicles.len()),
            format!("{:.1}", report.mean_mission_secs()),
            analysis.heartbeat_miss_count().to_string(),
            ckpts.to_string(),
            format!("{degraded_s:.1}"),
            missed.to_string(),
            ttr.clone(),
            format!("{wasted:.1}"),
        ]);
        slo_lines.push(format!(
            "SLO arm={} ttr_s={} degraded_frac={:.4} missed={}",
            arm.name, ttr, degraded_frac, missed
        ));
    }
    table.write_to(ctx.out)?;
    table.save_csv_to(ctx.out, "chaos_fleet")?;

    for line in &slo_lines {
        writeln!(ctx.out, "{line}")?;
    }

    // The two headline claims, stated over the arm results.
    let t_of = |name: &str| {
        mission_secs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    };
    writeln!(
        ctx.out,
        "checkpointed re-offload no slower than cold rebuild: {} \
         (cold {:.1} s vs ckpt {:.1} s mean mission)",
        t_of("crash-ckpt") <= t_of("crash-cold"),
        t_of("crash-cold"),
        t_of("crash-ckpt"),
    )?;
    writeln!(
        ctx.out,
        "degraded mode no slower than rigid under blackout: {} \
         (rigid {:.1} s vs degraded {:.1} s mean mission)",
        t_of("blackout-degraded") <= t_of("blackout-rigid"),
        t_of("blackout-rigid"),
        t_of("blackout-degraded"),
    )?;
    writeln!(ctx.out)
}
