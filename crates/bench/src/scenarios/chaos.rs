//! Chaos sweep: seeded randomized fault schedules thrown at short
//! offloaded navigation missions, plus the scripted remote-crash
//! showcase (the Fig. 12 storyline with a dead cloud instead of a
//! dead zone). Every run is deterministic per seed — any row here can
//! be replayed exactly.
//!
//! Quick mode shrinks the sweep for smoke runs.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_net::signal::WirelessConfig;
use lgv_net::{FaultKind, FaultSchedule};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, MissionReport, Workload};
use lgv_offload::model::{Goal, VelocityModel};
use lgv_offload::policy::PolicyKind;
use lgv_offload::recovery::RecoveryConfig;
use lgv_offload::strategy::PinPolicy;
use lgv_sim::world::WorldBuilder;
use lgv_sim::LidarConfig;
use lgv_trace::{JsonlSink, TraceAnalysis, TraceReader, Tracer};
use lgv_types::prelude::*;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one mission with an in-memory trace and analyze it.
fn run_analyzed(cfg: MissionConfig) -> (MissionReport, TraceAnalysis) {
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    let report = mission::run_traced(cfg, tracer);
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let records = TraceReader::parse_str(&text).expect("trace parses");
    (report, TraceAnalysis::from_records(&records))
}

fn chaos_config(seed: u64) -> MissionConfig {
    let world = WorldBuilder::new(7.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.5, 2.6), 0.3)
        .build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(5.8, 2.2),
        wap: Point2::new(3.5, 4.5),
        wireless: WirelessConfig::default().with_weak_radius(30.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(180),
        dwa_samples: 400,
        slam_particles: 6,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: FaultSchedule::randomized(seed, Duration::from_secs(20)),
        recovery: RecoveryConfig::default(),
    }
}

fn schedule_label(s: &FaultSchedule) -> String {
    s.windows()
        .iter()
        .map(|w| {
            format!(
                "{}@{:.0}s+{:.0}s",
                w.kind.label(),
                w.from.saturating_since(SimTime::EPOCH).as_secs_f64(),
                w.until.saturating_since(w.from).as_secs_f64()
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn chaos_sweep(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Chaos sweep: randomized fault schedules vs the recovery stack",
        "graceful degradation: complete or abort cleanly, never panic, per-seed deterministic",
    )?;
    let n_seeds: u64 = if ctx.quick { 3 } else { 10 };
    let mut table = TablePrinter::new(vec![
        "seed", "schedule", "done", "time s", "switches", "hb miss", "mig t/o", "backoffs",
    ]);
    for seed in ctx.seed..ctx.seed + n_seeds {
        let cfg = chaos_config(seed);
        let label = schedule_label(&cfg.faults);
        let (report, analysis) = run_analyzed(cfg);
        table.row(vec![
            seed.to_string(),
            label,
            if report.completed {
                "yes".into()
            } else {
                format!("no: {}", report.reason)
            },
            format!("{:.1}", report.time.total().as_secs_f64()),
            report.net_switches.to_string(),
            analysis.heartbeat_miss_count().to_string(),
            analysis.migration_timeout_count().to_string(),
            analysis.backoff_count().to_string(),
        ]);
    }
    table.write_to(ctx.out)
}

fn crash_showcase(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Scripted remote crash: heartbeat fallback and backed-off re-offload",
        "crash at t=30 s for 20 s: local within 2 s (heartbeat), re-offload gated by backoff",
    )?;
    let world = WorldBuilder::new(18.0, 4.0, 0.05).walls().build();
    let cfg = MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed: 11,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(16.0, 2.0),
        wap: Point2::new(16.0, 2.0),
        wireless: WirelessConfig::default().with_weak_radius(40.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(240),
        dwa_samples: 600,
        slam_particles: 6,
        velocity: VelocityModel {
            hw_cap: 0.22,
            ..VelocityModel::default()
        },
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: FaultSchedule::none().with(30.0, 20.0, FaultKind::RemoteCrash),
        recovery: RecoveryConfig::default(),
    };
    let (report, analysis) = run_analyzed(cfg);
    writeln!(
        ctx.out,
        "  completed {} in {:.1} s  (switches {}, heartbeat misses {}, migration timeouts {}, backoffs {})",
        report.completed,
        report.time.total().as_secs_f64(),
        report.net_switches,
        analysis.heartbeat_miss_count(),
        analysis.migration_timeout_count(),
        analysis.backoff_count(),
    )?;
    writeln!(ctx.out)?;
    // The analysis layer's own attribution of the window.
    for line in analysis.render_report().lines() {
        if line.contains("fault") || line.contains("inside:") || line.contains("backoff") {
            writeln!(ctx.out, "  {line}")?;
        }
    }
    Ok(())
}

/// Regenerate the chaos sweep + crash showcase.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    chaos_sweep(ctx)?;
    crash_showcase(ctx)
}
