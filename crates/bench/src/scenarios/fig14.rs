//! Figure 14 — the relationship between the maximum velocity and the
//! real velocity on a complex path (avoiding obstacles / heading
//! straight / turning right).
//!
//! Runs the obstacle-course navigation mission under three velocity
//! policies and reports, per path phase, the mean commanded maximum
//! velocity and the mean realized velocity. The paper's observation:
//! only on straight stretches does the real velocity reach the
//! maximum; the higher the cap, the bigger the gap in obstacle and
//! turning phases — so a phase-aware policy can cut cloud cost by
//! reducing parallelization where the cap is unreachable anyway.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_offload::model::VelocityModel;
use lgv_sim::world::presets;
use lgv_types::prelude::*;
use std::io;

/// Classify a trace sample into a path phase by position.
fn phase_of(x: f64, y: f64) -> &'static str {
    if x < 9.0 && y < 6.5 {
        "avoiding obstacles"
    } else if y < 6.5 {
        "heading straight"
    } else {
        "turning right/north"
    }
}

/// Regenerate Figure 14.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 14: maximum vs real velocity across path phases",
        "real velocity only reaches v_max on straight stretches; higher caps widen \
         the gap in obstacle/turn phases",
    )?;

    let policies: [(&str, VelocityModel); 3] = [
        (
            "low cap (0.3 m/s)",
            VelocityModel {
                hw_cap: 0.3,
                ..VelocityModel::default()
            },
        ),
        (
            "mid cap (0.6 m/s)",
            VelocityModel {
                hw_cap: 0.6,
                ..VelocityModel::default()
            },
        ),
        ("adaptive (1.0 m/s)", VelocityModel::default()),
    ];

    let mut t = TablePrinter::new(vec![
        "policy",
        "phase",
        "mean vmax",
        "mean real v",
        "gap",
        "gap %",
    ]);

    for (label, vm) in policies {
        let mut cfg = MissionConfig::navigation_lab(Deployment::cloud_12t());
        cfg.workload = Workload::Navigation;
        cfg.seed = ctx.seed;
        cfg.world = presets::obstacle_course();
        cfg.start = presets::course_start();
        cfg.nav_goal = presets::course_goal();
        cfg.wap = Point2::new(10.0, 11.0);
        cfg.velocity = vm;
        cfg.max_time = Duration::from_secs(if ctx.quick { 90 } else { 400 });
        let report = mission::run(cfg.clone());

        // Bucket the trace samples by the robot's true position.
        let mut buckets: std::collections::HashMap<&'static str, (f64, f64, usize)> =
            Default::default();
        for sample in &report.velocity_trace {
            let e = buckets
                .entry(phase_of(sample.position.x, sample.position.y))
                .or_insert((0.0, 0.0, 0));
            e.0 += sample.vmax;
            e.1 += sample.actual;
            e.2 += 1;
        }
        for phase in [
            "avoiding obstacles",
            "heading straight",
            "turning right/north",
        ] {
            if let Some((vs, rs, n)) = buckets.get(phase) {
                let vm_mean = vs / *n as f64;
                let rv_mean = rs / *n as f64;
                let gap = vm_mean - rv_mean;
                t.row(vec![
                    label.to_string(),
                    phase.to_string(),
                    format!("{vm_mean:.3}"),
                    format!("{rv_mean:.3}"),
                    format!("{gap:.3}"),
                    format!("{:.0}%", gap / vm_mean.max(1e-9) * 100.0),
                ]);
            }
        }
        writeln!(
            ctx.out,
            "{label}: mission {} in {:.0}s, {:.1} m",
            if report.completed {
                "completed"
            } else {
                "timed out"
            },
            report.time.total().as_secs_f64(),
            report.distance
        )?;
    }
    writeln!(ctx.out)?;
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fig14_phases")?;
    Ok(())
}
