//! Policy race — the three offload deciders head-to-head on identical
//! missions across three axes.
//!
//! The pluggable decision layer (`lgv_offload::policy`) makes the
//! comparison the ROADMAP asked for actually runnable: Algorithm 1
//! (the paper), greedy global placement (muPlacer-style search over
//! the node→tier vector), and the tabular contextual bandit
//! (Chinchali et al.'s sequential-decision framing) each drive the
//! same seeded missions, and the table reports per-policy cycle time,
//! energy, migration churn, and — on the fleet arm — shared-cloud
//! queueing.
//!
//! Three arms:
//!
//! * **sweep** — procedural floorplans on the edge deployment: the
//!   generalization axis;
//! * **chaos** — randomized fault schedules: the resilience axis,
//!   where Algorithm 2's verdict (visible to every policy through the
//!   context) and recovery churn dominate;
//! * **fleet** — N vehicles against one shared cloud: the contention
//!   axis, where admission queueing feeds back into every policy's
//!   remote-time estimates.
//!
//! Quick mode shrinks every arm.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_net::FaultSchedule;
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, MissionReport, Workload};
use lgv_offload::policy::PolicyKind;
use lgv_sim::world::generator::{generate, FloorplanConfig};
use lgv_types::prelude::*;
use lgv_types::stats::Summary;
use std::io;

/// Per-policy aggregates over one arm's missions.
#[derive(Default)]
struct Tally {
    completed: u32,
    runs: u32,
    time: Summary,
    cycle_ms: Summary,
    energy: Summary,
    migrations: u64,
}

impl Tally {
    fn push(&mut self, report: &MissionReport) {
        self.runs += 1;
        if report.completed {
            self.completed += 1;
        }
        self.time.push(report.time.total().as_secs_f64());
        self.cycle_ms
            .push(report.avg_vdp_makespan.as_secs_f64() * 1e3);
        self.energy.push(report.energy.total_joules());
        self.migrations += report.net_switches;
    }

    fn row(&self, policy: PolicyKind) -> Vec<String> {
        vec![
            policy.label().to_string(),
            format!("{}/{}", self.completed, self.runs),
            format!("{:.1}", self.time.mean()),
            format!("{:.1}", self.cycle_ms.mean()),
            format!("{:.0}", self.energy.mean()),
            self.migrations.to_string(),
        ]
    }
}

fn arm_table() -> TablePrinter {
    TablePrinter::new(vec![
        "policy",
        "done",
        "time mean (s)",
        "cycle mean (ms)",
        "energy mean (J)",
        "migrations",
    ])
}

/// Regenerate the three-way policy race.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Policy race: Algorithm 1 vs global placement vs contextual bandit",
        "extension: the decision layer is pluggable; the three deciders run the \
         same seeded missions across sweep, chaos, and fleet axes",
    )?;

    // ---- arm 1: procedural-floorplan sweep -------------------------
    writeln!(ctx.out)?;
    writeln!(ctx.out, "== arm 1: floorplan sweep (edge 8T) ==")?;
    let gen_cfg = FloorplanConfig {
        rooms_x: 3,
        rooms_y: 2,
        room_size: 4.5,
        door: 1.3,
        ..Default::default()
    };
    let n_seeds: u64 = if ctx.quick { 2 } else { 4 };
    let mut table = arm_table();
    for policy in PolicyKind::ALL {
        let mut tally = Tally::default();
        for seed in ctx.seed..ctx.seed + n_seeds {
            let plan = generate(&gen_cfg, seed);
            let mut cfg = MissionConfig::navigation_lab(Deployment::edge_8t());
            cfg.policy = policy;
            cfg.seed = seed;
            cfg.world = plan.world.clone();
            cfg.start = plan.start;
            cfg.nav_goal = plan.goal;
            cfg.wap = Point2::new(
                gen_cfg.rooms_x as f64 * gen_cfg.room_size / 2.0,
                gen_cfg.rooms_y as f64 * gen_cfg.room_size / 2.0,
            );
            cfg.record_traces = false;
            cfg.max_time = Duration::from_secs(600);
            tally.push(&mission::run(cfg));
        }
        table.row(tally.row(policy));
    }
    table.write_to(ctx.out)?;

    // ---- arm 2: chaos ----------------------------------------------
    writeln!(ctx.out)?;
    writeln!(ctx.out, "== arm 2: randomized fault schedules ==")?;
    let n_chaos: u64 = if ctx.quick { 2 } else { 4 };
    let mut table = arm_table();
    for policy in PolicyKind::ALL {
        let mut tally = Tally::default();
        for seed in ctx.seed..ctx.seed + n_chaos {
            let mut cfg = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
            cfg.policy = policy;
            cfg.seed = seed;
            cfg.record_traces = false;
            cfg.max_time = Duration::from_secs(180);
            cfg.faults = FaultSchedule::randomized(seed, Duration::from_secs(20));
            tally.push(&mission::run(cfg));
        }
        table.row(tally.row(policy));
    }
    table.write_to(ctx.out)?;

    // ---- arm 3: fleet contention -----------------------------------
    writeln!(ctx.out)?;
    writeln!(ctx.out, "== arm 3: shared-cloud fleet ==")?;
    let fleet_size: usize = if ctx.quick { 2 } else { 4 };
    let mut table = TablePrinter::new(vec![
        "policy",
        "done",
        "time mean (s)",
        "cycle mean (ms)",
        "energy mean (J)",
        "migrations",
        "queue mean (ms)",
    ]);
    for policy in PolicyKind::ALL {
        let mut cfg = MissionConfig::compact_lab(Deployment::cloud_12t(), Workload::Navigation);
        cfg.seed = ctx.seed;
        cfg.record_traces = false;
        let report = run_fleet(FleetConfig::new(cfg, fleet_size).with_policy(policy));
        let mut tally = Tally::default();
        for v in &report.vehicles {
            tally.push(v);
        }
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        let mut row = tally.row(policy);
        row.push(format!("{:.3}", cloud.mean_queue_delay_secs() * 1e3));
        table.row(row);
    }
    table.write_to(ctx.out)?;

    writeln!(ctx.out)?;
    writeln!(
        ctx.out,
        "all three policies ran every arm on identical seeds; see docs/POLICY.md \
         for the trait contract and how to add a fourth"
    )
}
