//! Elastic-cloud ablation — fixed box vs. autoscaling with and
//! without batched admission, at one contended fleet size.
//!
//! Where the `fleet` scenario sweeps size, this one isolates the
//! elasticity axis: the same fleet runs against (a) the paper's fixed
//! cloud, (b) an autoscaling replica pool with batching disabled, and
//! (c) the full elastic scheduler with same-stage batching. The cost
//! ledger (replica-seconds, scale events, batch occupancy) quantifies
//! what each latency reduction costs, and the single-replica-capped
//! fleet-of-one gate re-asserts that elasticity never perturbs a lone
//! tenant.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet_traced, CloudPolicy, ElasticConfig, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, Workload};
use std::io;

/// Regenerate the elastic-cloud ablation.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Elastic cloud ablation: fixed vs. autoscale vs. autoscale+batching",
        "one contended fleet, three provisioning policies; the cost ledger \
         prices each queueing-delay reduction in replica-seconds",
    )?;

    let size: usize = if ctx.quick { 4 } else { 16 };
    let base_cfg = || {
        let mut cfg = MissionConfig::compact_lab(Deployment::cloud_12t(), Workload::Navigation);
        cfg.seed = ctx.seed;
        cfg
    };

    let arms = [
        ("fixed", CloudPolicy::Fixed),
        (
            "autoscale",
            CloudPolicy::Elastic(ElasticConfig::balanced().without_batching()),
        ),
        (
            "autoscale+batch",
            CloudPolicy::Elastic(ElasticConfig::balanced()),
        ),
    ];

    let mut t = TablePrinter::new(vec![
        "cloud",
        "done",
        "mean t s",
        "mean q ms",
        "delayed",
        "peak repl",
        "replica-s",
        "scale +/-",
        "batches",
        "occupancy",
    ]);
    let mut q_ms = [0.0f64; 3];
    for (i, &(label, policy)) in arms.iter().enumerate() {
        let report = run_fleet_traced(
            FleetConfig::new(base_cfg(), size).with_cloud(policy),
            ctx.tracer.clone(),
        );
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        q_ms[i] = cloud.mean_queue_delay_secs() * 1e3;
        t.row(vec![
            label.to_string(),
            format!("{}/{}", report.completed(), report.vehicles.len()),
            format!("{:.1}", report.mean_mission_secs()),
            format!("{:.3}", q_ms[i]),
            format!("{}", cloud.delayed),
            format!("{}", cloud.peak_replicas),
            format!("{:.1}", cloud.replica_seconds),
            format!("{}/{}", cloud.scale_ups, cloud.scale_downs),
            format!("{}", cloud.batches),
            format!("{:.2}", cloud.mean_batch_occupancy()),
        ]);
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "elastic_fleet")?;

    // The elastic identity gate, at the scenario's own seed.
    let solo_fp = mission::run(base_cfg()).fingerprint();
    let capped = run_fleet_traced(
        FleetConfig::new(base_cfg(), 1).with_cloud(CloudPolicy::Elastic(
            ElasticConfig::balanced().single_replica(),
        )),
        ctx.tracer.clone(),
    );
    writeln!(
        ctx.out,
        "fleet-of-1 under elastic scheduler (1-replica cap) byte-identical to \
         single-vehicle run: {} (fnv1a:{solo_fp:016x})",
        capped.vehicles[0].fingerprint() == solo_fp
    )?;
    writeln!(
        ctx.out,
        "mean queueing delay at size {size}: fixed {:.3} ms -> autoscale {:.3} ms \
         -> autoscale+batch {:.3} ms (batching helps: {})",
        q_ms[0],
        q_ms[1],
        q_ms[2],
        q_ms[2] <= q_ms[1] && q_ms[2] <= q_ms[0]
    )?;
    writeln!(ctx.out)
}
