//! Ablations of the paper's three optimization strategies: what
//! breaks when each is removed (DESIGN.md §5).
//!
//! 1. **Cloud acceleration off** — offloaded nodes run single-threaded
//!    (deployment `Cloud` vs `Cloud (12t)`).
//! 2. **Latency-only network control** — replay the Fig. 11 dead-zone
//!    trace against the naive latency-threshold controller: it never
//!    reacts, because the only latency samples it sees are survivors.
//! 3. **Static offloading in a dead zone** — Algorithm 2 disabled; the
//!    mission stalls waiting for commands that never arrive.
//! 4. **Coarse-grained migration under a degraded WAN** — Algorithm 1
//!    with the MCT goal pulls the VDP back on-board when the network
//!    makes the cloud VDP slower; a policy that blindly keeps
//!    everything remote pays the latency on the critical path.
//! 5. **Adaptive parallelism governor off** — fixed 12 threads vs
//!    governed threads on the obstacle course.

use crate::suite::ScenarioCtx;
use crate::write_banner;
use lgv_net::signal::WirelessConfig;
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_offload::model::Goal;
use lgv_offload::netctl::{LatencyOnlyControl, NetDecision};
use lgv_sim::world::WorldBuilder;
use lgv_types::prelude::*;
use std::io;

/// Regenerate the ablation study.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    ablation_parallelization(ctx)?;
    ablation_latency_metric(ctx)?;
    ablation_static_offload(ctx)?;
    ablation_fine_grained(ctx)?;
    ablation_thread_governor(ctx)
}

fn ablation_parallelization(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Ablation 1: cloud acceleration (parallelization) off",
        "§V: parallel scanMatch/scoring is where the big ECN gains come from",
    )?;
    for d in [Deployment::cloud(), Deployment::cloud_12t()] {
        let mut cfg = MissionConfig::navigation_lab(d);
        cfg.seed = ctx.seed;
        cfg.record_traces = false;
        if ctx.quick {
            cfg.max_time = Duration::from_secs(60);
        }
        let r = mission::run(cfg);
        writeln!(
            ctx.out,
            "  {:<12} time {:>6.1} s  energy {:>7.1} J  avg VDP {:>6.1} ms",
            d.label,
            r.time.total().as_secs_f64(),
            r.energy.total_joules(),
            r.avg_vdp_makespan.as_millis_f64()
        )?;
    }
    Ok(())
}

fn ablation_latency_metric(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Ablation 2: latency-threshold control vs Algorithm 2",
        "Fig. 7/11: survivor latency stays healthy while the UDP sender silently discards",
    )?;
    // Replay the starved-link condition: the only observations a
    // latency controller gets in the dead zone are (a) stale healthy
    // samples and (b) nothing at all.
    let ctl = LatencyOnlyControl {
        latency_threshold: Duration::from_millis(100),
    };
    let observations: [(Option<Duration>, &str); 4] = [
        (
            Some(Duration::from_millis(28)),
            "healthy sample before the dead zone",
        ),
        (
            Some(Duration::from_millis(31)),
            "last survivor at the boundary",
        ),
        (None, "inside the dead zone: no packets at all"),
        (None, "still nothing"),
    ];
    let mut reacted = false;
    for (obs, label) in observations {
        let d = ctl.decide(obs, true);
        reacted |= d != NetDecision::Keep;
        writeln!(
            ctx.out,
            "  obs {:>8}  -> {:?}   ({label})",
            obs.map_or("-".into(), |o| o.to_string()),
            d
        )?;
    }
    writeln!(
        ctx.out,
        "  latency-only controller reacted: {reacted} (Algorithm 2 switches on the same trace — see fig11)"
    )
}

fn dead_zone_cfg(seed: u64, adaptive: bool, quick: bool) -> MissionConfig {
    let world = WorldBuilder::new(20.0, 4.0, 0.05).walls().build();
    let mut cfg = MissionConfig::navigation_lab(Deployment::cloud_12t());
    cfg.workload = Workload::Navigation;
    cfg.seed = seed;
    cfg.world = world;
    cfg.start = Pose2D::new(1.0, 2.0, 0.0);
    cfg.nav_goal = Point2::new(18.5, 2.0);
    cfg.wap = Point2::new(1.0, 3.5);
    cfg.wireless = WirelessConfig::default().with_weak_radius(8.0);
    cfg.adaptive = adaptive;
    cfg.max_time = Duration::from_secs(if quick { 90 } else { 240 });
    cfg.record_traces = false;
    cfg
}

fn ablation_static_offload(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Ablation 3: static offloading policy in a radio dead zone",
        "§VI: without real-time adjustment the LGV 'will stop at the time of weak signal forever'",
    )?;
    for (label, adaptive) in [("static", false), ("adaptive (Alg. 2)", true)] {
        let r = mission::run(dead_zone_cfg(ctx.seed, adaptive, ctx.quick));
        writeln!(
            ctx.out,
            "  {:<18} completed {:<5} time {:>6.1} s  standby {:>6.1} s  switches {}",
            label,
            r.completed,
            r.time.total().as_secs_f64(),
            r.time.standby.as_secs_f64(),
            r.net_switches
        )?;
    }
    Ok(())
}

fn ablation_fine_grained(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Ablation 4: fine-grained migration (Algorithm 1, MCT) under a degraded WAN",
        "§IV: if Tc > Tl^v, migrate the T3 nodes back; keeping them remote puts 350 ms on the critical path",
    )?;
    for (label, goal) in [
        ("MCT (migrates T3 back)", Goal::MissionTime),
        ("EC (keeps VDP remote)", Goal::Energy),
    ] {
        let mut cfg = MissionConfig::navigation_lab(Deployment::cloud_12t());
        cfg.seed = ctx.seed;
        cfg.goal = goal;
        cfg.adaptive = false;
        cfg.wan_latency_override = Some(Duration::from_millis(350));
        cfg.record_traces = false;
        if ctx.quick {
            cfg.max_time = Duration::from_secs(60);
        }
        let r = mission::run(cfg);
        writeln!(
            ctx.out,
            "  {:<26} completed {:<5} time {:>6.1} s  avg VDP {:>6.0} ms  energy {:>7.1} J",
            label,
            r.completed,
            r.time.total().as_secs_f64(),
            r.avg_vdp_makespan.as_millis_f64(),
            r.energy.total_joules()
        )?;
    }
    writeln!(
        ctx.out,
        "  (EC still wins on embedded-computer energy; MCT wins on time — the goal knob matters)"
    )
}

fn ablation_thread_governor(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Ablation 5: adaptive parallelism governor (paper §VIII-E)",
        "when obstacles bind the real velocity, reduce parallelization to save cloud \
         resources with minimal mission impact",
    )?;
    use lgv_offload::model::VelocityModel;
    use lgv_sim::world::presets;
    // An over-ambitious velocity model (long stopping distance → high
    // v_max) on the obstacle course: exactly the "higher maximum
    // velocity, bigger gap" condition of Fig. 14 where cloud threads
    // buy speed the environment won't let the robot use.
    for (label, adaptive_par) in [("fixed 12 threads", false), ("governed threads", true)] {
        let mut cfg = MissionConfig::navigation_lab(Deployment::cloud_12t());
        cfg.seed = ctx.seed;
        cfg.world = presets::obstacle_course();
        cfg.start = presets::course_start();
        cfg.nav_goal = presets::course_goal();
        cfg.wap = Point2::new(10.0, 11.0);
        cfg.velocity = VelocityModel {
            stop_distance: 0.3,
            ..VelocityModel::default()
        };
        cfg.adaptive_parallelism = adaptive_par;
        cfg.record_traces = false;
        cfg.max_time = Duration::from_secs(if ctx.quick { 90 } else { 400 });
        let r = mission::run(cfg);
        writeln!(
            ctx.out,
            "  {:<18} completed {:<5} time {:>6.1} s  avg remote threads {:>5.1}",
            label,
            r.completed,
            r.time.total().as_secs_f64(),
            r.avg_threads
        )?;
    }
    Ok(())
}
