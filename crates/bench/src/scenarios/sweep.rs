//! Campaign tool: sweep the full deployment matrix across a family of
//! seeded procedural floorplans and aggregate the offloading benefit.
//!
//! This is the "does it generalize?" experiment the paper's single-lab
//! evaluation cannot run: per-deployment mean/σ of mission time and
//! energy over many environments, plus win rates against the local
//! baseline.
//!
//! Quick mode shrinks the sweep.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_sim::world::generator::{generate, FloorplanConfig};
use lgv_types::prelude::*;
use lgv_types::stats::Summary;
use std::io;

/// Regenerate the deployment sweep.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Deployment sweep over procedural floorplans",
        "extension: the paper evaluates one lab; this sweeps generated worlds and \
         aggregates the offloading benefit",
    )?;

    let gen_cfg = FloorplanConfig {
        rooms_x: 3,
        rooms_y: 2,
        room_size: 4.5,
        door: 1.3,
        ..Default::default()
    };
    let n_seeds: u64 = if ctx.quick { 2 } else { 6 };
    let seeds: Vec<u64> = (ctx.seed..ctx.seed + n_seeds).collect();
    let deployments = [
        Deployment::local(),
        Deployment::edge_8t(),
        Deployment::cloud_12t(),
    ];

    let mut time_stats: Vec<Summary> = deployments.iter().map(|_| Summary::new()).collect();
    let mut energy_stats: Vec<Summary> = deployments.iter().map(|_| Summary::new()).collect();
    let mut completions = vec![0u32; deployments.len()];
    let mut wins = vec![0u32; deployments.len()];

    for &seed in &seeds {
        let plan = generate(&gen_cfg, seed);
        let mut local_time = f64::INFINITY;
        for (di, d) in deployments.iter().enumerate() {
            let mut cfg = MissionConfig::navigation_lab(*d);
            cfg.workload = Workload::Navigation;
            cfg.seed = seed;
            cfg.world = plan.world.clone();
            cfg.start = plan.start;
            cfg.nav_goal = plan.goal;
            cfg.wap = Point2::new(
                gen_cfg.rooms_x as f64 * gen_cfg.room_size / 2.0,
                gen_cfg.rooms_y as f64 * gen_cfg.room_size / 2.0,
            );
            cfg.record_traces = false;
            cfg.max_time = Duration::from_secs(600);
            let report = mission::run(cfg);
            let secs = report.time.total().as_secs_f64();
            time_stats[di].push(secs);
            energy_stats[di].push(report.energy.total_joules());
            if report.completed {
                completions[di] += 1;
            }
            if di == 0 {
                local_time = secs;
            } else if report.completed && secs < local_time {
                wins[di] += 1;
            }
        }
    }

    let mut t = TablePrinter::new(vec![
        "deployment",
        "completed",
        "time mean (s)",
        "time sd",
        "energy mean (J)",
        "energy sd",
        "beats local",
    ]);
    for (di, d) in deployments.iter().enumerate() {
        t.row(vec![
            d.label.to_string(),
            format!("{}/{}", completions[di], seeds.len()),
            format!("{:.1}", time_stats[di].mean()),
            format!("{:.1}", time_stats[di].std_dev()),
            format!("{:.0}", energy_stats[di].mean()),
            format!("{:.0}", energy_stats[di].std_dev()),
            if di == 0 {
                "-".to_string()
            } else {
                format!("{}/{}", wins[di], seeds.len())
            },
        ]);
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "sweep_summary")?;
    writeln!(ctx.out)?;
    writeln!(
        ctx.out,
        "mean speedup edge(8t) vs local: {:.2}x   cloud(12t) vs local: {:.2}x",
        time_stats[0].mean() / time_stats[1].mean(),
        time_stats[0].mean() / time_stats[2].mean()
    )
}
