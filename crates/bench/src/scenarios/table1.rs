//! Table I — maximum power consumption of each LGV component — and
//! Table III — computing offloading platform specifications.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_sim::platform::Platform;
use lgv_sim::power::LgvProfile;
use std::io;

/// Regenerate Tables I and III.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Table I: maximum power consumption of each component (Watt)",
        "Turtlebot3 = sensor 1 (6.5%), motor 6.7 (44%), MCU 1 (6.5%), EC 6.5 (43%)",
    )?;
    let mut t = TablePrinter::new(vec![
        "LGV",
        "Sensor",
        "Motor",
        "Microcontroller",
        "EmbeddedComputer",
        "Total",
    ]);
    for p in [
        LgvProfile::turtlebot2(),
        LgvProfile::turtlebot3(),
        LgvProfile::pioneer_3dx(),
    ] {
        let d = p.max_power;
        let s = d.shares();
        t.row(vec![
            p.name.to_string(),
            format!("{:.2} ({:.0}%)", d.sensor, s[0]),
            format!("{:.2} ({:.0}%)", d.motor, s[1]),
            format!("{:.2} ({:.0}%)", d.microcontroller, s[2]),
            format!("{:.2} ({:.0}%)", d.embedded_computer, s[3]),
            format!("{:.2}", d.total()),
        ]);
    }
    t.write_to(ctx.out)?;

    write_banner(
        ctx.out,
        "Table III: computing offloading platform specifications",
        "Turtlebot3 RPi 3B+ 1.4GHz/4c/1GB | gateway i7-7700K 4.2GHz/4c/16GB | cloud Xeon 6149 3.1GHz/24c/768GB",
    )?;
    let mut t = TablePrinter::new(vec![
        "Platform",
        "Model",
        "Freq (GHz)",
        "Cores",
        "HW threads",
        "Memory (GB)",
        "Feature",
    ]);
    for (p, feature) in [
        (Platform::turtlebot3(), "Low Freq"),
        (Platform::edge_gateway(), "High Freq"),
        (Platform::cloud_server(), "Manycore"),
    ] {
        t.row(vec![
            format!("{:?}", p.kind),
            p.model.to_string(),
            format!("{:.1}", p.freq_hz / 1e9),
            p.cores.to_string(),
            p.hw_threads.to_string(),
            format!("{:.0}", p.memory_gb),
            feature.to_string(),
        ]);
    }
    t.write_to(ctx.out)
}
