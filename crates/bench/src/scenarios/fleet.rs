//! Fleet sweep — per-vehicle mission time, energy, and shared-resource
//! contention as the fleet grows from 1 to 32 vehicles unsharded, then
//! from 1 to 1024 vehicles under regional sharding, under both a fixed
//! and an elastically provisioned cloud.
//!
//! This is the repo's extension study beyond the paper's single-robot
//! evaluation: every vehicle's offloaded pipeline shares one cloud box
//! (admission queueing stretches remote processing times, which feeds
//! the profiler and thus Algorithm 1's placement) and one access point
//! (concurrent uplinks split airtime). Each size runs twice — against
//! the paper's fixed box and against the elastic scheduler (same-stage
//! batching + replica autoscaling) — so the table captures the
//! cost-vs-latency trade-off: elastic queueing delay grows far slower
//! while the replica-seconds ledger shows what the extra capacity
//! costs.
//!
//! The size-1 rows double as determinism gates: both the fixed and the
//! (single-replica-capped) elastic fleet-of-one must be byte-identical
//! (same FNV-1a fingerprint) to the single-vehicle `mission::run` on
//! the same configuration.
//!
//! The second half sweeps a *regionally sharded* fleet to 1024
//! vehicles: the floorplan is striped into regions (one WAP each),
//! served by half as many cloud scheduler pools, so half the regions
//! pay a deterministic WAN hop per admission. Regions fan out across
//! two worker threads — the report is byte-identical at any thread
//! count, which the 1-region gate row cross-checks against the
//! unsharded driver.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{
    run_fleet_traced, CloudPolicy, ElasticConfig, FleetConfig, RegionTopology,
};
use lgv_offload::mission::{self, MissionConfig, Workload};
use std::io;

/// Regenerate the fleet multi-tenancy sweep.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Fleet sweep: shared cloud + shared spectrum, 1..1024 vehicles",
        "per-vehicle mission time and energy degrade gracefully as tenants \
         multiply; an elastic cloud (batching + autoscaling) holds queueing \
         delay down at a replica-seconds cost; regional sharding carries the \
         sweep to 1024 vehicles",
    )?;

    let sizes: &[usize] = if ctx.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let seed = ctx.seed;
    let base_cfg = move || {
        let mut cfg = MissionConfig::compact_lab(Deployment::cloud_12t(), Workload::Navigation);
        cfg.seed = seed;
        cfg
    };

    // Determinism gates: a fleet of one must be byte-identical to the
    // single-vehicle runner under the fixed scheduler (the contention
    // hooks are exact no-ops for a lone tenant) AND under an elastic
    // scheduler capped at one replica (the elastic hooks too).
    let solo = mission::run(base_cfg());
    let solo_fp = solo.fingerprint();

    let policies = [
        ("fixed", CloudPolicy::Fixed),
        ("elastic", CloudPolicy::Elastic(ElasticConfig::balanced())),
    ];

    let mut t = TablePrinter::new(vec![
        "fleet",
        "cloud",
        "done",
        "mean t s",
        "mean J",
        "mean q ms",
        "delayed",
        "replica-s",
        "batches",
        "wap extra s",
    ]);
    let mut identity_ok = false;
    // Mean queueing delay per (size, policy), for the trade-off line.
    let mut mean_q: Vec<[f64; 2]> = vec![[0.0; 2]; sizes.len()];
    for (i, &size) in sizes.iter().enumerate() {
        for (p, &(label, policy)) in policies.iter().enumerate() {
            let report = run_fleet_traced(
                FleetConfig::new(base_cfg(), size).with_cloud(policy),
                ctx.tracer.clone(),
            );
            if size == 1 && p == 0 {
                identity_ok = report.vehicles[0].fingerprint() == solo_fp;
            }
            let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
            let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
            mean_q[i][p] = cloud.mean_queue_delay_secs();
            t.row(vec![
                format!("{size}"),
                label.to_string(),
                format!("{}/{}", report.completed(), report.vehicles.len()),
                format!("{:.1}", report.mean_mission_secs()),
                format!("{:.0}", report.mean_energy_j()),
                format!("{:.3}", cloud.mean_queue_delay_secs() * 1e3),
                format!("{}", cloud.delayed),
                format!("{:.1}", cloud.replica_seconds),
                format!("{}", cloud.batches),
                format!("{:.3}", uplink.total_extra.as_secs_f64()),
            ]);
        }
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fleet")?;

    let elastic_solo = run_fleet_traced(
        FleetConfig::new(base_cfg(), 1).with_cloud(CloudPolicy::Elastic(
            ElasticConfig::balanced().single_replica(),
        )),
        ctx.tracer.clone(),
    );
    let elastic_identity_ok = elastic_solo.vehicles[0].fingerprint() == solo_fp;

    writeln!(
        ctx.out,
        "fleet-of-1 report byte-identical to single-vehicle run: {identity_ok} \
         (fnv1a:{solo_fp:016x})"
    )?;
    writeln!(
        ctx.out,
        "fleet-of-1 under elastic scheduler (1-replica cap) byte-identical: \
         {elastic_identity_ok}"
    )?;
    let last = sizes.len() - 1;
    writeln!(
        ctx.out,
        "mean cloud queueing delay at size {}: fixed {:.3} ms vs elastic {:.3} ms \
         (elastic no worse: {})",
        sizes[last],
        mean_q[last][0] * 1e3,
        mean_q[last][1] * 1e3,
        mean_q[last][1] <= mean_q[last][0]
    )?;
    writeln!(ctx.out)?;

    regional_sweep(ctx, base_cfg)
}

/// Vehicles per region stripe in the sharded sweep (a region's WAP
/// and its share of a pool stay sane up to this density).
const REGION_STRIDE: usize = 32;
const REGION_STRIDE_QUICK: usize = 8;

/// Part two: regional sharding to 1024 vehicles. Each size runs the
/// elastic cloud policy over a topology of `size / stride` regions
/// served by half as many pools, stepped by two worker threads.
fn regional_sweep(ctx: &mut ScenarioCtx, base_cfg: impl Fn() -> MissionConfig) -> io::Result<()> {
    writeln!(ctx.out, "== regional sharding: 1..1024 vehicles ==")?;
    let (sizes, stride): (&[usize], usize) = if ctx.quick {
        (&[1, 8, 32], REGION_STRIDE_QUICK)
    } else {
        (&[1, 4, 16, 64, 256, 1024], REGION_STRIDE)
    };

    let topo_for = |size: usize| {
        let regions = (size / stride).max(1) as u32;
        RegionTopology::sharded(regions).with_cloud_pools((regions / 2).max(1))
    };
    let policy = CloudPolicy::Elastic(ElasticConfig::balanced());

    let mut t = TablePrinter::new(vec![
        "fleet",
        "regions",
        "pools",
        "done",
        "mean t s",
        "mean J",
        "mean q ms",
        "wan x",
        "wan s",
        "stretch ms",
        "replica-s",
    ]);
    let mut largest = None;
    for &size in sizes {
        let topo = topo_for(size);
        let report = run_fleet_traced(
            FleetConfig::new(base_cfg(), size)
                .with_cloud(policy)
                .with_topology(topo)
                .with_threads(2),
            ctx.tracer.clone(),
        );
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
        let wan_extra: f64 = report
            .regions
            .iter()
            .map(|r| r.wan_extra.as_secs_f64())
            .sum();
        t.row(vec![
            format!("{size}"),
            format!("{}", report.regions.len()),
            format!("{}", topo.cloud_pools.min(report.regions.len() as u32)),
            format!("{}/{}", report.completed(), report.vehicles.len()),
            format!("{:.1}", report.mean_mission_secs()),
            format!("{:.0}", report.mean_energy_j()),
            format!("{:.3}", cloud.mean_queue_delay_secs() * 1e3),
            format!("{}", report.wan_crossings()),
            format!("{:.3}", wan_extra),
            format!("{:.3}", uplink.mean_extra_secs() * 1e3),
            format!("{:.1}", cloud.replica_seconds),
        ]);
        largest = Some(report);
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fleet_regional")?;

    // Per-region breakdown at the largest size: airtime stretch and
    // WAN charging are per-stripe phenomena the aggregates hide.
    if let Some(report) = &largest {
        let mut rt = TablePrinter::new(vec![
            "region",
            "vehicles",
            "pool",
            "home",
            "wan x",
            "wan s",
            "stretch ms",
            "pool delayed",
            "pool replica-s",
        ]);
        for r in &report.regions {
            rt.row(vec![
                format!("r{}", r.region),
                format!("{}", r.vehicles),
                format!("p{}", r.cloud_pool),
                format!("{}", !r.remote_pool),
                format!("{}", r.wan_crossings),
                format!("{:.3}", r.wan_extra.as_secs_f64()),
                format!("{:.3}", r.uplink.map_or(0.0, |u| u.mean_extra_secs()) * 1e3),
                r.cloud.map_or("-".into(), |c| format!("{}", c.delayed)),
                r.cloud
                    .map_or("-".into(), |c| format!("{:.1}", c.replica_seconds)),
            ]);
        }
        writeln!(
            ctx.out,
            "per-region stats at size {}:",
            report.vehicles.len()
        )?;
        rt.write_to(ctx.out)?;
        rt.save_csv_to(ctx.out, "fleet_regions")?;
    }

    // Identity gate: a 1-region sharded fleet (parallel driver) must
    // be byte-identical, vehicle by vehicle, to the unsharded driver.
    let gate_size = if ctx.quick { 4 } else { 8 };
    let unsharded = run_fleet_traced(
        FleetConfig::new(base_cfg(), gate_size).with_cloud(policy),
        ctx.tracer.clone(),
    );
    let sharded = run_fleet_traced(
        FleetConfig::new(base_cfg(), gate_size)
            .with_cloud(policy)
            .with_topology(RegionTopology::sharded(1))
            .with_threads(2),
        ctx.tracer.clone(),
    );
    let identical = unsharded
        .vehicles
        .iter()
        .zip(&sharded.vehicles)
        .all(|(u, s)| u.fingerprint() == s.fingerprint())
        && unsharded.cloud == sharded.cloud
        && unsharded.uplink == sharded.uplink;
    writeln!(
        ctx.out,
        "1-region sharded fleet (threads=2) byte-identical to unsharded \
         driver at size {gate_size}: {identical}"
    )?;
    writeln!(ctx.out)
}
