//! Fleet sweep — per-vehicle mission time, energy, and shared-resource
//! contention as the fleet grows from 1 to 32 vehicles.
//!
//! This is the repo's extension study beyond the paper's single-robot
//! evaluation: every vehicle's offloaded pipeline shares one cloud box
//! (admission queueing stretches remote processing times, which feeds
//! the profiler and thus Algorithm 1's placement) and one access point
//! (concurrent uplinks split airtime). The sweep shows graceful
//! degradation: mean mission time and cloud queueing grow with fleet
//! size while every vehicle still completes.
//!
//! The size-1 row doubles as a determinism gate: its report must be
//! byte-identical (same FNV-1a fingerprint) to the single-vehicle
//! `mission::run` on the same configuration.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet_traced, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, Workload};
use std::io;

/// Regenerate the fleet multi-tenancy sweep.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Fleet sweep: shared cloud + shared spectrum, 1..32 vehicles",
        "per-vehicle mission time and energy degrade gracefully as tenants \
         multiply; cloud queueing and WAP contention feed Algorithm 1",
    )?;

    let sizes: &[usize] = if ctx.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let base_cfg = || {
        let mut cfg = MissionConfig::compact_lab(Deployment::cloud_12t(), Workload::Navigation);
        cfg.seed = ctx.seed;
        cfg
    };

    // Determinism gate: a fleet of one must be byte-identical to the
    // single-vehicle runner (the contention hooks are exact no-ops for
    // a lone tenant).
    let solo = mission::run(base_cfg());
    let solo_fp = solo.fingerprint();

    let mut t = TablePrinter::new(vec![
        "fleet",
        "done",
        "mean t s",
        "max t s",
        "mean J",
        "cloud util",
        "queue s",
        "delayed",
        "wap extra s",
        "contended",
    ]);
    let mut identity_ok = false;
    for &size in sizes {
        let report = run_fleet_traced(FleetConfig::new(base_cfg(), size), ctx.tracer.clone());
        if size == 1 {
            identity_ok = report.vehicles[0].fingerprint() == solo_fp;
        }
        let max_t = report
            .vehicles
            .iter()
            .map(|v| v.time.total().as_secs_f64())
            .fold(0.0, f64::max);
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
        t.row(vec![
            format!("{size}"),
            format!("{}/{}", report.completed(), report.vehicles.len()),
            format!("{:.1}", report.mean_mission_secs()),
            format!("{max_t:.1}"),
            format!("{:.0}", report.mean_energy_j()),
            format!("{:.3}", cloud.utilization),
            format!("{:.3}", cloud.total_queue_delay.as_secs_f64()),
            format!("{}", cloud.delayed),
            format!("{:.3}", uplink.total_extra.as_secs_f64()),
            format!("{}", uplink.contended_sends),
        ]);
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fleet")?;
    writeln!(
        ctx.out,
        "fleet-of-1 report byte-identical to single-vehicle run: {identity_ok} \
         (fnv1a:{solo_fp:016x})"
    )?;
    writeln!(ctx.out)
}
