//! Fleet sweep — per-vehicle mission time, energy, and shared-resource
//! contention as the fleet grows from 1 to 32 vehicles, under both a
//! fixed and an elastically provisioned cloud.
//!
//! This is the repo's extension study beyond the paper's single-robot
//! evaluation: every vehicle's offloaded pipeline shares one cloud box
//! (admission queueing stretches remote processing times, which feeds
//! the profiler and thus Algorithm 1's placement) and one access point
//! (concurrent uplinks split airtime). Each size runs twice — against
//! the paper's fixed box and against the elastic scheduler (same-stage
//! batching + replica autoscaling) — so the table captures the
//! cost-vs-latency trade-off: elastic queueing delay grows far slower
//! while the replica-seconds ledger shows what the extra capacity
//! costs.
//!
//! The size-1 rows double as determinism gates: both the fixed and the
//! (single-replica-capped) elastic fleet-of-one must be byte-identical
//! (same FNV-1a fingerprint) to the single-vehicle `mission::run` on
//! the same configuration.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet_traced, CloudPolicy, ElasticConfig, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, Workload};
use std::io;

/// Regenerate the fleet multi-tenancy sweep.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Fleet sweep: shared cloud + shared spectrum, 1..32 vehicles",
        "per-vehicle mission time and energy degrade gracefully as tenants \
         multiply; an elastic cloud (batching + autoscaling) holds queueing \
         delay down at a replica-seconds cost",
    )?;

    let sizes: &[usize] = if ctx.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let base_cfg = || {
        let mut cfg = MissionConfig::compact_lab(Deployment::cloud_12t(), Workload::Navigation);
        cfg.seed = ctx.seed;
        cfg
    };

    // Determinism gates: a fleet of one must be byte-identical to the
    // single-vehicle runner under the fixed scheduler (the contention
    // hooks are exact no-ops for a lone tenant) AND under an elastic
    // scheduler capped at one replica (the elastic hooks too).
    let solo = mission::run(base_cfg());
    let solo_fp = solo.fingerprint();

    let policies = [
        ("fixed", CloudPolicy::Fixed),
        ("elastic", CloudPolicy::Elastic(ElasticConfig::balanced())),
    ];

    let mut t = TablePrinter::new(vec![
        "fleet",
        "cloud",
        "done",
        "mean t s",
        "mean J",
        "mean q ms",
        "delayed",
        "replica-s",
        "batches",
        "wap extra s",
    ]);
    let mut identity_ok = false;
    // Mean queueing delay per (size, policy), for the trade-off line.
    let mut mean_q: Vec<[f64; 2]> = vec![[0.0; 2]; sizes.len()];
    for (i, &size) in sizes.iter().enumerate() {
        for (p, &(label, policy)) in policies.iter().enumerate() {
            let report = run_fleet_traced(
                FleetConfig::new(base_cfg(), size).with_cloud(policy),
                ctx.tracer.clone(),
            );
            if size == 1 && p == 0 {
                identity_ok = report.vehicles[0].fingerprint() == solo_fp;
            }
            let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
            let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
            mean_q[i][p] = cloud.mean_queue_delay_secs();
            t.row(vec![
                format!("{size}"),
                label.to_string(),
                format!("{}/{}", report.completed(), report.vehicles.len()),
                format!("{:.1}", report.mean_mission_secs()),
                format!("{:.0}", report.mean_energy_j()),
                format!("{:.3}", cloud.mean_queue_delay_secs() * 1e3),
                format!("{}", cloud.delayed),
                format!("{:.1}", cloud.replica_seconds),
                format!("{}", cloud.batches),
                format!("{:.3}", uplink.total_extra.as_secs_f64()),
            ]);
        }
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fleet")?;

    let elastic_solo = run_fleet_traced(
        FleetConfig::new(base_cfg(), 1).with_cloud(CloudPolicy::Elastic(
            ElasticConfig::balanced().single_replica(),
        )),
        ctx.tracer.clone(),
    );
    let elastic_identity_ok = elastic_solo.vehicles[0].fingerprint() == solo_fp;

    writeln!(
        ctx.out,
        "fleet-of-1 report byte-identical to single-vehicle run: {identity_ok} \
         (fnv1a:{solo_fp:016x})"
    )?;
    writeln!(
        ctx.out,
        "fleet-of-1 under elastic scheduler (1-replica cap) byte-identical: \
         {elastic_identity_ok}"
    )?;
    let last = sizes.len() - 1;
    writeln!(
        ctx.out,
        "mean cloud queueing delay at size {}: fixed {:.3} ms vs elastic {:.3} ms \
         (elastic no worse: {})",
        sizes[last],
        mean_q[last][0] * 1e3,
        mean_q[last][1] * 1e3,
        mean_q[last][1] <= mean_q[last][0]
    )?;
    writeln!(ctx.out)
}
