//! Figure 13 — total energy consumption (per component) and mission
//! completion time, for (a) the with-map Navigation workload and
//! (b) the without-map Exploration workload, across the five
//! deployment strategies.
//!
//! Paper headlines: best-case total-energy reductions of 1.61x (with
//! map) and 2.12x (without map), mission-time reductions of 2.53x and
//! 1.6x; motor energy barely changes (it scales with distance, and a
//! faster mission burns the same joules in less time); the embedded-
//! computer bar is where offloading pays.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_sim::energy::Component;
use lgv_trace::Tracer;
use lgv_types::prelude::*;
use std::io::{self, Write};

#[allow(clippy::too_many_arguments)]
fn run_workload(
    out: &mut dyn Write,
    workload: Workload,
    label: &str,
    paper_energy: f64,
    paper_time: f64,
    tracer: &Tracer,
    base_seed: u64,
    quick: bool,
) -> io::Result<()> {
    writeln!(out, "({}) {:?} workload", label, workload)?;
    // Exploration tours vary with frontier-selection timing, so that
    // workload is averaged over several seeds (the paper averages over
    // repeated physical runs).
    let seeds: &[u64] = match workload {
        Workload::Navigation => &[base_seed],
        Workload::Exploration if quick => &[base_seed],
        Workload::Exploration => &[base_seed, base_seed + 1, base_seed + 2],
    };
    let mut t = TablePrinter::new(vec![
        "deployment",
        "sensor J",
        "motor J",
        "MCU J",
        "EC J",
        "wireless J",
        "total J",
        "time s",
        "E reduction",
        "T reduction",
    ]);
    let mut base: Option<(f64, f64)> = None;
    let mut best_e = 0.0f64;
    let mut best_t = 0.0f64;
    for d in Deployment::evaluation_set() {
        let mut joules = [0.0f64; 5];
        let mut total = 0.0;
        let mut secs = 0.0;
        let mut all_completed = true;
        for &seed in seeds {
            let mut cfg = match workload {
                Workload::Navigation => MissionConfig::navigation_lab(d),
                Workload::Exploration => MissionConfig::exploration_lab(d),
            };
            cfg.seed = seed;
            cfg.record_traces = false;
            if quick {
                cfg.max_time = Duration::from_secs(60);
            }
            let report = mission::run_traced(cfg, tracer.clone());
            for (i, c) in Component::ALL.iter().enumerate() {
                joules[i] += report.energy.joules(*c) / seeds.len() as f64;
            }
            total += report.energy.total_joules() / seeds.len() as f64;
            secs += report.time.total().as_secs_f64() / seeds.len() as f64;
            all_completed &= report.completed;
        }
        let (e0, t0) = *base.get_or_insert((total, secs));
        let er = e0 / total;
        let tr = t0 / secs;
        best_e = best_e.max(er);
        best_t = best_t.max(tr);
        t.row(vec![
            format!("{}{}", d.label, if all_completed { "" } else { " (!)" }),
            format!("{:.0}", joules[0]),
            format!("{:.0}", joules[1]),
            format!("{:.0}", joules[2]),
            format!("{:.0}", joules[3]),
            format!("{:.1}", joules[4]),
            format!("{total:.0}"),
            format!("{secs:.0}"),
            format!("{er:.2}x"),
            format!("{tr:.2}x"),
        ]);
    }
    t.write_to(out)?;
    t.save_csv_to(out, &format!("fig13_{label}"))?;
    writeln!(
        out,
        "best reductions: energy {best_e:.2}x (paper {paper_energy}x), time {best_t:.2}x (paper {paper_time}x)"
    )?;
    writeln!(out)
}

/// Regenerate Figure 13.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 13: total energy consumption and mission completion time",
        "energy reduced 1.61x (map) / 2.12x (no map); time reduced 2.53x (map) / \
         1.6x (no map); motor energy ~unchanged; EC energy is the win",
    )?;
    // Trace events from every mission of both workloads flow into the
    // scenario tracer (split on `mission_start`); the Fig. 13 bars can
    // be recomputed from the `energy_delta` events alone (see
    // docs/OBSERVABILITY.md).
    let tracer = ctx.tracer.clone();
    run_workload(
        ctx.out,
        Workload::Navigation,
        "a",
        1.61,
        2.53,
        &tracer,
        ctx.seed,
        ctx.quick,
    )?;
    run_workload(
        ctx.out,
        Workload::Exploration,
        "b",
        2.12,
        1.6,
        &tracer,
        ctx.seed,
        ctx.quick,
    )
}
