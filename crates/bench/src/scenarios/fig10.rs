//! Figure 10 — processing time (ms) of the velocity-dependent path
//! (CostmapGen + PathTracking + VelocityMux) under different numbers
//! of threads and trajectory samples, on the three platforms.
//!
//! Method: run the real costmap update + DWA trajectory rollout on
//! the lab map at each sample count, take the per-activation `Work`,
//! and price it per platform/thread count.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_nav::costmap::{Costmap, CostmapConfig};
use lgv_nav::dwa::{DwaConfig, DwaPlanner};
use lgv_nav::velocity_mux::{MuxConfig, VelocityMux};
use lgv_sim::platform::Platform;
use lgv_sim::world::presets;
use lgv_sim::{Lidar, LidarConfig};
use lgv_types::prelude::*;
use std::io;

fn vdp_work(seed: u64, samples: u32) -> Work {
    let world = presets::lab();
    let map = world.to_map_msg(SimTime::EPOCH);
    let mut cm = Costmap::from_map(CostmapConfig::default(), &map);
    let pose = presets::lab_start();
    let mut lidar = Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(seed));
    let scan = lidar.scan(&world, pose, SimTime::EPOCH);

    let mut meter = WorkMeter::new();
    cm.update(&map, pose, &scan, &mut meter);
    let w_cm = meter.finish();

    let mut dwa = DwaPlanner::new(DwaConfig {
        samples,
        ..DwaConfig::default()
    });
    let path = PathMsg {
        stamp: SimTime::EPOCH,
        waypoints: vec![pose.position(), presets::lab_goal()],
    };
    let out = dwa.compute(&cm, pose, &path, presets::lab_goal());
    let w_mux = VelocityMux::new(MuxConfig::default()).work();
    w_cm + out.work + w_mux
}

/// Regenerate Figure 10.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 10: VDP (CG + PT + VM) processing time (ms) vs threads x samples",
        "reduction up to 23.92x on the gateway, 17.29x on the cloud; high frequency \
         wins on VDP; no benefit past ~4 threads (tiny per-thread work)",
    )?;

    let sample_counts: &[u32] = if ctx.quick {
        &[100, 1000]
    } else {
        &[100, 500, 1000, 2000]
    };
    let threads = [1u32, 2, 4, 8, 12];

    let works: Vec<(u32, Work)> = sample_counts
        .iter()
        .map(|&s| (s, vdp_work(ctx.seed, s)))
        .collect();

    let platforms = [
        ("(a) Turtlebot3", Platform::turtlebot3()),
        ("(b) Edge gateway", Platform::edge_gateway()),
        ("(c) Cloud server", Platform::cloud_server()),
    ];
    let local = Platform::turtlebot3();
    let mut best_gw = 0.0f64;
    let mut best_cloud = 0.0f64;

    for (label, platform) in &platforms {
        writeln!(ctx.out, "{label} ({})", platform.model)?;
        let mut t = TablePrinter::new(
            std::iter::once("# threads".to_string())
                .chain(works.iter().map(|(s, _)| format!("{s} samples")))
                .collect::<Vec<_>>(),
        );
        for &n in &threads {
            let mut row = vec![n.to_string()];
            for (_, w) in &works {
                let ms = platform.exec_time(w, n).as_millis_f64();
                row.push(format!("{ms:.1}"));
                let speedup = local.exec_time(w, 1).as_millis_f64() / ms;
                match platform.kind {
                    lgv_sim::platform::PlatformKind::EdgeGateway => best_gw = best_gw.max(speedup),
                    lgv_sim::platform::PlatformKind::CloudServer => {
                        best_cloud = best_cloud.max(speedup)
                    }
                    _ => {}
                }
            }
            t.row(row);
        }
        t.write_to(ctx.out)?;
        t.save_csv_to(
            ctx.out,
            &format!("fig10_{:?}", platform.kind).to_lowercase(),
        )?;
        writeln!(ctx.out)?;
    }

    // The plateau observation.
    let w = &works.last().unwrap().1;
    let gw = Platform::edge_gateway();
    let t4 = gw.exec_time(w, 4).as_millis_f64();
    let t8 = gw.exec_time(w, 8).as_millis_f64();
    writeln!(
        ctx.out,
        "gateway 4->8 thread gain at max samples: {:.2}x (paper: ~flat past 4 threads)",
        t4 / t8
    )?;
    writeln!(ctx.out, "max VDP speedup vs local 1-thread:")?;
    writeln!(ctx.out, "  edge gateway : {best_gw:.2}x   (paper: 23.92x)")?;
    writeln!(
        ctx.out,
        "  cloud server : {best_cloud:.2}x   (paper: 17.29x)"
    )
}
