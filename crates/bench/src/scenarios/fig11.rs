//! Figure 11 — network latency and bandwidth of UDP transmission in a
//! wireless network, while the LGV drives from point A out to the
//! weak-signal point C and back.
//!
//! Reproduces the paper's §VIII-C experiment: the cloud-hosted Path
//! Tracking node streams velocity messages at a fixed 5 Hz; the robot
//! measures (a) the observed RTT — which stays misleadingly healthy
//! thanks to UDP's silent sender-side discards (Fig. 7) — and (b) the
//! packet bandwidth, which collapses exactly where the signal dies.
//! Algorithm 2 (threshold 4 packets/s + signal direction) switches the
//! nodes local on the way out and back to the cloud on the return.

use crate::suite::ScenarioCtx;
use crate::{write_banner, TablePrinter};
use lgv_middleware::{Bus, Switcher, SwitcherConfig, TopicName};
use lgv_net::link::{DuplexLink, LinkConfig, RemoteSite};
use lgv_net::measure::SignalDirectionEstimator;
use lgv_net::signal::WirelessConfig;
use lgv_offload::netctl::{NetControl, NetControlConfig, NetDecision};
use lgv_sim::world::presets;
use lgv_types::prelude::*;
use std::io;

/// Regenerate Figure 11.
pub fn run(ctx: &mut ScenarioCtx) -> io::Result<()> {
    write_banner(
        ctx.out,
        "Figure 11: UDP latency & bandwidth on an A -> C -> A drive",
        "latency looks healthy until deep in the dead zone (UDP best-effort hides \
         sender discards); bandwidth tracks loss; threshold 4 of 5 Hz; switch local \
         on (bw < 4, retreating), back to cloud on (bw > 4, approaching)",
    )?;

    let a = presets::arena_point_a().position();
    let c = presets::arena_point_c();
    let wap = presets::arena_wap();

    let mut rng = SimRng::seed_from_u64(ctx.seed);
    let mut link_cfg = LinkConfig::new(RemoteSite::CloudServer, wap);
    link_cfg.wireless = WirelessConfig::default().with_weak_radius(16.0);
    let link = DuplexLink::new(link_cfg, &mut rng);

    let robot_bus = Bus::new();
    let remote_bus = Bus::new();
    let sw_cfg = SwitcherConfig {
        up_topics: vec![(TopicName::SCAN, 1)],
        down_topics: vec![(TopicName::CMD_VEL_NAV, 1)],
    };
    let mut switcher = Switcher::new(link, robot_bus.clone(), remote_bus.clone(), &sw_cfg);
    let cmd_sub = robot_bus.subscribe(TopicName::CMD_VEL_NAV, 1);
    let remote_scan_sub = remote_bus.subscribe(TopicName::SCAN, 1);

    // Stream bus/channel/RTT events into the scenario tracer.
    let tracer = ctx.tracer.clone();
    switcher.set_tracer(tracer.clone());
    robot_bus.set_tracer(tracer.clone());
    remote_bus.set_tracer(tracer.clone());

    let mut direction = SignalDirectionEstimator::new(wap);
    let mut netctl = NetControl::new(NetControlConfig::default());
    let mut remote_active = true;

    // Scripted drive: out along +x at 0.5 m/s, then back.
    let speed = 0.5;
    let out_dist = a.distance(c);
    let leg_secs = out_dist / speed;
    let total_secs = (2.0 * leg_secs).ceil() as u64;

    let mut t = TablePrinter::new(vec![
        "t(s)",
        "pos x(m)",
        "rtt(ms)",
        "bw(pkt/s)",
        "dir",
        "state",
        "event",
    ]);
    let mut now = SimTime::EPOCH;
    let period = Duration::from_millis(200);
    let mut delivered_cmds = 0u64;

    for step in 0..(total_secs * 5) {
        tracer.set_time_ns(now.as_nanos());
        let secs = step as f64 * 0.2;
        let x = if secs < leg_secs {
            a.x + speed * secs
        } else {
            c.x - speed * (secs - leg_secs)
        };
        let pos = Point2::new(x.clamp(a.x, c.x), a.y);

        // Robot uplink: the 5 Hz laser stream the cloud node consumes.
        robot_bus
            .publish(TopicName::SCAN, &vec![0.5f64; 360])
            .unwrap();

        // Advance the network in 25 ms substeps; the cloud Path
        // Tracking node replies with a velocity command as soon as a
        // scan is delivered (fixed 5 Hz when the link is healthy).
        for k in 0..8 {
            let sub_now = now + Duration::from_millis(25 * k);
            switcher.tick(sub_now, pos);
            if remote_scan_sub
                .recv_latest::<Vec<f64>>()
                .unwrap_or(None)
                .is_some()
            {
                let cmd = VelocityCmd {
                    stamp: sub_now,
                    twist: Twist::new(0.5, 0.0),
                    source: VelocitySource::Navigation,
                };
                remote_bus.publish(TopicName::CMD_VEL_NAV, &cmd).unwrap();
            }
        }
        while cmd_sub.recv_bytes().is_some() {
            delivered_cmds += 1;
        }

        let dir = direction.update(now, pos);
        let bw = switcher.downlink_bandwidth(now);
        let rtt = switcher.rtt().latest().map(|d| d.as_millis_f64());

        let mut event = String::new();
        match netctl.decide(now, bw, dir, remote_active) {
            NetDecision::InvokeLocal => {
                remote_active = false;
                event = "SWITCH -> LOCAL".into();
            }
            NetDecision::InvokeRemote => {
                remote_active = true;
                event = "SWITCH -> CLOUD".into();
            }
            NetDecision::Keep => {}
        }

        // Log once per second (and at switch events).
        if step % 5 == 0 || !event.is_empty() {
            t.row(vec![
                format!("{secs:.0}"),
                format!("{:.1}", pos.x),
                rtt.map_or("-".into(), |r| format!("{r:.1}")),
                format!("{bw:.1}"),
                format!("{dir:+.2}"),
                if remote_active { "cloud" } else { "local" }.to_string(),
                event,
            ]);
        }
        now += period;
    }
    t.write_to(ctx.out)?;
    t.save_csv_to(ctx.out, "fig11_trace")?;
    tracer.flush();

    let stats = switcher.stats();
    writeln!(ctx.out)?;
    writeln!(
        ctx.out,
        "downlink: sent {}  delivered {}  sender-discarded {} (silent, invisible to latency)",
        stats.down_sent, delivered_cmds, stats.down_discarded
    )?;
    writeln!(
        ctx.out,
        "Algorithm 2 switches: {} (expect 2: out at the dead zone, back on return)",
        netctl.switches
    )
}
