//! Parallel evaluation harness over every table/figure scenario.
//!
//! Every table and figure of the paper's evaluation (§V, Tables I–III,
//! Figs. 7–14) plus the repo's own extension studies (ablations,
//! sweep, chaos) is registered here as a named, seeded job (see
//! [`registry`]). The `lgv-bench suite` binary fans the jobs out
//! across worker threads — reusing the fork-join
//! [`ParallelExecutor`] the parallel gmapping algorithm uses for its
//! particles — captures each scenario's text output in memory, and
//! emits a machine-readable `BENCH_suite.json` with per-job wall-clock
//! and virtual-time accounting.
//!
//! Because each scenario runs on its own virtual clock, its own RNG
//! seeds, and its own captured output buffer, running the suite with
//! `--threads 8` must produce **byte-identical** scenario outputs to
//! `--threads 1`. The integration tests assert this with the same
//! FNV-1a output checksums that land in the JSON artifact; CI fails if
//! parallelism ever leaks into scenario results.
//!
//! JSON schema (`lgv-bench-suite/v3`, one object per file). `v2` added
//! the run-level accounting fields `scenario_count` (number of jobs in
//! the artifact) and `total_sim_time_s` (summed virtual time across
//! all scenarios) next to the worker-thread count and total wall time;
//! `v3` serializes `sim_time_s`/`events` as `null` for scenarios that
//! emit no trace events (they used to read `0.000`/`0`, implying a
//! measured zero rather than "not traced"):
//!
//! ```json
//! {
//!   "schema": "lgv-bench-suite/v3",
//!   "threads": 4,
//!   "quick": false,
//!   "scenario_count": 13,
//!   "total_wall_ms": 1234.5,
//!   "total_sim_time_s": 5678.9,
//!   "scenarios": [
//!     {
//!       "name": "fig9",
//!       "seed": 11,
//!       "wall_ms": 210.7,
//!       "sim_time_s": null,
//!       "events": null,
//!       "output_bytes": 4211,
//!       "checksum": "fnv1a:cbf29ce484222325"
//!     }
//!   ]
//! }
//! ```
//!
//! With `--profile`, the suite additionally collects each job's
//! wall-clock scope tree (`lgv_trace::prof`) and renders it as a
//! `BENCH_profile.json` (schema `lgv-bench-profile/v1`) via
//! [`SuiteReport::profile_json`] — per-scenario self-time attribution
//! over the instrumented kernels, the substrate of the "make fig13
//! fast" work.
//!
//! See `docs/CI.md` for how the gate consumes these files.

use lgv_slam::pool::ParallelExecutor;
use lgv_trace::prof::{self, ProfileTree};
use lgv_trace::{TraceRecord, TraceSink, Tracer};
use std::io::{self, Write};

/// Everything a scenario needs to run: an output writer (captured and
/// checksummed by the suite; stdout when run standalone), the quick
/// flag, the scenario's base RNG seed, and a tracer whose events are
/// tallied into the JSON artifact.
pub struct ScenarioCtx<'a> {
    /// Where the scenario's human-readable output goes.
    pub out: &'a mut dyn Write,
    /// Shrink sweeps for smoke runs (`LGV_BENCH_QUICK=1` standalone).
    pub quick: bool,
    /// Base RNG seed for the scenario's top-level randomness.
    pub seed: u64,
    /// Tracer for virtual-time event accounting. Standalone binaries
    /// wire `--trace <path>` here; the suite attaches a counting sink.
    pub tracer: Tracer,
}

/// A registered table/figure job.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Unique job name (also the binary name for standalone runs).
    pub name: &'static str,
    /// One-line description of what the scenario reproduces.
    pub title: &'static str,
    /// Canonical base seed (forwarded as [`ScenarioCtx::seed`]).
    pub seed: u64,
    /// Relative cost hint for load balancing (bigger = slower).
    pub cost_hint: u32,
    /// Entry point.
    pub run: fn(&mut ScenarioCtx) -> io::Result<()>,
}

/// All registered scenarios, in artifact order.
pub fn registry() -> Vec<Scenario> {
    use crate::scenarios::*;
    vec![
        Scenario {
            name: "table1",
            title: "Tables I & III: component power and platform specs",
            seed: 0,
            cost_hint: 1,
            run: table1::run,
        },
        Scenario {
            name: "table2",
            title: "Table II: per-node cycle breakdown (Gcycles/s)",
            seed: 42,
            cost_hint: 30,
            run: table2::run,
        },
        Scenario {
            name: "fig7",
            title: "Figure 7: UDP packet walk under an unstable link",
            seed: 1,
            cost_hint: 1,
            run: fig7::run,
        },
        Scenario {
            name: "fig9",
            title: "Figure 9: SLAM processing time vs threads x particles",
            seed: 11,
            cost_hint: 25,
            run: fig9::run,
        },
        Scenario {
            name: "fig10",
            title: "Figure 10: VDP processing time vs threads x samples",
            seed: 5,
            cost_hint: 2,
            run: fig10::run,
        },
        Scenario {
            name: "fig11",
            title: "Figure 11: UDP latency/bandwidth on the A-C-A drive",
            seed: 3,
            cost_hint: 2,
            run: fig11::run,
        },
        Scenario {
            name: "fig12",
            title: "Figure 12: max velocity under five deployments",
            seed: 42,
            cost_hint: 40,
            run: fig12::run,
        },
        Scenario {
            name: "fig13",
            title: "Figure 13: energy and mission time per deployment",
            seed: 42,
            cost_hint: 100,
            run: fig13::run,
        },
        Scenario {
            name: "fig14",
            title: "Figure 14: max vs real velocity across path phases",
            seed: 42,
            cost_hint: 40,
            run: fig14::run,
        },
        Scenario {
            name: "ablations",
            title: "Ablations of the paper's optimization strategies",
            seed: 42,
            cost_hint: 60,
            run: ablations::run,
        },
        Scenario {
            name: "sweep",
            title: "Deployment sweep over procedural floorplans",
            seed: 1,
            cost_hint: 90,
            run: sweep::run,
        },
        Scenario {
            name: "chaos",
            title: "Chaos sweep: randomized fault schedules + crash showcase",
            seed: 0,
            cost_hint: 50,
            run: chaos::run,
        },
        Scenario {
            name: "fleet",
            title: "Fleet sweep: shared cloud + shared spectrum, 1..1024 vehicles",
            seed: 7,
            cost_hint: 500,
            run: fleet::run,
        },
        Scenario {
            name: "elastic-fleet",
            title: "Elastic cloud ablation: fixed vs. autoscale vs. autoscale+batching",
            seed: 7,
            cost_hint: 90,
            run: elastic_fleet::run,
        },
        Scenario {
            name: "chaos-fleet",
            title: "Chaos-fleet: recovery SLOs under crash, blackout, and cloud chaos",
            seed: 13,
            cost_hint: 120,
            run: chaos_fleet::run,
        },
        Scenario {
            name: "policy",
            title: "Policy race: Algorithm 1 vs global placement vs contextual bandit",
            seed: 21,
            cost_hint: 80,
            run: policy::run,
        },
    ]
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// Run one scenario exactly as its standalone binary does: output to
/// stdout, quick mode from `LGV_BENCH_QUICK`, tracer from `--trace`.
pub fn run_scenario_standalone(name: &str) {
    let scenario = find(name).unwrap_or_else(|| panic!("unknown scenario {name:?}"));
    let mut out = io::stdout();
    let mut ctx = ScenarioCtx {
        out: &mut out,
        quick: crate::quick_mode(),
        seed: scenario.seed,
        tracer: crate::tracer_from_args(),
    };
    (scenario.run)(&mut ctx).expect("scenario output write failed");
    ctx.tracer.flush();
}

/// Counts records and tracks the largest virtual timestamp — the
/// cheapest possible sink, used for the JSON accounting fields.
#[derive(Debug, Default)]
struct CountingSink {
    events: u64,
    max_t_ns: u64,
}

impl TraceSink for CountingSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.events += 1;
        self.max_t_ns = self.max_t_ns.max(rec.t_ns);
    }
}

/// 64-bit FNV-1a over the captured output bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One completed job, with its captured output.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Scenario name.
    pub name: String,
    /// Seed the job ran with.
    pub seed: u64,
    /// Wall-clock duration of the job (host time, milliseconds).
    pub wall_ms: f64,
    /// Largest virtual timestamp the scenario's tracer saw (seconds).
    pub sim_time_s: f64,
    /// Trace events emitted on the scenario's virtual clock.
    pub events: u64,
    /// The captured scenario output (what the standalone binary would
    /// have printed, minus `--trace` side effects).
    pub output: Vec<u8>,
    /// `fnv1a:<16 hex digits>` over `output`.
    pub checksum: String,
    /// Error message if the scenario failed.
    pub error: Option<String>,
    /// Wall-clock scope tree harvested from the job's thread (empty
    /// unless the suite ran with profiling on).
    pub profile: ProfileTree,
}

/// Results of one full suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Worker thread count the fan-out used.
    pub threads: usize,
    /// Whether quick mode was on.
    pub quick: bool,
    /// Whether wall-clock profiling was collecting during the run.
    pub profiled: bool,
    /// End-to-end wall-clock of the fan-out (milliseconds).
    pub total_wall_ms: f64,
    /// Per-job results, in [`registry`] order.
    pub results: Vec<JobResult>,
}

fn run_job(scenario: &Scenario, quick: bool) -> JobResult {
    let mut output: Vec<u8> = Vec::with_capacity(4096);
    let tracer = Tracer::enabled();
    let counter = tracer.attach(CountingSink::default());
    // Drop any profile residue from a previous job on this worker, and
    // root this job's scopes under a node named after the scenario (a
    // no-op unless profiling is collecting).
    let _ = prof::take_thread();
    let prof_root = prof::scope(scenario.name);
    let start = std::time::Instant::now();
    let err = {
        let mut ctx = ScenarioCtx {
            out: &mut output,
            quick,
            seed: scenario.seed,
            tracer,
        };
        (scenario.run)(&mut ctx).err()
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(prof_root);
    let profile = prof::take_thread();
    let (events, max_t_ns) = {
        let c = counter.lock().expect("counting sink poisoned");
        (c.events, c.max_t_ns)
    };
    JobResult {
        name: scenario.name.to_string(),
        seed: scenario.seed,
        wall_ms,
        sim_time_s: max_t_ns as f64 / 1e9,
        events,
        checksum: format!("fnv1a:{:016x}", fnv1a(&output)),
        output,
        error: err.map(|e| e.to_string()),
        profile,
    }
}

/// Run `scenarios` across `threads` workers and collect results in the
/// given order.
///
/// Jobs are partitioned into one bucket per worker with a greedy
/// longest-processing-time heuristic over [`Scenario::cost_hint`],
/// then the buckets are executed fork-join style by the same
/// [`ParallelExecutor`] the parallel gmapping algorithm uses — one
/// bucket per worker thread, each worker draining its bucket serially.
///
/// With `profile` on (and the `prof` feature compiled in), wall-clock
/// scope collection is enabled for the duration of the run and each
/// job's scope tree lands in [`JobResult::profile`]. Profiling cannot
/// change scenario outputs — the determinism tests run with it both on
/// and off.
pub fn run_suite(
    scenarios: &[Scenario],
    threads: usize,
    quick: bool,
    profile: bool,
) -> SuiteReport {
    let threads = threads.max(1);
    let profiled = profile && prof::is_available();
    if profiled {
        prof::set_enabled(true);
    }
    let start = std::time::Instant::now();

    // Greedy LPT partition: heaviest job first into the lightest bucket.
    let n = threads.min(scenarios.len()).max(1);
    let mut order: Vec<usize> = (0..scenarios.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(scenarios[i].cost_hint));
    let mut buckets: Vec<(u64, Vec<usize>)> = vec![(0, Vec::new()); n];
    for i in order {
        let lightest = buckets
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("at least one bucket");
        lightest.0 += scenarios[i].cost_hint as u64;
        lightest.1.push(i);
    }
    let mut work: Vec<Vec<usize>> = buckets.into_iter().map(|(_, jobs)| jobs).collect();

    // Fork-join over the buckets: each worker gets exactly one.
    let executor = ParallelExecutor::new(n);
    let per_bucket: Vec<Vec<(usize, JobResult)>> = executor.run_chunks(&mut work, |chunk| {
        let mut done = Vec::new();
        for bucket in chunk.iter() {
            for &i in bucket {
                done.push((i, run_job(&scenarios[i], quick)));
            }
        }
        done
    });

    let mut slots: Vec<Option<JobResult>> = vec![None; scenarios.len()];
    for (i, r) in per_bucket.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let total_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if profiled {
        prof::set_enabled(false);
        // Discard the residue the fan-out harvest grafted onto this
        // thread (jobs drain their own trees; only scraps remain).
        let _ = prof::take_thread();
    }
    SuiteReport {
        threads,
        quick,
        profiled,
        total_wall_ms,
        results: slots
            .into_iter()
            .map(|r| r.expect("every job ran"))
            .collect(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SuiteReport {
    /// Summed virtual time across all scenarios (seconds) — how much
    /// simulation the suite covered, independent of host speed.
    pub fn total_sim_time_s(&self) -> f64 {
        self.results.iter().map(|r| r.sim_time_s).sum()
    }

    /// Render the machine-readable `BENCH_suite.json` artifact
    /// (schema `lgv-bench-suite/v3`). Scenarios that emitted no trace
    /// events report `sim_time_s`/`events` as `null` — "not traced",
    /// not "measured zero".
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"lgv-bench-suite/v3\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"scenario_count\": {},\n", self.results.len()));
        s.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            self.total_wall_ms
        ));
        s.push_str(&format!(
            "  \"total_sim_time_s\": {:.3},\n",
            self.total_sim_time_s()
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", json_escape(&r.name)));
            s.push_str(&format!("\"seed\": {}, ", r.seed));
            s.push_str(&format!("\"wall_ms\": {:.3}, ", r.wall_ms));
            if r.events == 0 {
                s.push_str("\"sim_time_s\": null, ");
                s.push_str("\"events\": null, ");
            } else {
                s.push_str(&format!("\"sim_time_s\": {:.3}, ", r.sim_time_s));
                s.push_str(&format!("\"events\": {}, ", r.events));
            }
            s.push_str(&format!("\"output_bytes\": {}, ", r.output.len()));
            s.push_str(&format!("\"checksum\": \"{}\"", json_escape(&r.checksum)));
            if let Some(e) = &r.error {
                s.push_str(&format!(", \"error\": \"{}\"", json_escape(e)));
            }
            s.push('}');
            s.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Render the `BENCH_profile.json` artifact (schema
    /// `lgv-bench-profile/v1`): per-scenario wall-clock attribution
    /// over the instrumented scopes.
    ///
    /// Per scenario: `wall_ms` is the job's measured wall time,
    /// `profiled_ms` the summed totals of its top-level scopes,
    /// `coverage` their ratio, and `unattributed_ms` the remainder
    /// (scenario code outside any named scope). Each scope row carries
    /// its call path **relative to the scenario root** plus exact
    /// nanosecond aggregates, so a flamegraph's folded input is
    /// reconstructible from the artifact (`path self_ns` per row —
    /// see `trace_report --prof`). Scope rows are in canonical
    /// depth-first name-sorted order; values are host wall-clock and
    /// machine-dependent by nature.
    pub fn profile_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"lgv-bench-profile/v1\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"profiled\": {},\n", self.profiled));
        s.push_str("  \"scenarios\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            // The job's scopes hang under a root node named after the
            // scenario (created by the suite harness itself).
            let root = r
                .profile
                .children_sorted(0)
                .into_iter()
                .find(|&n| r.profile.nodes()[n].name == r.name);
            let profiled_ns: u64 = root.map_or(0, |n| {
                r.profile.nodes()[n]
                    .children
                    .iter()
                    .map(|&c| r.profile.nodes()[c].total_ns)
                    .sum()
            });
            let unattributed_ns = root.map_or(0, |n| r.profile.self_ns(n));
            let coverage = if r.wall_ms > 0.0 {
                (profiled_ns as f64 / 1e6) / r.wall_ms
            } else {
                0.0
            };
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
            s.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall_ms));
            s.push_str(&format!(
                "      \"profiled_ms\": {:.3},\n",
                profiled_ns as f64 / 1e6
            ));
            s.push_str(&format!(
                "      \"unattributed_ms\": {:.3},\n",
                unattributed_ns as f64 / 1e6
            ));
            s.push_str(&format!("      \"coverage\": {coverage:.4},\n"));
            s.push_str("      \"scopes\": [\n");
            let rows: Vec<(usize, usize)> = match root {
                Some(root) => {
                    // Depth-first canonical walk of the subtree below
                    // the scenario root.
                    let mut rows = Vec::new();
                    let mut stack: Vec<(usize, usize)> = r
                        .profile
                        .children_sorted(root)
                        .into_iter()
                        .rev()
                        .map(|c| (c, 1))
                        .collect();
                    while let Some((n, d)) = stack.pop() {
                        rows.push((n, d));
                        for c in r.profile.children_sorted(n).into_iter().rev() {
                            stack.push((c, d + 1));
                        }
                    }
                    rows
                }
                None => Vec::new(),
            };
            for (j, &(n, depth)) in rows.iter().enumerate() {
                let node = &r.profile.nodes()[n];
                // Path relative to the scenario root: strip the
                // leading "<scenario>;".
                let full = r.profile.path(n);
                let rel = full.split_once(';').map_or(full.as_str(), |(_, p)| p);
                s.push_str("        {");
                s.push_str(&format!(
                    "\"path\": \"{}\", ",
                    json_escape(&rel.replace(' ', "_"))
                ));
                s.push_str(&format!("\"depth\": {depth}, "));
                s.push_str(&format!("\"count\": {}, ", node.count));
                s.push_str(&format!("\"total_ns\": {}, ", node.total_ns));
                s.push_str(&format!("\"self_ns\": {}, ", r.profile.self_ns(n)));
                s.push_str(&format!("\"min_ns\": {}, ", node.min_ns));
                s.push_str(&format!("\"max_ns\": {}", node.max_ns));
                s.push('}');
                s.push_str(if j + 1 < rows.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ]\n");
            s.push_str("    }");
            s.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// One compact perf-history record (schema `lgv-bench-history/v1`)
    /// — a single JSONL line the `suite` binary appends to
    /// `BENCH_history.jsonl` after every run, so wall-time trends are
    /// queryable across commits without re-running anything.
    pub fn history_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\": \"lgv-bench-history/v1\", ");
        s.push_str(&format!("\"threads\": {}, ", self.threads));
        s.push_str(&format!("\"quick\": {}, ", self.quick));
        s.push_str(&format!("\"profiled\": {}, ", self.profiled));
        s.push_str(&format!("\"total_wall_ms\": {:.3}, ", self.total_wall_ms));
        s.push_str("\"scenarios\": [");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"checksum\": \"{}\"}}",
                json_escape(&r.name),
                r.wall_ms,
                json_escape(&r.checksum)
            ));
            if i + 1 < self.results.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let reg = registry();
        assert!(!reg.is_empty());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn job(name: &str, events: u64, sim_time_s: f64) -> JobResult {
        JobResult {
            name: name.into(),
            seed: 7,
            wall_ms: 1.0,
            sim_time_s,
            events,
            output: b"hello".to_vec(),
            checksum: format!("fnv1a:{:016x}", fnv1a(b"hello")),
            error: None,
            profile: ProfileTree::new(),
        }
    }

    #[test]
    fn report_json_is_balanced_and_tagged() {
        let report = SuiteReport {
            threads: 2,
            quick: true,
            profiled: false,
            total_wall_ms: 1.5,
            results: vec![job("x", 0, 0.0)],
        };
        let j = report.to_json();
        assert!(j.contains("\"schema\": \"lgv-bench-suite/v3\""));
        assert!(j.contains("\"scenario_count\": 1"));
        assert!(j.contains("\"total_sim_time_s\": 0.000"));
        assert!(j.contains("\"name\": \"x\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn untraced_scenarios_serialize_null_sim_fields() {
        let report = SuiteReport {
            threads: 1,
            quick: true,
            profiled: false,
            total_wall_ms: 2.0,
            results: vec![job("untraced", 0, 0.0), job("traced", 12, 3.5)],
        };
        let j = report.to_json();
        assert!(j.contains("\"name\": \"untraced\", \"seed\": 7, \"wall_ms\": 1.000, \"sim_time_s\": null, \"events\": null,"));
        assert!(j.contains("\"name\": \"traced\", \"seed\": 7, \"wall_ms\": 1.000, \"sim_time_s\": 3.500, \"events\": 12,"));
        // The run-level sum only counts traced scenarios (untraced
        // contribute 0 by construction).
        assert!(j.contains("\"total_sim_time_s\": 3.500"));
    }

    #[test]
    fn profile_json_attributes_scopes_below_the_scenario_root() {
        // Hand-build a job tree: root -> "x" -> {kernel_a, kernel_a;sub, kernel_b}.
        let folded = "x 200\nx;kernel_a 500\nx;kernel_a;sub 300\nx;kernel_b 100\n";
        let tree = ProfileTree::from_folded(folded).expect("valid folded");
        let mut r = job("x", 0, 0.0);
        r.wall_ms = 0.0012; // 1200 ns measured: 900 ns profiled + residue
        r.profile = tree;
        let report = SuiteReport {
            threads: 1,
            quick: false,
            profiled: true,
            total_wall_ms: 1.0,
            results: vec![r],
        };
        let j = report.profile_json();
        assert!(j.contains("\"schema\": \"lgv-bench-profile/v1\""));
        // profiled = kernel_a (800 total) + kernel_b (100) = 900 ns;
        // unattributed = x's self time, 200 ns.
        assert!(j.contains("\"profiled_ms\": 0.001"), "{j}");
        assert!(j.contains("\"unattributed_ms\": 0.000"), "{j}");
        // Paths are relative to the scenario root, canonical order.
        let a = j.find("\"path\": \"kernel_a\", \"depth\": 1").unwrap();
        let sub = j.find("\"path\": \"kernel_a;sub\", \"depth\": 2").unwrap();
        let b = j.find("\"path\": \"kernel_b\", \"depth\": 1").unwrap();
        assert!(a < sub && sub < b);
        assert!(j.contains("\"total_ns\": 800, \"self_ns\": 500"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn history_line_is_one_compact_record() {
        let report = SuiteReport {
            threads: 4,
            quick: true,
            profiled: false,
            total_wall_ms: 9.5,
            results: vec![job("x", 0, 0.0), job("y", 3, 1.0)],
        };
        let line = report.history_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"schema\": \"lgv-bench-history/v1\""));
        assert!(line.contains("\"name\": \"x\""));
        assert!(line.contains("\"name\": \"y\""));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
}
