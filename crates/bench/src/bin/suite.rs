//! `lgv-bench suite` — run every registered table/figure scenario as a
//! seeded job fanned out across worker threads, and write the
//! machine-readable `BENCH_suite.json` artifact.
//!
//! ```text
//! suite [--threads N] [--quick] [--only NAME[,NAME...]] [--out PATH]
//!       [--profile] [--profile-out PATH] [--no-history] [--history-out PATH]
//!       [--list] [--print-output]
//! ```
//!
//! - `--threads N` — worker threads for the fan-out (default: all
//!   cores). Results are byte-identical for every N — the integration
//!   tests assert it.
//! - `--quick` — shrink sweeps (same as `LGV_BENCH_QUICK=1`).
//! - `--only a,b` — run a subset of scenarios by name.
//! - `--out PATH` — where to write the JSON artifact (default
//!   `BENCH_suite.json`; `-` for stdout only).
//! - `--profile` — collect wall-clock scope profiles and write the
//!   `lgv-bench-profile/v1` artifact (default `BENCH_profile.json`).
//!   Requires the `prof` feature (on by default); exits non-zero if
//!   the profiler is compiled out.
//! - `--profile-out PATH` — where the profile artifact goes (`-` for
//!   stdout; implies `--profile`).
//! - `--no-history` — skip appending this run to the perf-history log.
//! - `--history-out PATH` — where the history log lives (default
//!   `BENCH_history.jsonl`).
//! - `--list` — print the registry and exit.
//! - `--list-names` — print the registered scenario names, one per
//!   line, and exit (machine-readable; CI diffs this against the
//!   committed artifact's scenario set).
//! - `--print-output` — dump each scenario's captured text output
//!   after the summary table.

use lgv_bench::suite::{registry, run_suite, Scenario};
use lgv_bench::TablePrinter;
use std::io::Write as _;
use std::process::ExitCode;

struct Args {
    threads: usize,
    quick: bool,
    only: Option<Vec<String>>,
    out: String,
    profile: bool,
    profile_out: String,
    history: bool,
    history_out: String,
    list: bool,
    list_names: bool,
    print_output: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick: std::env::var("LGV_BENCH_QUICK").is_ok_and(|v| v == "1"),
        only: None,
        out: "BENCH_suite.json".to_string(),
        profile: false,
        profile_out: "BENCH_profile.json".to_string(),
        history: true,
        history_out: "BENCH_history.jsonl".to_string(),
        list: false,
        list_names: false,
        print_output: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--quick" => args.quick = true,
            "--only" => {
                let v = it.next().ok_or("--only needs a value")?;
                args.only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--profile" => args.profile = true,
            "--profile-out" => {
                args.profile_out = it.next().ok_or("--profile-out needs a value")?;
                args.profile = true;
            }
            "--no-history" => args.history = false,
            "--history-out" => args.history_out = it.next().ok_or("--history-out needs a value")?,
            "--list" => args.list = true,
            "--list-names" => args.list_names = true,
            "--print-output" => args.print_output = true,
            "--help" | "-h" => {
                return Err("usage: suite [--threads N] [--quick] [--only NAME,...] \
                            [--out PATH] [--profile] [--profile-out PATH] \
                            [--no-history] [--history-out PATH] [--list] \
                            [--list-names] [--print-output]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.profile && !lgv_trace::prof::is_available() {
        eprintln!("--profile requires the `prof` feature (rebuild without --no-default-features)");
        return ExitCode::FAILURE;
    }

    let all = registry();
    if args.list_names {
        for s in &all {
            println!("{}", s.name);
        }
        return ExitCode::SUCCESS;
    }
    if args.list {
        let mut t = TablePrinter::new(vec!["name", "seed", "cost hint", "title"]);
        for s in &all {
            t.row(vec![
                s.name.to_string(),
                s.seed.to_string(),
                s.cost_hint.to_string(),
                s.title.to_string(),
            ]);
        }
        t.print();
        return ExitCode::SUCCESS;
    }

    let scenarios: Vec<Scenario> = match &args.only {
        None => all,
        Some(names) => {
            let mut picked = Vec::new();
            for n in names {
                match all.iter().find(|s| s.name == *n) {
                    Some(s) => picked.push(*s),
                    None => {
                        eprintln!(
                            "unknown scenario {n:?}; known: {}",
                            all.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            picked
        }
    };

    eprintln!(
        "running {} scenario(s) on {} thread(s){}{}...",
        scenarios.len(),
        args.threads,
        if args.quick { " [quick]" } else { "" },
        if args.profile { " [profile]" } else { "" }
    );
    let report = run_suite(&scenarios, args.threads, args.quick, args.profile);

    let mut t = TablePrinter::new(vec![
        "scenario",
        "seed",
        "wall ms",
        "sim time s",
        "events",
        "output B",
        "checksum",
        "status",
    ]);
    let mut failed = false;
    for r in &report.results {
        failed |= r.error.is_some();
        t.row(vec![
            r.name.clone(),
            r.seed.to_string(),
            format!("{:.1}", r.wall_ms),
            if r.events == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", r.sim_time_s)
            },
            if r.events == 0 {
                "-".to_string()
            } else {
                r.events.to_string()
            },
            r.output.len().to_string(),
            r.checksum.clone(),
            r.error.clone().unwrap_or_else(|| "ok".into()),
        ]);
    }
    t.print();
    println!(
        "total wall-clock: {:.1} ms on {} thread(s)",
        report.total_wall_ms, report.threads
    );

    if args.print_output {
        for r in &report.results {
            println!("\n===== {} =====", r.name);
            print!("{}", String::from_utf8_lossy(&r.output));
        }
    }

    let json = report.to_json();
    if args.out == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    } else {
        println!("wrote {}", args.out);
    }

    if args.profile {
        let pjson = report.profile_json();
        if args.profile_out == "-" {
            print!("{pjson}");
        } else if let Err(e) = std::fs::write(&args.profile_out, &pjson) {
            eprintln!("failed to write {}: {e}", args.profile_out);
            return ExitCode::FAILURE;
        } else {
            println!("wrote {}", args.profile_out);
        }
    }

    if args.history {
        let line = report.history_line();
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&args.history_out)
            .and_then(|mut f| writeln!(f, "{line}"));
        match appended {
            Ok(()) => println!("appended run record to {}", args.history_out),
            // History is telemetry, not a gate: a read-only checkout
            // shouldn't fail the run.
            Err(e) => eprintln!("warning: could not append {}: {e}", args.history_out),
        }
    }

    if failed {
        eprintln!("one or more scenarios failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
