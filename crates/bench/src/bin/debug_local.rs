//! Scratch diagnostics: watch a mission's pose/velocity over time.
//! Not part of the figure set. `cargo run --release -p lgv-bench --bin
//! debug_local [deployment]`.

use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig};
use lgv_types::prelude::*;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "local".into());
    let explore = std::env::args().nth(2).is_some();
    let d = match arg.as_str() {
        "edge" => Deployment::edge_8t(),
        "cloud" => Deployment::cloud_12t(),
        _ => Deployment::local(),
    };
    let mut cfg = if explore {
        MissionConfig::exploration_lab(d)
    } else {
        MissionConfig::navigation_lab(d)
    };
    if !explore {
        cfg.max_time = Duration::from_secs(240);
    }
    let report = mission::run(cfg);
    println!("completed: {} ({})", report.completed, report.reason);
    println!(
        "distance: {:.2} m, time {:.0}s, standby {:.0}s",
        report.distance,
        report.time.total().as_secs_f64(),
        report.time.standby.as_secs_f64()
    );
    for s in report.velocity_trace.iter().step_by(25) {
        println!(
            "t={:6.1}  vmax={:.3}  v={:.3}  pos=({:.2},{:.2})",
            s.t, s.vmax, s.actual, s.position.x, s.position.y
        );
    }
}
