//! Offline trace analysis: reconstruct message journeys and control
//! cycles from a `lgv-trace` JSONL file and print a deterministic
//! report (latency waterfall, critical-path attribution, drop/loss
//! lineage, and §V "lying RTT" anomalies).
//!
//! ```text
//! cargo run --release -p lgv-bench --bin trace_report -- /tmp/mission.jsonl
//! cargo run --release -p lgv-bench --bin trace_report -- --prof BENCH_profile.json
//! ```
//!
//! A file may hold several missions back to back (each starts with a
//! `mission_start` record); the report prints one section per mission.
//! Fleet traces interleave N vehicles' records in one file, each
//! stamped with its vehicle id: those are first partitioned per
//! vehicle (id order), then split into missions within each vehicle.
//! Output depends only on the file's bytes, so re-running on the same
//! trace is byte-for-byte identical.
//!
//! `--prof <BENCH_profile.json>` switches to wall-clock profile mode:
//! it reads the `lgv-bench-profile/v1` artifact that `suite --profile`
//! writes and renders (a) a top-N self-time table across every
//! scenario — where the wall-clock actually went — and (b) one
//! waterfall per scenario: the scope tree indented by call depth with
//! total/self milliseconds, call counts, and the coverage summary
//! (profiled vs unattributed time). `--top N` resizes the table
//! (default 20).

use lgv_bench::json::Value;
use lgv_bench::TablePrinter;
use lgv_trace::{TraceEvent, TraceReader, TraceRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Split a record stream into missions at `mission_start` boundaries.
/// Records before the first `mission_start` (e.g. a concatenated tail
/// from a crashed run) form their own leading segment.
fn split_missions(records: Vec<TraceRecord>) -> Vec<Vec<TraceRecord>> {
    let mut missions: Vec<Vec<TraceRecord>> = Vec::new();
    for rec in records {
        let boundary = matches!(rec.event, TraceEvent::MissionStart { .. });
        if boundary || missions.is_empty() {
            missions.push(Vec::new());
        }
        missions.last_mut().expect("segment exists").push(rec);
    }
    missions
}

/// One flattened scope row from the profile artifact.
struct ScopeRow {
    path: String,
    depth: u64,
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// One scenario section from the profile artifact.
struct ProfScenario {
    name: String,
    wall_ms: f64,
    profiled_ms: f64,
    unattributed_ms: f64,
    coverage: f64,
    scopes: Vec<ScopeRow>,
}

fn parse_profile(v: &Value) -> Result<Vec<ProfScenario>, String> {
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "lgv-bench-profile/v1" {
        return Err(format!(
            "unexpected schema {schema:?} (want \"lgv-bench-profile/v1\")"
        ));
    }
    let mut out = Vec::new();
    for sc in v.get("scenarios").map(Value::items).unwrap_or(&[]) {
        let scopes = sc
            .get("scopes")
            .map(Value::items)
            .unwrap_or(&[])
            .iter()
            .map(|s| ScopeRow {
                path: s.get("path").and_then(Value::as_str).unwrap_or("?").into(),
                depth: s.get("depth").and_then(Value::as_u64).unwrap_or(1),
                count: s.get("count").and_then(Value::as_u64).unwrap_or(0),
                total_ns: s.get("total_ns").and_then(Value::as_u64).unwrap_or(0),
                self_ns: s.get("self_ns").and_then(Value::as_u64).unwrap_or(0),
            })
            .collect();
        out.push(ProfScenario {
            name: sc.get("name").and_then(Value::as_str).unwrap_or("?").into(),
            wall_ms: sc.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
            profiled_ms: sc.get("profiled_ms").and_then(Value::as_f64).unwrap_or(0.0),
            unattributed_ms: sc
                .get("unattributed_ms")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            coverage: sc.get("coverage").and_then(Value::as_f64).unwrap_or(0.0),
            scopes,
        });
    }
    Ok(out)
}

fn prof_report(scenarios: &[ProfScenario], top: usize) {
    // ---- Top-N self-time table across every scenario: where the
    // wall-clock actually went, hottest kernels first. ----
    let mut hot: Vec<(usize, usize)> = Vec::new(); // (scenario idx, scope idx)
    for (si, sc) in scenarios.iter().enumerate() {
        for (ri, _) in sc.scopes.iter().enumerate() {
            hot.push((si, ri));
        }
    }
    // Sort by self time descending; break ties on (scenario, path) so
    // the report is deterministic for equal timings.
    hot.sort_by(|&(sa, ra), &(sb, rb)| {
        let a = &scenarios[sa].scopes[ra];
        let b = &scenarios[sb].scopes[rb];
        b.self_ns
            .cmp(&a.self_ns)
            .then_with(|| scenarios[sa].name.cmp(&scenarios[sb].name))
            .then_with(|| a.path.cmp(&b.path))
    });
    println!("==== top {} scopes by self time ====", top.min(hot.len()));
    println!();
    let mut t = TablePrinter::new(vec![
        "#", "scenario", "scope", "calls", "self ms", "total ms", "% wall",
    ]);
    for (rank, &(si, ri)) in hot.iter().take(top).enumerate() {
        let sc = &scenarios[si];
        let row = &sc.scopes[ri];
        let pct = if sc.wall_ms > 0.0 {
            100.0 * (row.self_ns as f64 / 1e6) / sc.wall_ms
        } else {
            0.0
        };
        t.row(vec![
            (rank + 1).to_string(),
            sc.name.clone(),
            row.path.clone(),
            row.count.to_string(),
            format!("{:.3}", row.self_ns as f64 / 1e6),
            format!("{:.3}", row.total_ns as f64 / 1e6),
            format!("{pct:.1}"),
        ]);
    }
    t.print();

    // ---- Per-scenario waterfalls: scope tree indented by depth. ----
    for sc in scenarios {
        println!();
        println!("==== {} ====", sc.name);
        println!(
            "wall {:.1} ms | profiled {:.1} ms ({:.1}% coverage) | unattributed {:.1} ms",
            sc.wall_ms,
            sc.profiled_ms,
            100.0 * sc.coverage,
            sc.unattributed_ms
        );
        if sc.scopes.is_empty() {
            println!("(no scopes recorded)");
            continue;
        }
        println!();
        // Rows arrive in depth-first canonical order; indenting the
        // leaf segment by depth draws the call tree. Hand-format with
        // a left-aligned scope column (TablePrinter right-aligns,
        // which would erase the indentation).
        let cells: Vec<(String, String, String, String)> = sc
            .scopes
            .iter()
            .map(|row| {
                let leaf = row.path.rsplit(';').next().unwrap_or(&row.path);
                let indent = "  ".repeat((row.depth.max(1) - 1) as usize);
                (
                    format!("{indent}{leaf}"),
                    row.count.to_string(),
                    format!("{:.3}", row.total_ns as f64 / 1e6),
                    format!("{:.3}", row.self_ns as f64 / 1e6),
                )
            })
            .collect();
        let w0 = cells.iter().map(|c| c.0.len()).max().unwrap_or(5).max(5);
        let w1 = cells.iter().map(|c| c.1.len()).max().unwrap_or(5).max(5);
        let w2 = cells.iter().map(|c| c.2.len()).max().unwrap_or(8).max(8);
        let w3 = cells.iter().map(|c| c.3.len()).max().unwrap_or(7).max(7);
        println!(
            "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}",
            "scope", "calls", "total ms", "self ms"
        );
        println!("{}", "-".repeat(w0 + w1 + w2 + w3 + 6));
        for (scope, calls, total, selfms) in &cells {
            println!("{scope:<w0$}  {calls:>w1$}  {total:>w2$}  {selfms:>w3$}");
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: trace_report <trace.jsonl>");
    eprintln!("       trace_report --prof <BENCH_profile.json> [--top N]");
    eprintln!("  analyse a virtual-time trace produced with --trace <path>,");
    eprintln!("  or render a wall-clock profile written by `suite --profile`");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();

    // Profile mode: --prof <file> [--top N].
    if argv.first().map(String::as_str) == Some("--prof") {
        let Some(path) = argv.get(1) else {
            return usage();
        };
        let mut top = 20usize;
        let mut i = 2;
        while i < argv.len() {
            match argv[i].as_str() {
                "--top" => {
                    let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) else {
                        return usage();
                    };
                    top = v;
                    i += 2;
                }
                _ => return usage(),
            }
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_report: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let scenarios = match Value::parse(&text).and_then(|v| parse_profile(&v)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_report: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        prof_report(&scenarios, top);
        return ExitCode::SUCCESS;
    }

    let mut args = argv.into_iter();
    let Some(path) = args.next() else {
        return usage();
    };
    if args.next().is_some() {
        return usage();
    }

    let records = match TraceReader::read_file(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if records.is_empty() {
        eprintln!("trace_report: {path}: no records");
        return ExitCode::from(2);
    }

    // Fleet traces interleave several vehicles' records; partition
    // them per vehicle first (id 0 = untagged single-vehicle records).
    let mut by_vehicle: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
    for rec in records {
        by_vehicle.entry(rec.vehicle).or_default().push(rec);
    }
    let fleet = by_vehicle.keys().any(|&v| v != 0);
    let groups = by_vehicle.len();
    for (gi, (vehicle, group)) in by_vehicle.into_iter().enumerate() {
        if fleet {
            if vehicle == 0 {
                println!("==== untagged records ====");
            } else {
                println!("==== vehicle v{vehicle} ====");
            }
            println!();
        }
        let missions = split_missions(group);
        let many = missions.len() > 1;
        for (i, mission) in missions.iter().enumerate() {
            if many {
                println!("==== mission {} of {} ====", i + 1, missions.len());
                println!();
            }
            let analysis = lgv_trace::TraceAnalysis::from_records(mission);
            print!("{}", analysis.render_report());
            if many && i + 1 < missions.len() {
                println!();
            }
        }
        if fleet && gi + 1 < groups {
            println!();
        }
    }
    ExitCode::SUCCESS
}
