//! Offline trace analysis: reconstruct message journeys and control
//! cycles from a `lgv-trace` JSONL file and print a deterministic
//! report (latency waterfall, critical-path attribution, drop/loss
//! lineage, and §V "lying RTT" anomalies).
//!
//! ```text
//! cargo run --release -p lgv-bench --bin trace_report -- /tmp/mission.jsonl
//! ```
//!
//! A file may hold several missions back to back (each starts with a
//! `mission_start` record); the report prints one section per mission.
//! Fleet traces interleave N vehicles' records in one file, each
//! stamped with its vehicle id: those are first partitioned per
//! vehicle (id order), then split into missions within each vehicle.
//! Output depends only on the file's bytes, so re-running on the same
//! trace is byte-for-byte identical.

use lgv_trace::{TraceEvent, TraceReader, TraceRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Split a record stream into missions at `mission_start` boundaries.
/// Records before the first `mission_start` (e.g. a concatenated tail
/// from a crashed run) form their own leading segment.
fn split_missions(records: Vec<TraceRecord>) -> Vec<Vec<TraceRecord>> {
    let mut missions: Vec<Vec<TraceRecord>> = Vec::new();
    for rec in records {
        let boundary = matches!(rec.event, TraceEvent::MissionStart { .. });
        if boundary || missions.is_empty() {
            missions.push(Vec::new());
        }
        missions.last_mut().expect("segment exists").push(rec);
    }
    missions
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_report <trace.jsonl>");
        eprintln!("  analyse a virtual-time trace produced with --trace <path>");
        return ExitCode::from(2);
    };
    if args.next().is_some() {
        eprintln!("usage: trace_report <trace.jsonl> (exactly one argument)");
        return ExitCode::from(2);
    }

    let records = match TraceReader::read_file(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if records.is_empty() {
        eprintln!("trace_report: {path}: no records");
        return ExitCode::from(2);
    }

    // Fleet traces interleave several vehicles' records; partition
    // them per vehicle first (id 0 = untagged single-vehicle records).
    let mut by_vehicle: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
    for rec in records {
        by_vehicle.entry(rec.vehicle).or_default().push(rec);
    }
    let fleet = by_vehicle.keys().any(|&v| v != 0);
    let groups = by_vehicle.len();
    for (gi, (vehicle, group)) in by_vehicle.into_iter().enumerate() {
        if fleet {
            if vehicle == 0 {
                println!("==== untagged records ====");
            } else {
                println!("==== vehicle v{vehicle} ====");
            }
            println!();
        }
        let missions = split_missions(group);
        let many = missions.len() > 1;
        for (i, mission) in missions.iter().enumerate() {
            if many {
                println!("==== mission {} of {} ====", i + 1, missions.len());
                println!();
            }
            let analysis = lgv_trace::TraceAnalysis::from_records(mission);
            print!("{}", analysis.render_report());
            if many && i + 1 < missions.len() {
                println!();
            }
        }
        if fleet && gi + 1 < groups {
            println!();
        }
    }
    ExitCode::SUCCESS
}
