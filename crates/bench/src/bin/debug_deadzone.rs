//! Scratch diagnostics for the dead-zone scenario (mirrors the
//! `dead_zone_static_policy_stalls_adaptive_recovers` e2e test).

use lgv_net::signal::WirelessConfig;
use lgv_offload::deploy::Deployment;
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_offload::model::{Goal, VelocityModel};
use lgv_offload::policy::PolicyKind;
use lgv_offload::strategy::PinPolicy;
use lgv_sim::world::WorldBuilder;
use lgv_types::prelude::*;

fn main() {
    let world = WorldBuilder::new(18.0, 4.0, 0.05).walls().build();
    let cfg = MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::cloud_12t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed: 99,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(16.5, 2.0),
        wap: Point2::new(1.0, 3.5),
        wireless: WirelessConfig::default().with_weak_radius(7.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(200),
        dwa_samples: 600,
        slam_particles: 8,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: lgv_sim::LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: true,
        faults: lgv_net::FaultSchedule::none(),
        recovery: lgv_offload::recovery::RecoveryConfig::default(),
    };
    let report = mission::run(cfg);
    println!(
        "completed {} ({}), switches {}",
        report.completed, report.reason, report.net_switches
    );
    for (v, n) in report
        .velocity_trace
        .iter()
        .zip(&report.net_trace)
        .step_by(10)
    {
        println!(
            "t={:6.1} pos=({:5.2},{:4.2}) v={:.3} vmax={:.3} bw={:4.1} dir={:+.2} remote={}",
            v.t,
            v.position.x,
            v.position.y,
            v.actual,
            v.vmax,
            n.bandwidth,
            n.direction,
            n.remote_active
        );
    }
}
