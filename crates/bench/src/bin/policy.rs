//! Standalone entry point for the `policy` scenario. The scenario body
//! lives in `lgv_bench::scenarios::policy`; this wrapper runs it
//! against stdout with the canonical seed, honoring `LGV_BENCH_QUICK=1`
//! and `--trace <path>`. `lgv-bench suite` runs the same job in
//! parallel with the rest of the evaluation.

fn main() {
    lgv_bench::suite::run_scenario_standalone("policy");
}
