//! Criterion: A* vs Dijkstra on the preset maps, plus AMCL and the
//! frontier detector — the light planning-side nodes.

use criterion::{criterion_group, criterion_main, Criterion};
use lgv_nav::costmap::{Costmap, CostmapConfig};
use lgv_nav::frontier::{FrontierConfig, FrontierExplorer};
use lgv_nav::global_planner::{GlobalPlanner, PlannerAlgorithm, PlannerConfig};
use lgv_nav::{Amcl, AmclConfig};
use lgv_sim::world::presets;
use lgv_sim::{Lidar, LidarConfig};
use lgv_types::prelude::*;
use std::hint::black_box;

fn bench_global_planners(c: &mut Criterion) {
    let map = presets::intel_like().to_map_msg(SimTime::EPOCH);
    let cm = Costmap::from_map(CostmapConfig::default(), &map);
    let start = presets::intel_start().position();
    let goal = Point2::new(16.0, 2.5);
    for (name, alg) in [
        ("astar_intel", PlannerAlgorithm::AStar),
        ("dijkstra_intel", PlannerAlgorithm::Dijkstra),
    ] {
        let planner = GlobalPlanner::new(PlannerConfig {
            algorithm: alg,
            ..Default::default()
        });
        c.bench_function(name, |b| {
            b.iter(|| black_box(planner.plan(&cm, start, goal, SimTime::EPOCH).unwrap()))
        });
    }
}

fn bench_amcl_update(c: &mut Criterion) {
    let world = presets::lab();
    let map = world.to_map_msg(SimTime::EPOCH);
    let pose = presets::lab_start();
    let mut lidar = Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(3));
    let scan = lidar.scan(&world, pose, SimTime::EPOCH);
    let odom = OdometryMsg {
        stamp: SimTime::EPOCH,
        pose,
        twist: Twist::STOP,
    };
    c.bench_function("amcl_update_lab", |b| {
        let mut amcl = Amcl::new(AmclConfig::default(), &map, pose, SimRng::seed_from_u64(4));
        b.iter(|| black_box(amcl.process(&odom, &scan)));
    });
}

fn bench_frontier_detection(c: &mut Criterion) {
    // Half-known intel-like map.
    let mut map = presets::intel_like().to_map_msg(SimTime::EPOCH);
    let w = map.dims.width as usize;
    for (i, cell) in map.cells.iter_mut().enumerate() {
        if i % w > w / 2 {
            *cell = MapMsg::UNKNOWN;
        }
    }
    let explorer = FrontierExplorer::new(FrontierConfig::default());
    c.bench_function("frontier_intel_half_known", |b| {
        b.iter(|| black_box(explorer.select_goal(&map, Point2::new(1.0, 7.0), SimTime::EPOCH)))
    });
}

criterion_group!(
    benches,
    bench_global_planners,
    bench_amcl_update,
    bench_frontier_detection
);
criterion_main!(benches);
