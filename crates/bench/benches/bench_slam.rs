//! Criterion: real wall-clock scaling of the parallel scanMatch
//! (paper Fig. 6 / Fig. 9's mechanism, measured on the host CPU).
//!
//! Note: the thread sweeps only show wall-clock speedup on multi-core
//! hosts — on a single-CPU container every thread count measures the
//! same. Correctness of the parallel path (identical results at any
//! thread count) is asserted by the unit/property tests; the *paper's*
//! scaling figures come from the calibrated platform model, not from
//! host wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lgv_bench::ScanStream;
use lgv_sim::world::presets;
use lgv_slam::{GMapping, SlamConfig};
use lgv_types::prelude::*;
use std::hint::black_box;

fn bench_scan_match_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("slam_process_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let world = presets::intel_like();
                // Enough per-scan work (48 particles) that the pool's
                // spawn cost is amortized and real scaling shows.
                let cfg = SlamConfig {
                    num_particles: 48,
                    threads,
                    map_dims: *world.dims(),
                    ..SlamConfig::default()
                };
                let mut slam = GMapping::new(cfg, presets::intel_start(), SimRng::seed_from_u64(1));
                let mut stream = ScanStream::new(world, presets::intel_start(), 2);
                // Prime the maps so scan matching has structure.
                for _ in 0..3 {
                    let (odom, scan) = stream.next_pair();
                    slam.process(&odom, &scan);
                }
                b.iter(|| {
                    let (odom, scan) = stream.next_pair();
                    black_box(slam.process(&odom, &scan));
                });
            },
        );
    }
    group.finish();
}

fn bench_particle_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("slam_process_particles");
    group.sample_size(10);
    for &particles in &[8usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(particles),
            &particles,
            |b, &particles| {
                let world = presets::intel_like();
                let cfg = SlamConfig {
                    num_particles: particles,
                    threads: 4,
                    map_dims: *world.dims(),
                    ..SlamConfig::default()
                };
                let mut slam = GMapping::new(cfg, presets::intel_start(), SimRng::seed_from_u64(1));
                let mut stream = ScanStream::new(world, presets::intel_start(), 2);
                for _ in 0..3 {
                    let (odom, scan) = stream.next_pair();
                    slam.process(&odom, &scan);
                }
                b.iter(|| {
                    let (odom, scan) = stream.next_pair();
                    black_box(slam.process(&odom, &scan));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan_match_threads, bench_particle_counts);
criterion_main!(benches);
