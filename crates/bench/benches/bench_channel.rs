//! Criterion: middleware costs — binary codec throughput and the
//! simulated UDP channel/switcher hot paths.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use lgv_middleware::{from_bytes, to_bytes, Bus, TopicName};
use lgv_net::channel::UdpChannel;
use lgv_net::signal::{SignalModel, WirelessConfig};
use lgv_types::prelude::*;
use std::hint::black_box;

fn scan() -> LaserScan {
    LaserScan {
        stamp: SimTime::EPOCH,
        angle_min: 0.0,
        angle_increment: std::f64::consts::TAU / 360.0,
        range_max: 3.5,
        ranges: (0..360).map(|i| (i % 35) as f64 * 0.1).collect(),
    }
}

fn bench_codec(c: &mut Criterion) {
    let s = scan();
    c.bench_function("codec_encode_scan", |b| {
        b.iter(|| black_box(to_bytes(&s).unwrap()))
    });
    let encoded = to_bytes(&s).unwrap();
    c.bench_function("codec_decode_scan", |b| {
        b.iter(|| black_box(from_bytes::<LaserScan>(&encoded).unwrap()))
    });
}

fn bench_bus(c: &mut Criterion) {
    let bus = Bus::new();
    let sub = bus.subscribe(TopicName::SCAN, 1);
    let s = scan();
    c.bench_function("bus_publish_recv_scan", |b| {
        b.iter(|| {
            bus.publish(TopicName::SCAN, &s).unwrap();
            black_box(sub.recv::<LaserScan>().unwrap());
        })
    });
}

fn bench_udp_channel(c: &mut Criterion) {
    let sm = SignalModel::new(WirelessConfig::default(), Point2::new(0.0, 0.0));
    let mut ch = UdpChannel::new(sm, Duration::ZERO, SimRng::seed_from_u64(1));
    let payload = Bytes::from(vec![0u8; 2940]);
    let pos = Point2::new(2.0, 0.0);
    let mut t = SimTime::EPOCH;
    c.bench_function("udp_send_tick_recv", |b| {
        b.iter(|| {
            t += Duration::from_millis(1);
            ch.send(t, pos, payload.clone());
            ch.tick(t + Duration::from_millis(10), pos);
            black_box(ch.recv());
        })
    });
}

criterion_group!(benches, bench_codec, bench_bus, bench_udp_channel);
criterion_main!(benches);
