//! Criterion: real wall-clock cost of the VDP nodes — costmap update
//! and DWA trajectory scoring with thread/sample sweeps (Fig. 5 /
//! Fig. 10's mechanism, measured on the host CPU).
//!
//! Note: thread sweeps only show wall-clock speedup on multi-core
//! hosts — on a single-CPU container every thread count measures the
//! same. The paper's scaling figures come from the calibrated platform
//! model, not from host wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lgv_nav::costmap::{Costmap, CostmapConfig};
use lgv_nav::dwa::{DwaConfig, DwaPlanner};
use lgv_sim::world::presets;
use lgv_sim::{Lidar, LidarConfig};
use lgv_types::prelude::*;
use std::hint::black_box;

fn setup() -> (Costmap, MapMsg, LaserScan, Pose2D, PathMsg, Point2) {
    let world = presets::lab();
    let map = world.to_map_msg(SimTime::EPOCH);
    let cm = Costmap::from_map(CostmapConfig::default(), &map);
    let pose = presets::lab_start();
    let mut lidar = Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(7));
    let scan = lidar.scan(&world, pose, SimTime::EPOCH);
    let goal = presets::lab_goal();
    let path = PathMsg {
        stamp: SimTime::EPOCH,
        waypoints: vec![pose.position(), goal],
    };
    (cm, map, scan, pose, path, goal)
}

fn bench_costmap_update(c: &mut Criterion) {
    let (mut cm, map, scan, pose, _, _) = setup();
    c.bench_function("costmap_update_lab", |b| {
        b.iter(|| {
            let mut meter = WorkMeter::new();
            cm.update(&map, pose, &scan, &mut meter);
            black_box(meter.finish());
        })
    });
}

fn bench_dwa_samples(c: &mut Criterion) {
    let (cm, _, _, pose, path, goal) = setup();
    let mut group = c.benchmark_group("dwa_samples");
    group.sample_size(20);
    for &samples in &[100u32, 500, 1000, 2000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &samples,
            |b, &samples| {
                let mut dwa = DwaPlanner::new(DwaConfig {
                    samples,
                    ..DwaConfig::default()
                });
                b.iter(|| black_box(dwa.compute(&cm, pose, &path, goal)));
            },
        );
    }
    group.finish();
}

fn bench_dwa_threads(c: &mut Criterion) {
    let (cm, _, _, pose, path, goal) = setup();
    let mut group = c.benchmark_group("dwa_threads_2000_samples");
    group.sample_size(20);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut dwa = DwaPlanner::new(DwaConfig {
                    samples: 2000,
                    threads,
                    ..DwaConfig::default()
                });
                b.iter(|| black_box(dwa.compute(&cm, pose, &path, goal)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_costmap_update,
    bench_dwa_samples,
    bench_dwa_threads
);
criterion_main!(benches);
