//! Integration tests for the parallel evaluation harness.
//!
//! The load-bearing property: running the suite with N worker threads
//! produces **byte-identical** scenario outputs to running it with one.
//! Each scenario runs on its own virtual clock, its own seeded RNGs,
//! and its own captured output buffer, so parallelism must not be able
//! to leak into results. These tests compare the same FNV-1a checksums
//! that land in `BENCH_suite.json`.
//!
//! The full all-scenario comparison is `#[ignore]`d because debug-mode
//! missions are slow; `scripts/ci.sh` runs it in release mode
//! (`cargo test --release -p lgv-bench --test suite -- --ignored`).

use lgv_bench::suite::{registry, run_suite, Scenario};

/// Profiled and unprofiled suite runs share one process-wide collection
/// flag; tests that turn it on (or assert it stayed off) must not
/// overlap.
static PROF_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Scenarios cheap enough to run twice in a debug-mode test.
fn fast_scenarios() -> Vec<Scenario> {
    let fast = ["table1", "fig7", "fig10", "fig11"];
    registry()
        .into_iter()
        .filter(|s| fast.contains(&s.name))
        .collect()
}

fn assert_identical_runs(scenarios: &[Scenario], quick: bool) {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Profile one of the two runs: wall-clock profiling must never
    // leak into scenario outputs either.
    let serial = run_suite(scenarios, 1, quick, false);
    let parallel = run_suite(scenarios, 4, quick, true);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.name, p.name, "result order must match registry order");
        assert_eq!(s.error, p.error, "{}: error mismatch", s.name);
        assert_eq!(
            s.checksum,
            p.checksum,
            "{}: serial and parallel outputs differ:\n--- serial ---\n{}\n--- parallel ---\n{}",
            s.name,
            String::from_utf8_lossy(&s.output),
            String::from_utf8_lossy(&p.output),
        );
        assert_eq!(s.output, p.output, "{}: checksum collision?", s.name);
        assert_eq!(s.events, p.events, "{}: trace event count differs", s.name);
        assert_eq!(
            s.sim_time_s, p.sim_time_s,
            "{}: virtual time differs",
            s.name
        );
    }
}

#[test]
fn fast_scenarios_parallel_matches_serial() {
    let scenarios = fast_scenarios();
    assert!(scenarios.len() >= 4, "fast subset shrank — update the test");
    assert_identical_runs(&scenarios, true);
}

/// The full contract over every registered scenario, in quick mode.
/// Slow in debug builds; the CI gate runs it with `--release`.
#[test]
#[ignore = "runs every scenario twice; ci.sh runs this in release mode"]
fn all_scenarios_parallel_matches_serial() {
    assert_identical_runs(&registry(), true);
}

#[test]
fn suite_json_is_valid_and_lists_every_scenario() {
    let scenarios = fast_scenarios();
    let report = run_suite(&scenarios, 2, true, false);
    let json = report.to_json();
    json_validate(&json).expect("suite JSON must parse");
    assert!(json.contains("\"schema\": \"lgv-bench-suite/v3\""));
    assert!(json.contains(&format!("\"scenario_count\": {}", scenarios.len())));
    assert!(json.contains("\"total_sim_time_s\": "));
    for s in &scenarios {
        assert!(
            json.contains(&format!("\"name\": \"{}\"", s.name)),
            "missing {}",
            s.name
        );
    }
    // fig7 and fig10 emit no trace events: the artifact must say
    // "not traced", not "zero seconds of simulation".
    for line in json.lines() {
        if line.contains("\"name\": \"fig7\"") || line.contains("\"name\": \"fig10\"") {
            assert!(
                line.contains("\"sim_time_s\": null, \"events\": null"),
                "untraced scenario should serialize null sim fields: {line}"
            );
        }
        if line.contains("\"name\": \"fig11\"") {
            assert!(
                !line.contains("null"),
                "traced scenario lost its sim-time fields: {line}"
            );
        }
    }
}

/// `--profile` must produce a parseable `lgv-bench-profile/v1`
/// artifact whose scope attribution covers the instrumented scenarios,
/// with named kernels (not unattributed residue) on top.
#[test]
fn profile_json_is_valid_and_attributes_named_kernels() {
    if !lgv_trace::prof::is_available() {
        eprintln!("prof feature compiled out; skipping");
        return;
    }
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenarios: Vec<Scenario> = registry()
        .into_iter()
        .filter(|s| s.name == "fig11")
        .collect();
    let report = run_suite(&scenarios, 1, true, true);
    assert!(report.profiled);
    let json = report.profile_json();
    json_validate(&json).expect("profile JSON must parse");
    assert!(json.contains("\"schema\": \"lgv-bench-profile/v1\""));
    assert!(json.contains("\"name\": \"fig11\""));
    // fig11 drives the UDP channel directly (no mission engine), so
    // its profile is the channel-delivery kernel.
    assert!(
        json.contains("\"path\": \"net/channel_tick\""),
        "missing net/channel_tick in:\n{json}"
    );
    let r = &report.results[0];
    let root = r
        .profile
        .children_sorted(0)
        .into_iter()
        .find(|&n| r.profile.nodes()[n].name == "fig11")
        .expect("job root scope");
    assert!(r.profile.nodes()[root].count == 1);
    assert!(!r.profile.nodes()[root].children.is_empty());
}

/// The headline acceptance property, on the dominant scenario: with
/// profiling on, fig13's instrumented scopes account for most of its
/// wall time and the top self-time scope is a named kernel, not
/// unattributed residue. Release-only (a debug fig13 run is minutes);
/// `scripts/ci.sh` runs it via the `--ignored` release pass.
#[test]
#[ignore = "runs fig13; ci.sh runs this in release mode"]
fn profiled_fig13_covers_its_wall_time_with_named_kernels() {
    if !lgv_trace::prof::is_available() {
        eprintln!("prof feature compiled out; skipping");
        return;
    }
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenarios: Vec<Scenario> = registry()
        .into_iter()
        .filter(|s| s.name == "fig13")
        .collect();
    let report = run_suite(&scenarios, 1, true, true);
    let r = &report.results[0];
    assert!(r.error.is_none(), "{:?}", r.error);
    let root = r
        .profile
        .children_sorted(0)
        .into_iter()
        .find(|&n| r.profile.nodes()[n].name == "fig13")
        .expect("job root scope");
    let profiled_ns: u64 = r.profile.nodes()[root]
        .children
        .iter()
        .map(|&c| r.profile.nodes()[c].total_ns)
        .sum();
    let coverage = (profiled_ns as f64 / 1e6) / r.wall_ms;
    assert!(
        coverage >= 0.8,
        "profiled scopes cover {:.1}% of fig13's wall time (need >= 80%)",
        coverage * 100.0
    );
    // Top self-time scope below the root must be a named kernel.
    let (top, _) = r
        .profile
        .walk()
        .into_iter()
        .filter(|&(n, _)| n != root)
        .max_by_key(|&(n, _)| r.profile.self_ns(n))
        .expect("at least one scope");
    let name = &r.profile.nodes()[top].name;
    assert!(
        name.contains('/'),
        "top self-time scope {name:?} is not a subsystem/kernel name"
    );
    assert!(
        r.profile.self_ns(top) > r.profile.self_ns(root),
        "unattributed residue ({} ns) outweighs the top kernel {name:?} ({} ns)",
        r.profile.self_ns(root),
        r.profile.self_ns(top)
    );
}

/// A run without `--profile` must carry no profile data (and still
/// render a valid, explicitly-unprofiled artifact).
#[test]
fn unprofiled_run_has_empty_trees() {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenarios: Vec<Scenario> = registry()
        .into_iter()
        .filter(|s| s.name == "table1")
        .collect();
    let report = run_suite(&scenarios, 1, true, false);
    assert!(!report.profiled);
    assert!(report.results[0].profile.is_empty());
    let json = report.profile_json();
    json_validate(&json).expect("even an empty profile renders valid JSON");
    assert!(json.contains("\"profiled\": false"));
    assert!(json.contains("\"coverage\": 0.0000"));
}

/// The committed artifact must stay in sync with the registry: valid
/// JSON, current schema tag, one entry per registered scenario.
#[test]
fn committed_bench_artifact_matches_registry() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_suite.json missing at repo root — regenerate with `suite`");
    json_validate(&text).expect("committed BENCH_suite.json must parse");
    assert!(text.contains("\"schema\": \"lgv-bench-suite/v3\""));
    for s in registry() {
        assert!(
            text.contains(&format!("\"name\": \"{}\"", s.name)),
            "committed artifact lacks scenario {:?} — regenerate with `suite`",
            s.name
        );
    }
}

// ------------------------------------------------------------------
// Minimal JSON syntax checker (the workspace is hermetic — no
// serde_json), enough to catch malformed artifacts: verifies the text
// is exactly one well-formed JSON value.

fn json_validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    json_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                json_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                json_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                json_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => json_string(b, pos),
        Some(b't') => json_literal(b, pos, b"true"),
        Some(b'f') => json_literal(b, pos, b"false"),
        Some(b'n') => json_literal(b, pos, b"null"),
        Some(_) => json_number(b, pos),
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn json_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn json_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected value at offset {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at offset {start}"))
}
