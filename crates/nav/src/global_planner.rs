//! Global path planning (the PathPlanning node).
//!
//! Grid search over the costmap with 8-connectivity, supporting both
//! of the paper's cited algorithms: Dijkstra and A* (Hart et al. '68).
//! Edge cost is geometric distance plus a penalty proportional to the
//! costmap value, so paths prefer clearance. The produced waypoint
//! list is smoothed by greedy line-of-sight shortcutting.

use crate::costmap::{Costmap, COST_INSCRIBED};
use lgv_types::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cycle-cost constants: calibrated so replanning at 1 Hz on the lab
/// map draws ≈ 0.055 Gcycles/s (Table II, PathPlanning).
pub mod cost {
    /// Cycles per node expansion (heap ops + 8 neighbour relaxations).
    pub const CYCLES_PER_EXPANSION: f64 = 1400.0;
}

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerAlgorithm {
    /// Uniform-cost search (Dijkstra '59).
    Dijkstra,
    /// A* with the Euclidean-distance heuristic.
    AStar,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Search algorithm.
    pub algorithm: PlannerAlgorithm,
    /// Weight of costmap values added to edge costs (metres of
    /// equivalent detour per full-scale cost).
    pub cost_weight: f64,
    /// Allow planning through unknown space (exploration needs this).
    pub allow_unknown: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            algorithm: PlannerAlgorithm::AStar,
            cost_weight: 0.8,
            allow_unknown: false,
        }
    }
}

/// One planning outcome.
#[derive(Debug, Clone)]
pub struct PlanResult {
    /// The path, start → goal.
    pub path: PathMsg,
    /// Nodes expanded during the search.
    pub expansions: u64,
    /// Cycle demand of this activation.
    pub work: Work,
}

#[derive(Debug, PartialEq)]
struct QueueEntry {
    priority: f64,
    flat: usize,
}

impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on priority.
        other.priority.total_cmp(&self.priority)
    }
}

/// The global planner.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlanner {
    cfg: PlannerConfig,
}

impl GlobalPlanner {
    /// Build with config.
    pub fn new(cfg: PlannerConfig) -> Self {
        GlobalPlanner { cfg }
    }

    /// Configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    fn passable(&self, cm: &Costmap, idx: GridIndex) -> bool {
        if self.cfg.allow_unknown {
            cm.cost(idx) < COST_INSCRIBED
        } else {
            cm.traversable(idx)
        }
    }

    /// Plan a path from `start` to `goal` (world coordinates).
    pub fn plan(
        &self,
        cm: &Costmap,
        start: Point2,
        goal: Point2,
        stamp: SimTime,
    ) -> Result<PlanResult, LgvError> {
        let dims = *cm.dims();
        let s = dims.clamp(dims.world_to_grid(start));
        let g = dims.clamp(dims.world_to_grid(goal));
        if !self.passable(cm, g) {
            return Err(LgvError::NoPath {
                context: format!("goal {goal:?} not traversable"),
            });
        }
        // Start is where the robot is: treat as passable even if the
        // costmap momentarily inflates over it.
        let n = dims.len();
        let mut best = vec![f64::INFINITY; n];
        let mut parent = vec![usize::MAX; n];
        let mut closed = vec![false; n];
        let mut heap = BinaryHeap::new();
        let sf = dims.flat(s);
        let gf = dims.flat(g);
        best[sf] = 0.0;
        heap.push(QueueEntry {
            priority: 0.0,
            flat: sf,
        });

        let heuristic = |flat: usize| -> f64 {
            match self.cfg.algorithm {
                PlannerAlgorithm::Dijkstra => 0.0,
                PlannerAlgorithm::AStar => {
                    let idx = dims.unflat(flat);
                    dims.grid_to_world(idx).distance(dims.grid_to_world(g))
                }
            }
        };

        let mut expansions = 0u64;
        while let Some(QueueEntry { flat, .. }) = heap.pop() {
            if closed[flat] {
                continue;
            }
            closed[flat] = true;
            expansions += 1;
            if flat == gf {
                break;
            }
            let idx = dims.unflat(flat);
            for nb in idx.neighbors8() {
                if !dims.contains(nb) || !self.passable(cm, nb) {
                    continue;
                }
                let diagonal = nb.col != idx.col && nb.row != idx.row;
                if diagonal {
                    // No corner cutting: a diagonal move requires both
                    // orthogonal companion cells to be passable, or the
                    // robot's body would clip the blocked corner.
                    let c1 = GridIndex::new(nb.col, idx.row);
                    let c2 = GridIndex::new(idx.col, nb.row);
                    if !self.passable(cm, c1) || !self.passable(cm, c2) {
                        continue;
                    }
                }
                let nf = dims.flat(nb);
                if closed[nf] {
                    continue;
                }
                let step = if diagonal {
                    dims.resolution * std::f64::consts::SQRT_2
                } else {
                    dims.resolution
                };
                let penalty = self.cfg.cost_weight * (cm.cost(nb) as f64 / 254.0) * dims.resolution;
                let cand = best[flat] + step + penalty;
                if cand < best[nf] {
                    best[nf] = cand;
                    parent[nf] = flat;
                    heap.push(QueueEntry {
                        priority: cand + heuristic(nf),
                        flat: nf,
                    });
                }
            }
        }

        let work = Work::serial(expansions as f64 * cost::CYCLES_PER_EXPANSION);
        if !closed[gf] {
            return Err(LgvError::NoPath {
                context: format!("no route from {start:?} to {goal:?} ({expansions} expansions)"),
            });
        }

        // Reconstruct and smooth.
        let mut cells = vec![gf];
        let mut cur = gf;
        while cur != sf {
            cur = parent[cur];
            cells.push(cur);
            if cells.len() > n {
                return Err(LgvError::NoPath {
                    context: "parent cycle".into(),
                });
            }
        }
        cells.reverse();
        let raw: Vec<Point2> = cells
            .iter()
            .map(|&f| dims.grid_to_world(dims.unflat(f)))
            .collect();
        let waypoints = self.shortcut(cm, &raw);

        Ok(PlanResult {
            path: PathMsg { stamp, waypoints },
            expansions,
            work,
        })
    }

    /// Like [`GlobalPlanner::plan`], but when the exact goal cell is
    /// not traversable (a frontier cell hugging a wall's inflation, a
    /// goal just inside clutter), retarget to the nearest traversable
    /// cell within `slack` metres of it.
    pub fn plan_near(
        &self,
        cm: &Costmap,
        start: Point2,
        goal: Point2,
        slack: f64,
        stamp: SimTime,
    ) -> Result<PlanResult, LgvError> {
        match self.plan(cm, start, goal, stamp) {
            Ok(r) => Ok(r),
            Err(first_err) => {
                let dims = *cm.dims();
                let centre = dims.clamp(dims.world_to_grid(goal));
                let radius = (slack / dims.resolution).ceil() as i32;
                let mut best: Option<(f64, GridIndex)> = None;
                for dr in -radius..=radius {
                    for dc in -radius..=radius {
                        let idx = GridIndex::new(centre.col + dc, centre.row + dr);
                        if !dims.contains(idx) || !self.passable(cm, idx) {
                            continue;
                        }
                        let d = dims.grid_to_world(idx).distance(goal);
                        if d <= slack && best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, idx));
                        }
                    }
                }
                match best {
                    Some((_, idx)) => self.plan(cm, start, dims.grid_to_world(idx), stamp),
                    None => Err(first_err),
                }
            }
        }
    }

    /// Greedy line-of-sight shortcutting over the raw cell path.
    fn shortcut(&self, cm: &Costmap, raw: &[Point2]) -> Vec<Point2> {
        if raw.len() <= 2 {
            return raw.to_vec();
        }
        let mut out = vec![raw[0]];
        let mut i = 0;
        while i + 1 < raw.len() {
            // Furthest j visible from i.
            let mut j = i + 1;
            for k in (i + 1..raw.len()).rev() {
                if self.line_free(cm, raw[i], raw[k]) {
                    j = k;
                    break;
                }
            }
            out.push(raw[j]);
            i = j;
        }
        out
    }

    fn line_free(&self, cm: &Costmap, a: Point2, b: Point2) -> bool {
        GridRay::new(cm.dims(), a, b).all(|c| self.passable(cm, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmap::CostmapConfig;

    fn open_map(w: u32, h: u32) -> MapMsg {
        MapMsg {
            stamp: SimTime::EPOCH,
            dims: GridDims::new(w, h, 0.05, Point2::ORIGIN),
            cells: vec![MapMsg::FREE; (w * h) as usize],
        }
    }

    /// Map with a vertical wall at x ≈ 2.5 m with a gap at y ∈ [3, 3.5].
    fn wall_map() -> MapMsg {
        let mut m = open_map(120, 120);
        for row in 0..120 {
            let y = row as f64 * 0.05;
            if (3.0..3.5).contains(&y) {
                continue;
            }
            m.cells[row * 120 + 50] = MapMsg::OCCUPIED;
        }
        m
    }

    fn planner(alg: PlannerAlgorithm) -> GlobalPlanner {
        GlobalPlanner::new(PlannerConfig {
            algorithm: alg,
            ..Default::default()
        })
    }

    #[test]
    fn straight_path_in_open_space() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(100, 100));
        let p = planner(PlannerAlgorithm::AStar);
        let r = p
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(4.0, 1.0),
                SimTime::EPOCH,
            )
            .unwrap();
        let len = r.path.length();
        assert!((len - 3.0).abs() < 0.2, "length {len}");
        assert!(r.path.waypoints.len() >= 2);
    }

    #[test]
    fn path_goes_through_the_gap() {
        let cm = Costmap::from_map(CostmapConfig::default(), &wall_map());
        let p = planner(PlannerAlgorithm::AStar);
        let r = p
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 1.0),
                SimTime::EPOCH,
            )
            .unwrap();
        // Must detour via y ≈ 3.25: length well above the straight 4 m.
        assert!(r.path.length() > 5.0, "length {}", r.path.length());
        // Every waypoint pair stays collision-free.
        let max_y = r.path.waypoints.iter().map(|w| w.y).fold(0.0, f64::max);
        assert!(max_y > 2.9, "should pass near the gap, max_y {max_y}");
    }

    #[test]
    fn dijkstra_and_astar_agree_on_length() {
        let cm = Costmap::from_map(CostmapConfig::default(), &wall_map());
        let d = planner(PlannerAlgorithm::Dijkstra)
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 1.0),
                SimTime::EPOCH,
            )
            .unwrap();
        let a = planner(PlannerAlgorithm::AStar)
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 1.0),
                SimTime::EPOCH,
            )
            .unwrap();
        let diff = (d.path.length() - a.path.length()).abs();
        assert!(
            diff < 0.4,
            "Dijkstra {} vs A* {}",
            d.path.length(),
            a.path.length()
        );
    }

    #[test]
    fn astar_expands_fewer_nodes() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let d = planner(PlannerAlgorithm::Dijkstra)
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 5.0),
                SimTime::EPOCH,
            )
            .unwrap();
        let a = planner(PlannerAlgorithm::AStar)
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 5.0),
                SimTime::EPOCH,
            )
            .unwrap();
        assert!(
            a.expansions * 2 < d.expansions,
            "A* {} vs Dijkstra {}",
            a.expansions,
            d.expansions
        );
        assert!(a.work.total_cycles() < d.work.total_cycles());
    }

    #[test]
    fn unreachable_goal_errors() {
        // Wall with no gap.
        let mut m = open_map(100, 100);
        for row in 0..100 {
            m.cells[row * 100 + 50] = MapMsg::OCCUPIED;
        }
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let p = planner(PlannerAlgorithm::AStar);
        let r = p.plan(
            &cm,
            Point2::new(1.0, 1.0),
            Point2::new(4.0, 1.0),
            SimTime::EPOCH,
        );
        assert!(matches!(r, Err(LgvError::NoPath { .. })));
    }

    #[test]
    fn goal_inside_obstacle_errors() {
        let m = wall_map();
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let p = planner(PlannerAlgorithm::AStar);
        let r = p.plan(
            &cm,
            Point2::new(1.0, 1.0),
            Point2::new(2.52, 1.0),
            SimTime::EPOCH,
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_space_respected_unless_allowed() {
        let mut m = open_map(100, 100);
        // Right half unknown.
        for row in 0..100 {
            for col in 50..100 {
                m.cells[row * 100 + col] = MapMsg::UNKNOWN;
            }
        }
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let strict = planner(PlannerAlgorithm::AStar);
        assert!(strict
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(4.0, 1.0),
                SimTime::EPOCH
            )
            .is_err());
        let permissive = GlobalPlanner::new(PlannerConfig {
            allow_unknown: true,
            ..Default::default()
        });
        assert!(permissive
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(4.0, 1.0),
                SimTime::EPOCH
            )
            .is_ok());
    }

    #[test]
    fn path_waypoints_are_collision_free() {
        let cm = Costmap::from_map(CostmapConfig::default(), &wall_map());
        let p = planner(PlannerAlgorithm::AStar);
        let r = p
            .plan(
                &cm,
                Point2::new(1.0, 1.0),
                Point2::new(5.0, 5.5),
                SimTime::EPOCH,
            )
            .unwrap();
        for w in &r.path.waypoints {
            let idx = cm.dims().world_to_grid(*w);
            assert!(cm.cost(idx) < COST_INSCRIBED, "waypoint {w:?} in collision");
        }
    }
}
