//! Adaptive Monte Carlo Localization (the known-map Localization node).
//!
//! A particle filter against a *fixed* map: propagate with the
//! odometry motion model, weight with the same beam-likelihood score
//! the SLAM scan matcher uses, resample on weight degeneracy, and —
//! the "adaptive" part (KLD-sampling, Fox '01) — shrink the particle
//! population as the estimate converges and grow it again when the
//! spread increases. With a known map this node is light (Table II:
//! 0.028 Gcycles ≈ 1 % of the with-map workload), which is why the
//! fine-grained migration policy leaves it wherever convenient.

use lgv_slam::map::OccupancyGrid;
use lgv_slam::motion::{MotionModel, MotionNoise};
use lgv_slam::rbpf::cost::CYCLES_PER_BEAM_EVAL;
use lgv_slam::scan_match::{ScanMatcher, ScanMatcherConfig};
use lgv_types::prelude::*;
use lgv_types::rng::low_variance_resample;

/// AMCL configuration.
#[derive(Debug, Clone)]
pub struct AmclConfig {
    /// Minimum particle population.
    pub min_particles: usize,
    /// Maximum particle population.
    pub max_particles: usize,
    /// Use every `beam_skip`-th beam for weighting.
    pub beam_skip: usize,
    /// Resample when `N_eff` falls below this fraction of the
    /// population.
    pub resample_neff_frac: f64,
    /// Positional spread (m, std-dev) below which the population
    /// shrinks towards `min_particles`.
    pub converge_spread: f64,
    /// Motion noise.
    pub motion: MotionNoise,
    /// Initial pose uncertainty (m / rad std-dev).
    pub init_spread: (f64, f64),
}

impl Default for AmclConfig {
    fn default() -> Self {
        AmclConfig {
            min_particles: 40,
            max_particles: 200,
            beam_skip: 10,
            resample_neff_frac: 0.5,
            converge_spread: 0.08,
            motion: MotionNoise::default(),
            init_spread: (0.15, 0.1),
        }
    }
}

#[derive(Debug, Clone)]
struct AParticle {
    pose: Pose2D,
    weight: f64,
}

/// One AMCL update's output.
#[derive(Debug, Clone)]
pub struct AmclOutput {
    /// Weighted-mean pose estimate.
    pub pose: PoseEstimate,
    /// Cycle demand of this activation.
    pub work: Work,
    /// Current particle count (adaptation observable).
    pub particles: usize,
    /// Positional spread (m).
    pub spread: f64,
}

/// The localizer.
#[derive(Debug)]
pub struct Amcl {
    cfg: AmclConfig,
    map: OccupancyGrid,
    matcher: ScanMatcher,
    motion: MotionModel,
    particles: Vec<AParticle>,
    last_odom: Option<Pose2D>,
    rng: SimRng,
}

impl Amcl {
    /// Build a localizer on a known map, initialized around `start`.
    pub fn new(cfg: AmclConfig, map: &MapMsg, start: Pose2D, mut rng: SimRng) -> Self {
        let n0 = cfg.max_particles;
        let (sp, sr) = cfg.init_spread;
        let particles = (0..n0)
            .map(|_| AParticle {
                pose: Pose2D::new(
                    start.x + rng.gaussian(0.0, sp),
                    start.y + rng.gaussian(0.0, sp),
                    start.theta + rng.gaussian(0.0, sr),
                ),
                weight: 1.0 / n0 as f64,
            })
            .collect();
        let matcher = ScanMatcher::new(ScanMatcherConfig {
            beam_skip: cfg.beam_skip,
            ..ScanMatcherConfig::default()
        });
        let motion = MotionModel::new(cfg.motion);
        Amcl {
            cfg,
            map: OccupancyGrid::from_map_msg(map),
            matcher,
            motion,
            particles,
            last_odom: None,
            rng,
        }
    }

    /// Current particle count.
    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// Weighted-mean pose.
    pub fn mean_pose(&self) -> Pose2D {
        let wsum: f64 = self.particles.iter().map(|p| p.weight).sum();
        let mut x = 0.0;
        let mut y = 0.0;
        let mut sc = 0.0;
        let mut ss = 0.0;
        for p in &self.particles {
            let w = p.weight / wsum.max(1e-12);
            x += w * p.pose.x;
            y += w * p.pose.y;
            sc += w * p.pose.theta.cos();
            ss += w * p.pose.theta.sin();
        }
        Pose2D::new(x, y, ss.atan2(sc))
    }

    /// Positional spread (std-dev of particle positions, m).
    pub fn spread(&self) -> f64 {
        let mean = self.mean_pose();
        let n = self.particles.len() as f64;
        let var: f64 = self
            .particles
            .iter()
            .map(|p| p.pose.position().distance_sq(mean.position()))
            .sum::<f64>()
            / n;
        var.sqrt()
    }

    /// Process one odometry + scan pair.
    pub fn process(&mut self, odom: &OdometryMsg, scan: &LaserScan) -> AmclOutput {
        let delta = match self.last_odom {
            Some(last) => last.between(odom.pose),
            None => Pose2D::default(),
        };
        self.last_odom = Some(odom.pose);

        let mut meter = WorkMeter::new();
        let n = self.particles.len();

        // Propagate.
        for p in &mut self.particles {
            p.pose = self.motion.sample(p.pose, delta, &mut self.rng);
        }
        meter.serial_ops(n as u64, lgv_slam::rbpf::cost::CYCLES_PER_MOTION_SAMPLE);

        // Weight with the beam likelihood against the static map.
        let mut evals = 0u64;
        for p in &mut self.particles {
            let (score, used) = self.matcher.score(&self.map, p.pose, scan);
            evals += used;
            let per_beam = if used > 0 { score / used as f64 } else { 0.0 };
            p.weight *= (per_beam * 4.0).exp();
        }
        meter.serial_ops(evals, CYCLES_PER_BEAM_EVAL);

        // Normalize; N_eff.
        let wsum: f64 = self.particles.iter().map(|p| p.weight).sum();
        if wsum > 0.0 && wsum.is_finite() {
            for p in &mut self.particles {
                p.weight /= wsum;
            }
        } else {
            let u = 1.0 / n as f64;
            for p in &mut self.particles {
                p.weight = u;
            }
        }
        let neff = 1.0
            / self
                .particles
                .iter()
                .map(|p| p.weight * p.weight)
                .sum::<f64>();

        // Adaptive population sizing (the "A" in AMCL): shrink when
        // converged, grow when dispersed.
        let spread = self.spread();
        let target = if spread < self.cfg.converge_spread {
            self.cfg.min_particles
        } else {
            let t = (spread / (4.0 * self.cfg.converge_spread)).min(1.0);
            (self.cfg.min_particles as f64
                + t * (self.cfg.max_particles - self.cfg.min_particles) as f64) as usize
        };

        // Resample (also applies the population resize).
        if neff < self.cfg.resample_neff_frac * n as f64 || target != n {
            let weights: Vec<f64> = self.particles.iter().map(|p| p.weight).collect();
            let picks = low_variance_resample(&mut self.rng, &weights, target);
            let u = 1.0 / target as f64;
            self.particles = picks
                .iter()
                .map(|&i| AParticle {
                    pose: self.particles[i].pose,
                    weight: u,
                })
                .collect();
            meter.serial_ops(target as u64, 200.0);
        }

        let confidence = (1.0 - (spread / (4.0 * self.cfg.converge_spread)).min(1.0)).max(0.0);
        AmclOutput {
            pose: PoseEstimate {
                stamp: scan.stamp,
                pose: self.mean_pose(),
                confidence,
            },
            work: meter.finish(),
            particles: self.particles.len(),
            spread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Ground-truth box room `[1,6] × [1.5,6.5]` and exact scans of it.
    fn room_map() -> MapMsg {
        let dims = GridDims::new(160, 160, 0.05, Point2::ORIGIN);
        let mut cells = vec![MapMsg::FREE; dims.len()];
        for row in 0..160 {
            for col in 0..160 {
                let x = (col as f64 + 0.5) * 0.05;
                let y = (row as f64 + 0.5) * 0.05;
                let on_x_wall =
                    ((x - 1.0).abs() < 0.05 || (x - 6.0).abs() < 0.05) && (1.5..=6.5).contains(&y);
                let on_y_wall =
                    ((y - 1.5).abs() < 0.05 || (y - 6.5).abs() < 0.05) && (1.0..=6.0).contains(&x);
                if on_x_wall || on_y_wall {
                    cells[row * 160 + col] = MapMsg::OCCUPIED;
                }
            }
        }
        MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells,
        }
    }

    fn room_scan(pose: Pose2D) -> LaserScan {
        let (xmin, xmax, ymin, ymax) = (1.0, 6.0, 1.5, 6.5);
        let beams = 360;
        let inc = 2.0 * PI / beams as f64;
        let ranges = (0..beams)
            .map(|i| {
                let a = pose.theta + i as f64 * inc;
                let (c, s) = (a.cos(), a.sin());
                let tx = if c > 1e-12 {
                    (xmax - pose.x) / c
                } else if c < -1e-12 {
                    (xmin - pose.x) / c
                } else {
                    f64::INFINITY
                };
                let ty = if s > 1e-12 {
                    (ymax - pose.y) / s
                } else if s < -1e-12 {
                    (ymin - pose.y) / s
                } else {
                    f64::INFINITY
                };
                tx.min(ty).min(3.5)
            })
            .collect();
        LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: inc,
            range_max: 3.5,
            ranges,
        }
    }

    fn odom(pose: Pose2D) -> OdometryMsg {
        OdometryMsg {
            stamp: SimTime::EPOCH,
            pose,
            twist: Twist::STOP,
        }
    }

    #[test]
    fn converges_on_true_pose_when_stationary() {
        let map = room_map();
        let truth = Pose2D::new(3.0, 4.0, 0.0);
        let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(1));
        let mut out = None;
        for _ in 0..10 {
            out = Some(amcl.process(&odom(truth), &room_scan(truth)));
        }
        let out = out.unwrap();
        let err = out.pose.pose.distance(truth);
        assert!(err < 0.12, "localization error {err} m");
        assert!(out.spread < 0.2, "spread {}", out.spread);
    }

    #[test]
    fn population_shrinks_as_estimate_converges() {
        let map = room_map();
        let truth = Pose2D::new(3.0, 4.0, 0.0);
        let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(2));
        let n0 = amcl.num_particles();
        for _ in 0..15 {
            amcl.process(&odom(truth), &room_scan(truth));
        }
        assert!(
            amcl.num_particles() < n0,
            "adaptive sizing should shrink: {} → {}",
            n0,
            amcl.num_particles()
        );
        assert!(amcl.num_particles() >= AmclConfig::default().min_particles);
    }

    #[test]
    fn tracks_motion() {
        let map = room_map();
        let mut truth = Pose2D::new(2.5, 4.0, 0.0);
        let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(3));
        for _ in 0..20 {
            amcl.process(&odom(truth), &room_scan(truth));
            truth = Pose2D::new(truth.x + 0.04, truth.y, 0.0);
        }
        let err = amcl.mean_pose().distance(truth);
        assert!(err < 0.2, "tracking error {err} m");
    }

    #[test]
    fn work_is_light_compared_to_slam() {
        // Table II: with-map Localization is ~1 % of the workload.
        let map = room_map();
        let truth = Pose2D::new(3.0, 4.0, 0.0);
        let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(4));
        let mut out = amcl.process(&odom(truth), &room_scan(truth));
        // First update runs the full population — still modest.
        assert!(
            out.work.total_cycles() < 6.0e7,
            "cycles {}",
            out.work.total_cycles()
        );
        // Once converged and shrunk, ≈ 0.03 Gcycles/s at 5 Hz.
        for _ in 0..10 {
            out = amcl.process(&odom(truth), &room_scan(truth));
        }
        assert!(
            out.work.total_cycles() < 2.0e7,
            "converged cycles {}",
            out.work.total_cycles()
        );
    }

    #[test]
    fn survives_degenerate_scan() {
        let map = room_map();
        let truth = Pose2D::new(3.0, 4.0, 0.0);
        let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(5));
        let empty = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 0.1,
            range_max: 3.5,
            ranges: vec![3.5; 60],
        };
        let out = amcl.process(&odom(truth), &empty);
        assert!(out.pose.pose.x.is_finite());
        assert!(amcl.num_particles() >= AmclConfig::default().min_particles);
    }

    #[test]
    fn deterministic_for_seed() {
        let map = room_map();
        let truth = Pose2D::new(3.0, 4.0, 0.0);
        let run = || {
            let mut amcl = Amcl::new(AmclConfig::default(), &map, truth, SimRng::seed_from_u64(9));
            for _ in 0..5 {
                amcl.process(&odom(truth), &room_scan(truth));
            }
            amcl.mean_pose()
        };
        assert_eq!(run(), run());
    }
}
