//! Frontier-based exploration (the Exploration node).
//!
//! Yamauchi's classic algorithm (CIRA '97), as cited by the paper: a
//! *frontier* is a known-free cell adjacent to unknown space. Frontier
//! cells are clustered by connectivity; clusters below a minimum size
//! are noise; the goal is the centroid of the best cluster (nearest by
//! default). When no frontiers remain, the area is fully explored and
//! the mission is complete.

use lgv_types::prelude::*;
use std::collections::VecDeque;

/// Cycle-cost constants: Exploration is the lightest planning node
/// (Table II: 0.011 Gcycles without a map).
pub mod cost {
    /// Cycles per grid cell scanned for frontier detection.
    pub const CYCLES_PER_CELL_SCAN: f64 = 90.0;
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// Minimum cluster size (cells) to count as a real frontier.
    pub min_cluster: usize,
    /// Bias: prefer nearest cluster (`true`) or largest (`false`).
    pub prefer_nearest: bool,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            min_cluster: 8,
            prefer_nearest: true,
        }
    }
}

/// One exploration decision.
#[derive(Debug, Clone)]
pub struct FrontierOutput {
    /// Next goal, or `None` when the map is fully explored.
    pub goal: Option<GoalMsg>,
    /// Number of frontier clusters found (≥ min size).
    pub clusters: usize,
    /// Total frontier cells found.
    pub frontier_cells: usize,
    /// Cycle demand of this activation.
    pub work: Work,
}

/// The explorer.
#[derive(Debug, Clone, Default)]
pub struct FrontierExplorer {
    cfg: FrontierConfig,
}

impl FrontierExplorer {
    /// Build with config.
    pub fn new(cfg: FrontierConfig) -> Self {
        FrontierExplorer { cfg }
    }

    /// Pick the next exploration goal from the current map knowledge.
    pub fn select_goal(&self, map: &MapMsg, robot: Point2, stamp: SimTime) -> FrontierOutput {
        self.select_goal_excluding(map, robot, stamp, &[], 0.0)
    }

    /// Like [`FrontierExplorer::select_goal`], but skip clusters whose
    /// centroid lies within `excl_radius` of any excluded point —
    /// used by the mission Controller to blacklist frontiers that
    /// repeatedly proved unreachable.
    pub fn select_goal_excluding(
        &self,
        map: &MapMsg,
        robot: Point2,
        stamp: SimTime,
        excluded: &[Point2],
        excl_radius: f64,
    ) -> FrontierOutput {
        let dims = map.dims;
        let n = dims.len();
        let is_free = |i: usize| map.cells[i] == MapMsg::FREE;
        let is_unknown = |i: usize| map.cells[i] == MapMsg::UNKNOWN;

        // 1. Find frontier cells.
        let mut frontier = vec![false; n];
        let mut frontier_cells = 0usize;
        #[allow(clippy::needless_range_loop)] // index feeds dims.unflat
        for i in 0..n {
            if !is_free(i) {
                continue;
            }
            let idx = dims.unflat(i);
            let f = idx
                .neighbors4()
                .iter()
                .any(|nb| dims.contains(*nb) && is_unknown(dims.flat(*nb)));
            if f {
                frontier[i] = true;
                frontier_cells += 1;
            }
        }

        // 2. Cluster by 8-connectivity BFS. The goal candidate for a
        //    cluster is the frontier cell *nearest to the cluster's
        //    centroid*: a raw centroid collapses to the robot's own
        //    position for ring-shaped frontiers (an enclosing
        //    boundary), while the nearest-to-centroid cell is always a
        //    real frontier cell in the middle of the opening.
        let mut visited = vec![false; n];
        // (representative frontier cell, cluster size)
        let mut clusters: Vec<(Point2, usize)> = Vec::new();
        for i in 0..n {
            if !frontier[i] || visited[i] {
                continue;
            }
            let mut queue = VecDeque::from([i]);
            visited[i] = true;
            let mut members: Vec<Point2> = Vec::new();
            let mut sx = 0.0;
            let mut sy = 0.0;
            while let Some(j) = queue.pop_front() {
                let p = dims.grid_to_world(dims.unflat(j));
                sx += p.x;
                sy += p.y;
                members.push(p);
                for nb in dims.unflat(j).neighbors8() {
                    if dims.contains(nb) {
                        let nf = dims.flat(nb);
                        if frontier[nf] && !visited[nf] {
                            visited[nf] = true;
                            queue.push_back(nf);
                        }
                    }
                }
            }
            if members.len() >= self.cfg.min_cluster {
                let centroid = Point2::new(sx / members.len() as f64, sy / members.len() as f64);
                let rep = members
                    .iter()
                    .min_by(|a, b| a.distance(centroid).total_cmp(&b.distance(centroid)))
                    .copied()
                    .unwrap();
                clusters.push((rep, members.len()));
            }
        }

        // 3. Pick the target cluster (skipping blacklisted regions).
        clusters.retain(|(c, _)| !excluded.iter().any(|e| e.distance(*c) <= excl_radius));
        let target = if self.cfg.prefer_nearest {
            clusters
                .iter()
                .min_by(|a, b| robot.distance(a.0).total_cmp(&robot.distance(b.0)))
        } else {
            clusters.iter().max_by_key(|c| c.1)
        };

        let work = Work::serial(n as f64 * cost::CYCLES_PER_CELL_SCAN);
        FrontierOutput {
            goal: target.map(|(c, _)| GoalMsg { stamp, target: *c }),
            clusters: clusters.len(),
            frontier_cells,
            work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A map whose left half is free, right half unknown: the frontier
    /// is the vertical boundary.
    fn half_known() -> MapMsg {
        let dims = GridDims::new(60, 40, 0.1, Point2::ORIGIN);
        let mut cells = vec![MapMsg::UNKNOWN; dims.len()];
        for row in 0..40 {
            for col in 0..30 {
                cells[row * 60 + col] = MapMsg::FREE;
            }
        }
        MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells,
        }
    }

    #[test]
    fn finds_boundary_frontier() {
        let e = FrontierExplorer::default();
        let out = e.select_goal(&half_known(), Point2::new(1.0, 2.0), SimTime::EPOCH);
        assert!(
            out.frontier_cells >= 40,
            "boundary column: {}",
            out.frontier_cells
        );
        assert_eq!(out.clusters, 1);
        let goal = out.goal.expect("frontier goal");
        // Centroid near x = 2.95, mid-height y ≈ 2.0.
        assert!((goal.target.x - 2.95).abs() < 0.1, "x {}", goal.target.x);
        assert!((goal.target.y - 2.0).abs() < 0.2, "y {}", goal.target.y);
    }

    #[test]
    fn fully_explored_returns_none() {
        let dims = GridDims::new(30, 30, 0.1, Point2::ORIGIN);
        let map = MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells: vec![MapMsg::FREE; dims.len()],
        };
        let e = FrontierExplorer::default();
        let out = e.select_goal(&map, Point2::new(1.0, 1.0), SimTime::EPOCH);
        assert!(out.goal.is_none());
        assert_eq!(out.frontier_cells, 0);
    }

    #[test]
    fn occupied_cells_are_not_frontiers() {
        let mut map = half_known();
        // Wall along the boundary: frontier disappears behind it.
        for row in 0..40 {
            map.cells[row * 60 + 29] = MapMsg::OCCUPIED;
        }
        let e = FrontierExplorer::default();
        let out = e.select_goal(&map, Point2::new(1.0, 2.0), SimTime::EPOCH);
        assert!(out.goal.is_none(), "wall blocks the frontier");
    }

    #[test]
    fn small_clusters_are_noise() {
        let dims = GridDims::new(30, 30, 0.1, Point2::ORIGIN);
        let mut cells = vec![MapMsg::FREE; dims.len()];
        // A single unknown cell in the middle: 4 frontier neighbours,
        // below the min-cluster threshold of 8.
        cells[15 * 30 + 15] = MapMsg::UNKNOWN;
        let map = MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells,
        };
        let e = FrontierExplorer::default();
        let out = e.select_goal(&map, Point2::new(1.0, 1.0), SimTime::EPOCH);
        assert!(out.goal.is_none());
        assert!(out.frontier_cells > 0);
        assert_eq!(out.clusters, 0);
    }

    #[test]
    fn nearest_cluster_preferred() {
        let dims = GridDims::new(60, 20, 0.1, Point2::ORIGIN);
        let mut cells = vec![MapMsg::FREE; dims.len()];
        // Two unknown regions: columns 0..6 (near) and 54..60 (far).
        for row in 0..20 {
            for col in 0..6 {
                cells[row * 60 + col] = MapMsg::UNKNOWN;
            }
            for col in 54..60 {
                cells[row * 60 + col] = MapMsg::UNKNOWN;
            }
        }
        let map = MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells,
        };
        let e = FrontierExplorer::default();
        let robot = Point2::new(1.5, 1.0);
        let out = e.select_goal(&map, robot, SimTime::EPOCH);
        assert_eq!(out.clusters, 2);
        let goal = out.goal.unwrap().target;
        assert!(
            goal.x < 3.0,
            "nearest frontier is on the left, got {goal:?}"
        );
    }

    #[test]
    fn work_scales_with_map_size() {
        let e = FrontierExplorer::default();
        let small = half_known();
        let dims = GridDims::new(240, 160, 0.1, Point2::ORIGIN);
        let large = MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells: vec![MapMsg::FREE; dims.len()],
        };
        let ws = e.select_goal(&small, Point2::ORIGIN, SimTime::EPOCH).work;
        let wl = e.select_goal(&large, Point2::ORIGIN, SimTime::EPOCH).work;
        assert!(wl.total_cycles() > 10.0 * ws.total_cycles());
    }
}
