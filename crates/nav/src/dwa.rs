//! Dynamic-Window / Trajectory-Rollout local planner (PathTracking).
//!
//! Exactly the structure the paper accelerates (Fig. 5): sample a
//! window of admissible `(v, w)` pairs around the current velocity,
//! forward-simulate each candidate trajectory, score it on path
//! adherence / goal progress / obstacle clearance / oscillation,
//! discard colliding candidates, and emit the velocity of the best
//! survivor. The scoring loop is the "sequentially performed
//! duplicated scoring work" the paper parallelizes; we distribute the
//! `M` trajectories over `N` threads with the same [`ParallelExecutor`]
//! SLAM uses.

use crate::costmap::Costmap;
use lgv_slam::pool::ParallelExecutor;
use lgv_types::prelude::*;

/// Cycle-cost constants: calibrated so the default navigation
/// configuration draws ≈ 1.39 Gcycles/s (Table II, PathTracking) at
/// the 5 Hz control rate.
pub mod cost {
    /// Cycles per forward-simulation step of one trajectory (pose
    /// integration + footprint cost lookups + partial scores).
    pub const CYCLES_PER_TRAJ_STEP: f64 = 18_000.0;
    /// Serial cycles per activation (window computation, reduction).
    pub const CYCLES_SERIAL_BASE: f64 = 2.0e6;
}

/// DWA configuration.
#[derive(Debug, Clone)]
pub struct DwaConfig {
    /// Linear velocity bounds (m/s).
    pub max_linear: f64,
    /// Angular velocity bound (rad/s).
    pub max_angular: f64,
    /// Linear acceleration bound (m/s²).
    pub max_lin_accel: f64,
    /// Angular acceleration bound (rad/s²).
    pub max_ang_accel: f64,
    /// Number of sampled trajectories `M` (the paper sweeps
    /// 100–2000 in Fig. 10). Split ≈ 1:3 between linear and angular
    /// sample axes.
    pub samples: u32,
    /// Forward-simulation horizon (s).
    pub sim_horizon: f64,
    /// Forward-simulation step (s).
    pub sim_dt: f64,
    /// Robot footprint radius (m).
    pub footprint_radius: f64,
    /// Score weight: distance to the global path.
    pub w_path: f64,
    /// Score weight: progress towards the goal.
    pub w_goal: f64,
    /// Score weight: obstacle clearance.
    pub w_clear: f64,
    /// Score weight: velocity magnitude (favours making progress).
    pub w_speed: f64,
    /// Carrot lookahead distance along the global path (m). Progress
    /// is scored towards this local target, not the final goal —
    /// otherwise trajectories can "hover" beside the path at places
    /// where following it momentarily increases the Euclidean goal
    /// distance (doorways, switchbacks).
    pub lookahead: f64,
    /// Thread count `N` for parallel scoring.
    pub threads: usize,
}

impl Default for DwaConfig {
    fn default() -> Self {
        DwaConfig {
            max_linear: 0.22,
            max_angular: 2.84,
            max_lin_accel: 2.5,
            max_ang_accel: 3.2,
            samples: 400,
            sim_horizon: 1.6,
            sim_dt: 0.1,
            footprint_radius: 0.11,
            w_path: 0.8,
            w_goal: 1.2,
            w_clear: 0.4,
            w_speed: 0.3,
            lookahead: 0.9,
            threads: 1,
        }
    }
}

/// One PathTracking activation's output.
#[derive(Debug, Clone)]
pub struct DwaResult {
    /// Best velocity command (STOP when nothing is feasible).
    pub twist: Twist,
    /// Best trajectory score (NaN-free; −∞ when none feasible).
    pub score: f64,
    /// Trajectories simulated.
    pub evaluated: u32,
    /// Trajectories discarded for collision.
    pub discarded: u32,
    /// Cycle demand of this activation.
    pub work: Work,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    v: f64,
    w: f64,
    score: f64,
    feasible: bool,
    steps: u32,
}

/// The local planner.
#[derive(Debug)]
pub struct DwaPlanner {
    cfg: DwaConfig,
    executor: ParallelExecutor,
    /// Previous command (dynamic-window centre).
    last: Twist,
}

impl DwaPlanner {
    /// Build with config.
    pub fn new(cfg: DwaConfig) -> Self {
        let executor = ParallelExecutor::new(cfg.threads);
        DwaPlanner {
            cfg,
            executor,
            last: Twist::STOP,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &DwaConfig {
        &self.cfg
    }

    /// Change the parallelism degree at runtime.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
        self.executor = ParallelExecutor::new(self.cfg.threads);
    }

    /// Cap the linear velocity (the Controller applies Eq. 2c's
    /// `velocityOA` here).
    pub fn set_max_linear(&mut self, v: f64) {
        self.cfg.max_linear = v.clamp(0.0, 0.22_f64.max(v));
    }

    /// Cap the angular velocity. The Controller scales this with the
    /// pipeline reaction time: a command that will be executed
    /// open-loop for the whole VDP makespan must not rotate the robot
    /// past its heading-error budget (the rotational analogue of
    /// Eq. 2c).
    pub fn set_max_angular(&mut self, w: f64) {
        self.cfg.max_angular = w.max(0.1);
    }

    /// Set the trajectory-sample budget `M` (clamped to ≥ 12 so the
    /// sample grid keeps both axes). Degraded-mode autonomy lowers
    /// this to keep the local pipeline inside the control deadline;
    /// the config value is read fresh each [`DwaPlanner::compute`], so
    /// the change takes effect on the next activation.
    pub fn set_samples(&mut self, samples: u32) {
        self.cfg.samples = samples.max(12);
    }

    /// Reset the dynamic-window centre (e.g. after a teleport or when
    /// tracking restarts).
    pub fn reset(&mut self) {
        self.last = Twist::STOP;
    }

    /// Compute a velocity command.
    ///
    /// * `pose` — current estimated pose;
    /// * `path` — global plan to follow;
    /// * `goal` — final goal (for progress scoring);
    /// * `cm` — current costmap.
    pub fn compute(
        &mut self,
        cm: &Costmap,
        pose: Pose2D,
        path: &PathMsg,
        goal: Point2,
    ) -> DwaResult {
        let cfg = &self.cfg;
        let dt_cycle = 0.2; // command period the window opens over (5 Hz)
        let v_lo = (self.last.linear - cfg.max_lin_accel * dt_cycle).max(0.0);
        let v_hi = (self.last.linear + cfg.max_lin_accel * dt_cycle).min(cfg.max_linear);
        let w_lo = (self.last.angular - cfg.max_ang_accel * dt_cycle).max(-cfg.max_angular);
        let w_hi = (self.last.angular + cfg.max_ang_accel * dt_cycle).min(cfg.max_angular);

        // Sample grid: keep samples ≈ nv × nw with nw ≈ 3 nv.
        let nv = ((cfg.samples as f64 / 3.0).sqrt().round() as u32).max(2);
        let nw = (cfg.samples / nv).max(2);
        let mut candidates: Vec<Candidate> = Vec::with_capacity((nv * nw) as usize);
        for i in 0..nv {
            let v = v_lo + (v_hi - v_lo) * i as f64 / (nv - 1) as f64;
            for j in 0..nw {
                let w = w_lo + (w_hi - w_lo) * j as f64 / (nw - 1) as f64;
                candidates.push(Candidate {
                    v,
                    w,
                    score: f64::NEG_INFINITY,
                    feasible: false,
                    steps: 0,
                });
            }
        }

        // Local target: a carrot on the global path ~lookahead ahead
        // of the robot's projection (falls back to the final goal).
        let target = carrot_point(path, pose.position(), cfg.lookahead, goal);

        // Parallel scoring (paper Fig. 5): each thread takes a chunk.
        let steps = (cfg.sim_horizon / cfg.sim_dt).round() as u32;
        let cfg_ref = &self.cfg;
        self.executor.run_chunks(&mut candidates, |chunk| {
            for c in chunk.iter_mut() {
                *c = score_trajectory(cfg_ref, cm, pose, path, target, c.v, c.w, steps);
            }
        });

        let evaluated = candidates.len() as u32;
        let discarded = candidates.iter().filter(|c| !c.feasible).count() as u32;
        let total_steps: u64 = candidates.iter().map(|c| c.steps as u64).sum();

        let best = candidates
            .iter()
            .filter(|c| c.feasible)
            .max_by(|a, b| a.score.total_cmp(&b.score));

        let twist = match best {
            Some(c) => Twist::new(c.v, c.w),
            None => {
                // Nothing feasible: rotate in place towards the path.
                Twist::new(0.0, cfg.max_angular * 0.3)
            }
        };
        self.last = twist;

        let work = Work::with_parallel(
            cost::CYCLES_SERIAL_BASE,
            total_steps as f64 * cost::CYCLES_PER_TRAJ_STEP,
            evaluated,
        );
        DwaResult {
            twist,
            score: best.map_or(f64::NEG_INFINITY, |c| c.score),
            evaluated,
            discarded,
            work,
        }
    }
}

/// Forward-simulate one `(v, w)` candidate and score it.
#[allow(clippy::too_many_arguments)]
fn score_trajectory(
    cfg: &DwaConfig,
    cm: &Costmap,
    pose: Pose2D,
    path: &PathMsg,
    goal: Point2,
    v: f64,
    w: f64,
    steps: u32,
) -> Candidate {
    let mut p = pose;
    let mut min_clearance = f64::INFINITY;
    let mut executed = 0u32;
    for _ in 0..steps {
        p = p.integrate(Twist::new(v, w), cfg.sim_dt);
        executed += 1;
        if cm.footprint_collides(p.position(), cfg.footprint_radius) {
            return Candidate {
                v,
                w,
                score: f64::NEG_INFINITY,
                feasible: false,
                steps: executed,
            };
        }
        let c = cm.cost(cm.dims().world_to_grid(p.position()));
        min_clearance = min_clearance.min(1.0 - c.min(253) as f64 / 253.0);
    }

    let end = p.position();
    let path_dist = nearest_path_distance(path, end);
    let goal_dist = end.distance(goal);
    let start_goal_dist = pose.position().distance(goal);
    let progress = start_goal_dist - goal_dist;

    let score = -cfg.w_path * path_dist
        + cfg.w_goal * progress
        + cfg.w_clear * min_clearance.clamp(0.0, 1.0)
        + cfg.w_speed * (v / cfg.max_linear.max(1e-9));
    Candidate {
        v,
        w,
        score,
        feasible: true,
        steps: executed,
    }
}

/// A "carrot" target: project `p` onto the path, then walk
/// `lookahead` metres further along it. Returns `fallback` when the
/// path is degenerate.
fn carrot_point(path: &PathMsg, p: Point2, lookahead: f64, fallback: Point2) -> Point2 {
    let wps = &path.waypoints;
    if wps.len() < 2 {
        return fallback;
    }
    // Closest segment and the projected point on it.
    let mut best = (0usize, wps[0], f64::INFINITY);
    for i in 0..wps.len() - 1 {
        let (a, b) = (wps[i], wps[i + 1]);
        let ab = b - a;
        let denom = ab.norm_sq();
        let t = if denom < 1e-12 {
            0.0
        } else {
            ((p - a).dot(ab) / denom).clamp(0.0, 1.0)
        };
        let q = a.lerp(b, t);
        let d = p.distance(q);
        if d < best.2 {
            best = (i, q, d);
        }
    }
    // Walk forward along the remaining path.
    let (mut i, mut cur, _) = best;
    let mut remaining = lookahead;
    loop {
        let seg_end = wps[i + 1];
        let d = cur.distance(seg_end);
        if remaining <= d || d < 1e-12 {
            if d < 1e-12 {
                return seg_end;
            }
            return cur.lerp(seg_end, remaining / d);
        }
        remaining -= d;
        cur = seg_end;
        i += 1;
        if i + 1 >= wps.len() {
            return *wps.last().unwrap();
        }
    }
}

/// Distance from a point to the closest waypoint segment of the path.
fn nearest_path_distance(path: &PathMsg, p: Point2) -> f64 {
    if path.waypoints.is_empty() {
        return 0.0;
    }
    if path.waypoints.len() == 1 {
        return p.distance(path.waypoints[0]);
    }
    path.waypoints
        .windows(2)
        .map(|seg| point_segment_distance(p, seg[0], seg[1]))
        .fold(f64::INFINITY, f64::min)
}

fn point_segment_distance(p: Point2, a: Point2, b: Point2) -> f64 {
    let ab = b - a;
    let denom = ab.norm_sq();
    if denom < 1e-12 {
        return p.distance(a);
    }
    let t = ((p - a).dot(ab) / denom).clamp(0.0, 1.0);
    p.distance(a.lerp(b, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmap::CostmapConfig;

    fn open_map(w: u32, h: u32) -> MapMsg {
        MapMsg {
            stamp: SimTime::EPOCH,
            dims: GridDims::new(w, h, 0.05, Point2::ORIGIN),
            cells: vec![MapMsg::FREE; (w * h) as usize],
        }
    }

    fn straight_path(y: f64) -> PathMsg {
        PathMsg {
            stamp: SimTime::EPOCH,
            waypoints: vec![Point2::new(1.0, y), Point2::new(5.0, y)],
        }
    }

    #[test]
    fn drives_towards_goal_in_open_space() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        let r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        assert!(
            r.twist.linear > 0.05,
            "should move forward, got {:?}",
            r.twist
        );
        assert!(
            r.twist.angular.abs() < 1.0,
            "roughly straight, got {:?}",
            r.twist
        );
        assert!(r.score > f64::NEG_INFINITY);
        assert_eq!(r.discarded, 0);
    }

    #[test]
    fn avoids_obstacle_ahead() {
        let mut m = open_map(120, 120);
        // Wall segment directly ahead at x ≈ 1.8, y ∈ [1.5, 2.5].
        for row in 30..=50 {
            m.cells[row * 120 + 36] = MapMsg::OCCUPIED;
        }
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        // Close enough that full-speed candidates reach the inflated
        // wall within the simulation horizon.
        let pose = Pose2D::new(1.45, 2.0, 0.0);
        let r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        assert!(
            r.discarded > 0,
            "straight-ahead candidates must be discarded"
        );
        // The chosen command curves or slows rather than ramming.
        let end = {
            let mut p = pose;
            for _ in 0..16 {
                p = p.integrate(r.twist, 0.1);
            }
            p.position()
        };
        assert!(
            !cm.footprint_collides(end, 0.11),
            "chosen trajectory endpoint collides: {end:?}"
        );
    }

    #[test]
    fn fully_blocked_returns_recovery_rotation() {
        let mut m = open_map(60, 60);
        // Box the robot in tightly.
        for row in 0..60 {
            for col in 0..60 {
                let x = col as f64 * 0.05;
                let y = row as f64 * 0.05;
                let dx = (x - 1.5f64).abs();
                let dy = (y - 1.5f64).abs();
                if dx.max(dy) > 0.15 && dx.max(dy) < 0.3 {
                    m.cells[row * 60 + col] = MapMsg::OCCUPIED;
                }
            }
        }
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        let pose = Pose2D::new(1.5, 1.5, 0.0);
        let r = dwa.compute(&cm, pose, &straight_path(1.5), Point2::new(2.5, 1.5));
        assert_eq!(r.twist.linear, 0.0, "boxed in: no forward motion");
        assert!(r.twist.angular != 0.0, "recovery rotation expected");
    }

    #[test]
    fn respects_velocity_cap() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        dwa.set_max_linear(0.05);
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        // Run a few cycles so the window converges upward.
        let mut r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        for _ in 0..5 {
            r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        }
        assert!(
            r.twist.linear <= 0.05 + 1e-9,
            "cap violated: {}",
            r.twist.linear
        );
    }

    #[test]
    fn window_limits_acceleration() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        let r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        // From rest, one 0.2 s window at 2.5 m/s² allows ≤ 0.5 m/s
        // (and the hard cap is 0.22).
        assert!(r.twist.linear <= 0.22 + 1e-9);
    }

    #[test]
    fn work_scales_with_samples() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        let mut small = DwaPlanner::new(DwaConfig {
            samples: 100,
            ..Default::default()
        });
        let mut large = DwaPlanner::new(DwaConfig {
            samples: 2000,
            ..Default::default()
        });
        let ws = small
            .compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0))
            .work;
        let wl = large
            .compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0))
            .work;
        let ratio = wl.parallel_cycles / ws.parallel_cycles;
        assert!(ratio > 10.0, "work should scale ≈ 20×, got {ratio}");
        assert!(wl.parallel_items >= 1500);
    }

    #[test]
    fn set_samples_shrinks_work_on_the_next_activation() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        let mut dwa = DwaPlanner::new(DwaConfig::default());
        let full = dwa
            .compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0))
            .work;
        dwa.set_samples(60);
        let degraded = dwa
            .compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0))
            .work;
        assert!(degraded.parallel_items < full.parallel_items / 3);
        // Restore to the configured default.
        dwa.set_samples(400);
        let restored = dwa
            .compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0))
            .work;
        assert_eq!(restored.parallel_items, full.parallel_items);
        // Floor keeps both sample axes alive.
        dwa.set_samples(1);
        assert_eq!(dwa.config().samples, 12);
    }

    #[test]
    fn parallel_equals_serial() {
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(120, 120));
        let pose = Pose2D::new(1.0, 2.0, 0.3);
        let run = |threads: usize| {
            let mut dwa = DwaPlanner::new(DwaConfig {
                threads,
                ..Default::default()
            });
            dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.5))
                .twist
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn table2_pathtracking_cycle_anchor() {
        // Default config at 5 Hz should land near 1.39 Gcycles/s
        // (Table II, PathTracking with a map): ≈ 0.28 G per activation.
        let cm = Costmap::from_map(CostmapConfig::default(), &open_map(240, 200));
        let mut dwa = DwaPlanner::new(DwaConfig {
            samples: 1000,
            ..Default::default()
        });
        let pose = Pose2D::new(1.0, 2.0, 0.0);
        let r = dwa.compute(&cm, pose, &straight_path(2.0), Point2::new(5.0, 2.0));
        let g = r.work.total_cycles() / 1e9;
        assert!((0.15..0.45).contains(&g), "per-activation Gcycles {g}");
    }

    #[test]
    fn nearest_path_distance_math() {
        let path = straight_path(2.0);
        assert!((nearest_path_distance(&path, Point2::new(3.0, 2.5)) - 0.5).abs() < 1e-9);
        assert!((nearest_path_distance(&path, Point2::new(0.0, 2.0)) - 1.0).abs() < 1e-9);
        let empty = PathMsg {
            stamp: SimTime::EPOCH,
            waypoints: vec![],
        };
        assert_eq!(nearest_path_distance(&empty, Point2::new(1.0, 1.0)), 0.0);
    }
}
