//! Priority-based velocity multiplexer (the VelocityMux node).
//!
//! Modelled on Yujin Robot's `yocs_cmd_vel_mux`, the implementation
//! the paper uses: each velocity source has a priority and a timeout;
//! the multiplexer forwards the highest-priority source that has
//! published recently, falling back to a stop command when everything
//! has expired. It is the last hop of the VDP (Fig. 2, node 7) and
//! computationally negligible (Table II lists no cycles for it).

use lgv_types::prelude::*;
use std::collections::HashMap;

/// Multiplexer configuration.
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// A source's command expires after this long without refresh.
    pub timeout: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            timeout: Duration::from_millis(600),
        }
    }
}

/// The multiplexer.
#[derive(Debug, Clone)]
pub struct VelocityMux {
    cfg: MuxConfig,
    latest: HashMap<VelocitySource, VelocityCmd>,
}

impl VelocityMux {
    /// Build with config.
    pub fn new(cfg: MuxConfig) -> Self {
        VelocityMux {
            cfg,
            latest: HashMap::new(),
        }
    }

    /// Adjust the staleness timeout at runtime (the mission Controller
    /// tracks the VDP makespan: a slow pipeline legitimately delivers
    /// commands at a lower rate).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.cfg.timeout = timeout;
    }

    /// Accept a command from a source.
    pub fn submit(&mut self, cmd: VelocityCmd) {
        self.latest.insert(cmd.source, cmd);
    }

    /// Select the active command at `now`: the freshest command of the
    /// highest-priority non-expired source. Returns a STOP command
    /// (Navigation-sourced) when everything has expired.
    pub fn select(&mut self, now: SimTime) -> VelocityCmd {
        // Evict expired entries.
        let timeout = self.cfg.timeout;
        self.latest
            .retain(|_, c| now.saturating_since(c.stamp) <= timeout);

        let best = self.latest.values().max_by_key(|c| c.source).copied();
        best.unwrap_or(VelocityCmd {
            stamp: now,
            twist: Twist::STOP,
            source: VelocitySource::Navigation,
        })
    }

    /// The per-activation cycle demand (constant and tiny).
    pub fn work(&self) -> Work {
        Work::serial(5_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(ms: u64, v: f64, source: VelocitySource) -> VelocityCmd {
        VelocityCmd {
            stamp: SimTime::EPOCH + Duration::from_millis(ms),
            twist: Twist::new(v, 0.0),
            source,
        }
    }

    #[test]
    fn forwards_single_source() {
        let mut mux = VelocityMux::new(MuxConfig::default());
        mux.submit(cmd(0, 0.2, VelocitySource::Navigation));
        let out = mux.select(SimTime::EPOCH + Duration::from_millis(100));
        assert_eq!(out.twist.linear, 0.2);
        assert_eq!(out.source, VelocitySource::Navigation);
    }

    #[test]
    fn higher_priority_wins() {
        let mut mux = VelocityMux::new(MuxConfig::default());
        mux.submit(cmd(0, 0.2, VelocitySource::Navigation));
        mux.submit(cmd(10, 0.0, VelocitySource::SafetyController));
        mux.submit(cmd(5, 0.1, VelocitySource::Joystick));
        let out = mux.select(SimTime::EPOCH + Duration::from_millis(100));
        assert_eq!(out.source, VelocitySource::SafetyController);
        assert_eq!(out.twist, Twist::STOP);
    }

    #[test]
    fn expired_source_falls_through() {
        let mut mux = VelocityMux::new(MuxConfig::default());
        mux.submit(cmd(0, 0.0, VelocitySource::SafetyController));
        mux.submit(cmd(800, 0.2, VelocitySource::Navigation));
        // At t=1s the safety command (stamped t=0) has expired.
        let out = mux.select(SimTime::EPOCH + Duration::from_millis(1000));
        assert_eq!(out.source, VelocitySource::Navigation);
        assert_eq!(out.twist.linear, 0.2);
    }

    #[test]
    fn all_expired_yields_stop() {
        let mut mux = VelocityMux::new(MuxConfig::default());
        mux.submit(cmd(0, 0.2, VelocitySource::Navigation));
        let out = mux.select(SimTime::EPOCH + Duration::from_secs(5));
        assert!(out.twist.is_stop());
    }

    #[test]
    fn refresh_keeps_source_alive() {
        let mut mux = VelocityMux::new(MuxConfig::default());
        for k in 0..10 {
            mux.submit(cmd(k * 200, 0.15, VelocitySource::Navigation));
        }
        let out = mux.select(SimTime::EPOCH + Duration::from_millis(2000));
        assert_eq!(out.twist.linear, 0.15);
    }

    #[test]
    fn work_is_negligible() {
        let mux = VelocityMux::new(MuxConfig::default());
        assert!(mux.work().total_cycles() < 1e5);
    }
}
