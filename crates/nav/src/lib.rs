//! # lgv-nav
//!
//! The navigation stack of the standard LGV pipeline (paper Fig. 2),
//! implemented from scratch:
//!
//! * [`costmap`] — a multi-layer costmap (static, obstacle, inflation),
//!   the CostmapGen node and the heaviest member of the VDP.
//! * [`amcl`] — adaptive Monte Carlo localization for the known-map
//!   workload.
//! * [`global_planner`] — Dijkstra and A* global planners over the
//!   costmap (the PathPlanning node).
//! * [`dwa`] — Dynamic-Window / Trajectory-Rollout local planner (the
//!   PathTracking node), with the paper's parallel trajectory scoring
//!   (Fig. 5).
//! * [`frontier`] — frontier-based exploration goal selection
//!   (Yamauchi '97), the Exploration node.
//! * [`velocity_mux`] — priority-based velocity multiplexer.

//! ## Example: plan a path on a costmap
//!
//! ```
//! use lgv_nav::costmap::{Costmap, CostmapConfig};
//! use lgv_nav::global_planner::{GlobalPlanner, PlannerConfig};
//! use lgv_types::prelude::*;
//!
//! // An empty 6 × 6 m map.
//! let dims = GridDims::new(120, 120, 0.05, Point2::ORIGIN);
//! let map = MapMsg { stamp: SimTime::EPOCH, dims, cells: vec![MapMsg::FREE; dims.len()] };
//! let cm = Costmap::from_map(CostmapConfig::default(), &map);
//!
//! let planner = GlobalPlanner::new(PlannerConfig::default());
//! let plan = planner
//!     .plan(&cm, Point2::new(0.5, 0.5), Point2::new(5.0, 5.0), SimTime::EPOCH)
//!     .unwrap();
//! assert!(plan.path.length() >= 6.3); // at least the straight-line distance
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod amcl;
pub mod costmap;
pub mod dwa;
pub mod frontier;
pub mod global_planner;
pub mod velocity_mux;

pub use amcl::{Amcl, AmclConfig};
pub use costmap::{Costmap, CostmapConfig, COST_LETHAL};
pub use dwa::{DwaConfig, DwaPlanner, DwaResult};
pub use frontier::{FrontierConfig, FrontierExplorer};
pub use global_planner::{GlobalPlanner, PlannerAlgorithm, PlannerConfig};
pub use velocity_mux::{MuxConfig, VelocityMux};
