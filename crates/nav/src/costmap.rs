//! Multi-layer costmap (the CostmapGen node).
//!
//! Mirrors ROS `costmap_2d`: a static layer seeded from the map, an
//! obstacle layer maintained from laser scans (mark hits, ray-clear
//! free space), and an inflation layer spreading cost outward from
//! lethal cells so planners keep clearance. CostmapGen is both an ECN
//! and the first node of the VDP (paper Table II / Fig. 4), so its
//! cycle accounting matters: the per-update work is dominated by the
//! full-grid inflation pass.

use lgv_types::prelude::*;

/// Cost of a lethal (obstacle) cell.
pub const COST_LETHAL: u8 = 254;
/// Cost of a cell inside the inscribed radius of an obstacle.
pub const COST_INSCRIBED: u8 = 253;
/// Largest cost considered traversable by planners.
pub const COST_FREE_MAX: u8 = 127;
/// Cost assigned to completely unknown cells.
pub const COST_UNKNOWN: u8 = 128;

/// Cycle-cost constants for the costmap work model, calibrated so the
/// lab-map navigation workload draws ≈ 0.86 Gcycles/s (Table II,
/// CostmapGen with a map) at the 5 Hz update rate.
pub mod cost {
    /// Cycles per cell touched in the inflation/refresh pass.
    pub const CYCLES_PER_REFRESH_CELL: f64 = 3200.0;
    /// Cycles per cell traced by the obstacle layer's ray clearing.
    pub const CYCLES_PER_RAY_CELL: f64 = 220.0;
}

/// Costmap configuration.
#[derive(Debug, Clone)]
pub struct CostmapConfig {
    /// Robot (inscribed) radius in metres.
    pub inscribed_radius: f64,
    /// Inflation radius in metres (cost decays to zero here).
    pub inflation_radius: f64,
    /// Exponential decay rate of inflated cost.
    pub cost_scaling: f64,
    /// Obstacle persistence: marks older than this many updates decay.
    pub mark_ttl_updates: u32,
}

impl Default for CostmapConfig {
    fn default() -> Self {
        CostmapConfig {
            inscribed_radius: 0.11,
            inflation_radius: 0.45,
            cost_scaling: 8.0,
            mark_ttl_updates: 25,
        }
    }
}

/// The multi-layer costmap.
#[derive(Debug, Clone)]
pub struct Costmap {
    cfg: CostmapConfig,
    dims: GridDims,
    /// Static layer: lethal where the a-priori map is occupied.
    static_lethal: Vec<bool>,
    /// Obstacle layer: update index when each cell was last marked
    /// (0 = never).
    marked_at: Vec<u32>,
    /// Combined + inflated master grid.
    master: Vec<u8>,
    updates: u32,
}

impl Costmap {
    /// Build from a static map message (all `OCCUPIED` cells become
    /// lethal; `UNKNOWN` stays unknown until observed).
    pub fn from_map(cfg: CostmapConfig, map: &MapMsg) -> Self {
        let dims = map.dims;
        let static_lethal = map.cells.iter().map(|&c| c == MapMsg::OCCUPIED).collect();
        let mut cm = Costmap {
            cfg,
            dims,
            static_lethal,
            marked_at: vec![0; dims.len()],
            master: vec![COST_UNKNOWN; dims.len()],
            updates: 0,
        };
        let mut meter = WorkMeter::new();
        cm.refresh(map, None, &mut meter);
        cm
    }

    /// Build over an empty (all-unknown) static layer, for the
    /// exploration workload where SLAM supplies the map incrementally.
    pub fn empty(cfg: CostmapConfig, dims: GridDims) -> Self {
        Costmap {
            cfg,
            dims,
            static_lethal: vec![false; dims.len()],
            marked_at: vec![0; dims.len()],
            master: vec![COST_UNKNOWN; dims.len()],
            updates: 0,
        }
    }

    /// Grid geometry.
    pub fn dims(&self) -> &GridDims {
        &self.dims
    }

    /// Master-grid cost of a cell; out of bounds is lethal.
    pub fn cost(&self, idx: GridIndex) -> u8 {
        if self.dims.contains(idx) {
            self.master[self.dims.flat(idx)]
        } else {
            COST_LETHAL
        }
    }

    /// Is the cell traversable for planning (known and sub-inscribed)?
    pub fn traversable(&self, idx: GridIndex) -> bool {
        let c = self.cost(idx);
        c < COST_INSCRIBED && c != COST_UNKNOWN
    }

    /// Is the disc of radius `r` centred at `p` in collision with a
    /// lethal cell (used for trajectory feasibility)?
    pub fn footprint_collides(&self, p: Point2, r: f64) -> bool {
        let lo = self.dims.world_to_grid(Point2::new(p.x - r, p.y - r));
        let hi = self.dims.world_to_grid(Point2::new(p.x + r, p.y + r));
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                let idx = GridIndex::new(col, row);
                if self.cost(idx) >= COST_INSCRIBED {
                    let c = self.dims.grid_to_world(idx);
                    if c.distance(p) <= r + self.dims.resolution * 0.71 {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Replace the static layer (exploration: SLAM publishes a fresh
    /// map).
    pub fn set_static_map(&mut self, map: &MapMsg) {
        assert_eq!(map.dims, self.dims, "map geometry must match");
        for (dst, &c) in self.static_lethal.iter_mut().zip(&map.cells) {
            *dst = c == MapMsg::OCCUPIED;
        }
    }

    /// Update the obstacle layer from a scan taken at `pose`, then
    /// rebuild the master grid (static ∪ obstacles, inflated). This is
    /// one CostmapGen activation; `map` is the current known map used
    /// to distinguish free from unknown.
    pub fn update(&mut self, map: &MapMsg, pose: Pose2D, scan: &LaserScan, meter: &mut WorkMeter) {
        self.updates += 1;
        let origin = pose.position();
        let mut ray_cells = 0u64;
        for i in 0..scan.len() {
            let endpoint = scan.beam_endpoint(pose, i);
            let end_cell = self.dims.world_to_grid(endpoint);
            // Clear along the beam.
            for cell in GridRay::new(&self.dims, origin, endpoint) {
                ray_cells += 1;
                if cell == end_cell {
                    break;
                }
                if self.dims.contains(cell) {
                    let flat = self.dims.flat(cell);
                    self.marked_at[flat] = 0;
                }
            }
            // Mark the hit.
            if scan.is_hit(i) && self.dims.contains(end_cell) {
                let flat = self.dims.flat(end_cell);
                self.marked_at[flat] = self.updates;
            }
        }
        meter.serial_ops(ray_cells, cost::CYCLES_PER_RAY_CELL);
        self.refresh(map, Some(pose.position()), meter);
    }

    /// Rebuild the master grid: combine layers and run the inflation
    /// pass (a two-sweep chamfer distance transform). When the robot
    /// pose is known, its footprint is cleared afterwards — the ROS
    /// `costmap_2d` footprint-clearing behaviour that prevents phantom
    /// marks (SLAM pose jitter, stale readings) from trapping the
    /// robot inside its own inscribed zone.
    fn refresh(&mut self, map: &MapMsg, robot: Option<Point2>, meter: &mut WorkMeter) {
        let (w, h) = (self.dims.width as usize, self.dims.height as usize);
        let n = w * h;
        debug_assert_eq!(map.cells.len(), n);

        // Distance (in metres) to the nearest lethal cell, via a
        // two-pass chamfer transform.
        let res = self.dims.resolution;
        let big = 1e9f32;
        let mut dist = vec![big; n];
        #[allow(clippy::needless_range_loop)] // two parallel arrays
        for i in 0..n {
            let lethal = self.static_lethal[i]
                || (self.marked_at[i] != 0
                    && self.updates - self.marked_at[i] < self.cfg.mark_ttl_updates);
            if lethal {
                dist[i] = 0.0;
            }
        }
        let (orth, diag) = (res as f32, res as f32 * std::f32::consts::SQRT_2);
        // Forward sweep.
        for row in 0..h {
            for col in 0..w {
                let i = row * w + col;
                let mut d = dist[i];
                if col > 0 {
                    d = d.min(dist[i - 1] + orth);
                }
                if row > 0 {
                    d = d.min(dist[i - w] + orth);
                    if col > 0 {
                        d = d.min(dist[i - w - 1] + diag);
                    }
                    if col + 1 < w {
                        d = d.min(dist[i - w + 1] + diag);
                    }
                }
                dist[i] = d;
            }
        }
        // Backward sweep.
        for row in (0..h).rev() {
            for col in (0..w).rev() {
                let i = row * w + col;
                let mut d = dist[i];
                if col + 1 < w {
                    d = d.min(dist[i + 1] + orth);
                }
                if row + 1 < h {
                    d = d.min(dist[i + w] + orth);
                    if col > 0 {
                        d = d.min(dist[i + w - 1] + diag);
                    }
                    if col + 1 < w {
                        d = d.min(dist[i + w + 1] + diag);
                    }
                }
                dist[i] = d;
            }
        }

        // Master grid from distance + known/unknown state.
        let inscribed = self.cfg.inscribed_radius as f32;
        let inflate = self.cfg.inflation_radius as f32;
        #[allow(clippy::needless_range_loop)] // reads dist, writes master
        for i in 0..n {
            let d = dist[i];
            self.master[i] = if d <= 0.0 {
                COST_LETHAL
            } else if d <= inscribed {
                COST_INSCRIBED
            } else if d <= inflate {
                let factor = (-(self.cfg.cost_scaling as f32) * (d - inscribed))
                    .exp()
                    .clamp(0.0, 1.0);
                (factor * COST_FREE_MAX as f32) as u8
            } else if map.cells[i] == MapMsg::UNKNOWN && self.marked_at[i] == 0 {
                COST_UNKNOWN
            } else {
                0
            };
        }
        // Footprint clearing around the robot.
        if let Some(p) = robot {
            let clear_r = self.cfg.inscribed_radius + 0.06;
            let lo = self
                .dims
                .world_to_grid(Point2::new(p.x - clear_r, p.y - clear_r));
            let hi = self
                .dims
                .world_to_grid(Point2::new(p.x + clear_r, p.y + clear_r));
            for row in lo.row..=hi.row {
                for col in lo.col..=hi.col {
                    let idx = GridIndex::new(col, row);
                    if self.dims.contains(idx)
                        && self.dims.grid_to_world(idx).distance(p) <= clear_r
                    {
                        let flat = self.dims.flat(idx);
                        self.master[flat] = self.master[flat].min(COST_FREE_MAX);
                        self.marked_at[flat] = 0;
                    }
                }
            }
        }

        // The refresh pass is data-parallel over cell stripes (the
        // paper's Fig. 5 parallelizes the costmap update together with
        // trajectory scoring); a serial residue covers the sweep
        // dependencies of the distance transform.
        let total = n as f64 * cost::CYCLES_PER_REFRESH_CELL;
        meter.serial_ops(1, total * 0.1);
        meter.parallel_ops(1, total * 0.9, 512);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn empty_map(w: u32, h: u32) -> MapMsg {
        MapMsg {
            stamp: SimTime::EPOCH,
            dims: GridDims::new(w, h, 0.05, Point2::ORIGIN),
            cells: vec![MapMsg::FREE; (w * h) as usize],
        }
    }

    fn map_with_block(w: u32, h: u32) -> MapMsg {
        let mut m = empty_map(w, h);
        // Block at cells cols 40..=44, rows 40..=44 (world ≈ 2.0–2.25).
        for row in 40..=44 {
            for col in 40..=44 {
                m.cells[(row * w + col) as usize] = MapMsg::OCCUPIED;
            }
        }
        m
    }

    #[test]
    fn static_obstacles_are_lethal_and_inflated() {
        let m = map_with_block(100, 100);
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        assert_eq!(cm.cost(GridIndex::new(42, 42)), COST_LETHAL);
        // A cell just outside the block but within the inscribed
        // radius is inscribed.
        assert_eq!(cm.cost(GridIndex::new(45, 42)), COST_INSCRIBED);
        // Within the inflation radius: nonzero but traversable.
        let c = cm.cost(GridIndex::new(49, 42));
        assert!(c > 0 && c < COST_INSCRIBED, "cost {c}");
        // Far away: free.
        assert_eq!(cm.cost(GridIndex::new(90, 90)), 0);
    }

    #[test]
    fn inflation_cost_decreases_with_distance() {
        let m = map_with_block(100, 100);
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        let mut prev = COST_LETHAL;
        for col in 45..55 {
            let c = cm.cost(GridIndex::new(col, 42));
            assert!(
                c <= prev,
                "cost must not increase moving away: {c} > {prev}"
            );
            prev = c;
        }
    }

    #[test]
    fn out_of_bounds_is_lethal() {
        let cm = Costmap::from_map(CostmapConfig::default(), &empty_map(20, 20));
        assert_eq!(cm.cost(GridIndex::new(-1, 5)), COST_LETHAL);
        assert_eq!(cm.cost(GridIndex::new(5, 999)), COST_LETHAL);
    }

    #[test]
    fn scan_marks_new_obstacles() {
        let m = empty_map(100, 100);
        let mut cm = Costmap::from_map(CostmapConfig::default(), &m);
        // Robot at (1, 2.5) facing +x; beam 0 hits at 1 m → (2, 2.5).
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / 4.0,
            range_max: 3.5,
            ranges: vec![1.0, 3.5, 3.5, 3.5],
        };
        let mut meter = WorkMeter::new();
        cm.update(&m, Pose2D::new(1.0, 2.5, 0.0), &scan, &mut meter);
        let hit = cm.dims().world_to_grid(Point2::new(2.0, 2.5));
        assert_eq!(cm.cost(hit), COST_LETHAL);
        assert!(meter.finish().total_cycles() > 0.0);
    }

    #[test]
    fn ray_clearing_removes_stale_marks() {
        let m = empty_map(100, 100);
        let mut cm = Costmap::from_map(CostmapConfig::default(), &m);
        let pose = Pose2D::new(1.0, 2.5, 0.0);
        let hit_scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / 4.0,
            range_max: 3.5,
            ranges: vec![1.0, 3.5, 3.5, 3.5],
        };
        let clear_scan = LaserScan {
            ranges: vec![2.0, 3.5, 3.5, 3.5],
            ..hit_scan.clone()
        };
        let mut meter = WorkMeter::new();
        cm.update(&m, pose, &hit_scan, &mut meter);
        let old_hit = cm.dims().world_to_grid(Point2::new(2.0, 2.5));
        assert_eq!(cm.cost(old_hit), COST_LETHAL);
        // Next scan sees through that cell: it must clear.
        cm.update(&m, pose, &clear_scan, &mut meter);
        assert!(cm.cost(old_hit) < COST_INSCRIBED, "stale mark should clear");
    }

    #[test]
    fn unknown_cells_stay_unknown_until_observed() {
        let mut m = empty_map(60, 60);
        m.cells.iter_mut().for_each(|c| *c = MapMsg::UNKNOWN);
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        assert_eq!(cm.cost(GridIndex::new(30, 30)), COST_UNKNOWN);
        assert!(!cm.traversable(GridIndex::new(30, 30)));
    }

    #[test]
    fn footprint_collision_detection() {
        let m = map_with_block(100, 100);
        let cm = Costmap::from_map(CostmapConfig::default(), &m);
        // Block spans roughly [2.0, 2.25]².
        assert!(cm.footprint_collides(Point2::new(2.1, 2.1), 0.11));
        assert!(cm.footprint_collides(Point2::new(2.35, 2.1), 0.11));
        assert!(!cm.footprint_collides(Point2::new(4.0, 4.0), 0.11));
    }

    #[test]
    fn work_scales_with_grid_size() {
        let small = empty_map(50, 50);
        let large = empty_map(200, 200);
        let mut cs = Costmap::from_map(CostmapConfig::default(), &small);
        let mut cl = Costmap::from_map(CostmapConfig::default(), &large);
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 0.5,
            range_max: 3.5,
            ranges: vec![1.0; 12],
        };
        let mut ms = WorkMeter::new();
        let mut ml = WorkMeter::new();
        cs.update(&small, Pose2D::new(1.2, 1.2, 0.0), &scan, &mut ms);
        cl.update(&large, Pose2D::new(1.2, 1.2, 0.0), &scan, &mut ml);
        assert!(ml.finish().total_cycles() > 10.0 * ms.finish().total_cycles());
    }

    #[test]
    fn table2_costmap_cycle_anchor() {
        // Lab-scale map (12×10 m at 5 cm): one update should cost
        // ≈ 0.86/5 ≈ 0.17 Gcycles (Table II, CostmapGen with a map).
        let m = empty_map(240, 200);
        let mut cm = Costmap::from_map(CostmapConfig::default(), &m);
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / 360.0,
            range_max: 3.5,
            ranges: vec![2.0; 360],
        };
        let mut meter = WorkMeter::new();
        cm.update(&m, Pose2D::new(6.0, 5.0, 0.0), &scan, &mut meter);
        let g = meter.finish().total_cycles() / 1e9;
        assert!((0.12..0.25).contains(&g), "per-update Gcycles {g}");
    }
}
