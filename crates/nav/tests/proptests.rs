//! Property-based tests for the navigation stack: planner optimality
//! and safety, costmap invariants, DWA feasibility guarantees.

use lgv_nav::costmap::{Costmap, CostmapConfig, COST_INSCRIBED, COST_LETHAL};
use lgv_nav::dwa::{DwaConfig, DwaPlanner};
use lgv_nav::frontier::FrontierExplorer;
use lgv_nav::global_planner::{GlobalPlanner, PlannerAlgorithm, PlannerConfig};
use lgv_nav::velocity_mux::{MuxConfig, VelocityMux};
use lgv_types::prelude::*;
use proptest::prelude::*;

/// An open map with a few random rectangular obstacles.
fn obstacle_map(seed: u64, blocks: usize) -> MapMsg {
    let dims = GridDims::new(120, 120, 0.05, Point2::ORIGIN);
    let mut cells = vec![MapMsg::FREE; dims.len()];
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..blocks {
        let cx = rng.index(80) + 20;
        let cy = rng.index(80) + 20;
        let w = rng.index(8) + 2;
        let h = rng.index(8) + 2;
        for row in cy..(cy + h).min(120) {
            for col in cx..(cx + w).min(120) {
                cells[row * 120 + col] = MapMsg::OCCUPIED;
            }
        }
    }
    MapMsg {
        stamp: SimTime::EPOCH,
        dims,
        cells,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn astar_never_beats_dijkstra_by_much(seed in 0u64..200, blocks in 0usize..6) {
        // A* with an admissible heuristic and identical edge costs must
        // return (near-)identical path lengths to Dijkstra.
        let map = obstacle_map(seed, blocks);
        let cm = Costmap::from_map(CostmapConfig::default(), &map);
        let start = Point2::new(0.5, 0.5);
        let goal = Point2::new(5.5, 5.5);
        let d = GlobalPlanner::new(PlannerConfig {
            algorithm: PlannerAlgorithm::Dijkstra,
            ..Default::default()
        })
        .plan(&cm, start, goal, SimTime::EPOCH);
        let a = GlobalPlanner::new(PlannerConfig {
            algorithm: PlannerAlgorithm::AStar,
            ..Default::default()
        })
        .plan(&cm, start, goal, SimTime::EPOCH);
        match (d, a) {
            (Ok(d), Ok(a)) => {
                // Shortcutting adds small variation; lengths agree within 10 %.
                let ratio = a.path.length() / d.path.length().max(1e-9);
                prop_assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
                prop_assert!(a.expansions <= d.expansions);
            }
            (Err(_), Err(_)) => {}
            (d, a) => prop_assert!(false, "planners disagree on reachability: {d:?} vs {a:?}"),
        }
    }

    #[test]
    fn planned_paths_avoid_lethal_cells(seed in 0u64..200, blocks in 0usize..6) {
        let map = obstacle_map(seed, blocks);
        let cm = Costmap::from_map(CostmapConfig::default(), &map);
        let p = GlobalPlanner::new(PlannerConfig::default());
        if let Ok(r) = p.plan(&cm, Point2::new(0.5, 0.5), Point2::new(5.5, 5.5), SimTime::EPOCH) {
            for w in r.path.waypoints.windows(2) {
                for cell in GridRay::new(cm.dims(), w[0], w[1]) {
                    prop_assert!(
                        cm.cost(cell) < COST_INSCRIBED,
                        "path segment crosses lethal/inscribed cell {cell:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn costmap_costs_bounded_and_lethal_preserved(seed in 0u64..100, blocks in 1usize..6) {
        let map = obstacle_map(seed, blocks);
        let cm = Costmap::from_map(CostmapConfig::default(), &map);
        for (i, &c) in map.cells.iter().enumerate() {
            let idx = cm.dims().unflat(i);
            prop_assert!(cm.cost(idx) <= COST_LETHAL);
            if c == MapMsg::OCCUPIED {
                prop_assert_eq!(cm.cost(idx), COST_LETHAL, "static obstacle must stay lethal");
            }
        }
    }

    #[test]
    fn dwa_never_commands_into_collision(
        seed in 0u64..100, px in 1.0f64..5.0, py in 1.0f64..5.0, th in -3.0f64..3.0,
    ) {
        let map = obstacle_map(seed, 4);
        let cm = Costmap::from_map(CostmapConfig::default(), &map);
        if cm.footprint_collides(Point2::new(px, py), 0.12) {
            return Ok(());
        }
        let pose = Pose2D::new(px, py, th);
        let mut dwa = DwaPlanner::new(DwaConfig { samples: 120, ..Default::default() });
        let path = PathMsg {
            stamp: SimTime::EPOCH,
            waypoints: vec![pose.position(), Point2::new(5.5, 5.5)],
        };
        let r = dwa.compute(&cm, pose, &path, Point2::new(5.5, 5.5));
        if r.twist.linear > 0.0 {
            // Forward-simulate the chosen command over the DWA horizon:
            // it must stay collision-free (that's the feasibility test
            // the planner itself applied).
            let mut p = pose;
            for _ in 0..16 {
                p = p.integrate(r.twist, 0.1);
                prop_assert!(
                    !cm.footprint_collides(p.position(), 0.10),
                    "commanded trajectory collides at {p:?}"
                );
            }
        }
    }

    #[test]
    fn mux_always_returns_a_valid_command(
        cmds in proptest::collection::vec((0u64..5000, 0u8..3, -1.0f64..1.0), 0..30),
        query in 0u64..6000,
    ) {
        let mut mux = VelocityMux::new(MuxConfig::default());
        let mut stamps: Vec<u64> = cmds.iter().map(|c| c.0).collect();
        stamps.sort_unstable();
        for (stamp, src, v) in &cmds {
            let source = match src {
                0 => VelocitySource::Navigation,
                1 => VelocitySource::Joystick,
                _ => VelocitySource::SafetyController,
            };
            mux.submit(VelocityCmd {
                stamp: SimTime::EPOCH + Duration::from_millis(*stamp),
                twist: Twist::new(*v, 0.0),
                source,
            });
        }
        let out = mux.select(SimTime::EPOCH + Duration::from_millis(query));
        prop_assert!(out.twist.linear.is_finite());
        // If it returned a non-stop command, that command must be fresh.
        if !out.twist.is_stop() {
            let age = (SimTime::EPOCH + Duration::from_millis(query)).saturating_since(out.stamp);
            prop_assert!(age <= Duration::from_millis(600));
        }
    }

    #[test]
    fn frontier_goal_is_always_on_a_frontier_cluster(seed in 0u64..100) {
        // Free disc of known space around a random centre; goal must
        // lie near the known/unknown boundary.
        let dims = GridDims::new(80, 80, 0.1, Point2::ORIGIN);
        let mut cells = vec![MapMsg::UNKNOWN; dims.len()];
        let mut rng = SimRng::seed_from_u64(seed);
        let cx = 20 + rng.index(40) as i32;
        let cy = 20 + rng.index(40) as i32;
        let r = 8 + rng.index(8) as i32;
        for row in 0..80 {
            for col in 0..80 {
                let dx = col - cx;
                let dy = row - cy;
                if dx * dx + dy * dy <= r * r {
                    cells[(row * 80 + col) as usize] = MapMsg::FREE;
                }
            }
        }
        let map = MapMsg { stamp: SimTime::EPOCH, dims, cells };
        let centre = dims.grid_to_world(GridIndex::new(cx, cy));
        let out = FrontierExplorer::default().select_goal(&map, centre, SimTime::EPOCH);
        if let Some(goal) = out.goal {
            let dist = goal.target.distance(centre);
            // Frontier ring lies at radius r·0.1 m ± a cell or two.
            prop_assert!(
                (dist - r as f64 * 0.1).abs() < 0.4,
                "goal {dist} vs ring {}",
                r as f64 * 0.1
            );
        }
    }
}
