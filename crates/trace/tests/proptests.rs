//! Property-based round-trip tests: every [`TraceEvent`] kind, filled
//! with arbitrary values, must survive `to_json` → [`TraceReader`]
//! parse → `to_json` byte-identically. Floats are generated from raw
//! bits so the non-finite → `null` → NaN path is exercised too.

use lgv_trace::{MsgId, SendKind, SpanId, TraceEvent, TraceReader, TraceRecord};
use proptest::prelude::*;

/// One event of every kind built from the given sample values.
fn all_kinds(s: &str, a: u64, b: u32, f: f64, flag: bool) -> Vec<TraceEvent> {
    let msg = MsgId(a % 1000);
    let parent = MsgId(b as u64);
    let outcome = match a % 3 {
        0 => SendKind::Transmitted,
        1 => SendKind::Held,
        _ => SendKind::Discarded,
    };
    vec![
        TraceEvent::MissionStart {
            workload: s.to_string(),
            deployment: s.to_string(),
            seed: a,
        },
        TraceEvent::MissionProgress {
            x: f,
            y: -f,
            goal_x: f * 2.0,
            goal_y: 0.0,
            goal_dist: f.abs(),
            battery_soc: 0.5,
        },
        TraceEvent::MissionEnd {
            completed: flag,
            reason: s.to_string(),
        },
        TraceEvent::SpanBegin {
            span: SpanId(a),
            name: s.to_string(),
            index: b as u64,
        },
        TraceEvent::SpanEnd { span: SpanId(a) },
        TraceEvent::BusPublish {
            topic: s.to_string(),
            bytes: a,
            fanout: b,
            msg,
            parent,
        },
        TraceEvent::BusDrop {
            topic: s.to_string(),
            msg,
        },
        TraceEvent::ChannelSend {
            dir: s.to_string(),
            seq: a,
            bytes: b as u64,
            outcome,
            msg,
        },
        TraceEvent::ChannelLoss {
            dir: s.to_string(),
            seq: a,
            msg,
        },
        TraceEvent::ChannelDeliver {
            dir: s.to_string(),
            seq: a,
            msg,
            latency_ns: b as u64,
        },
        TraceEvent::RttSample { rtt_ns: a },
        TraceEvent::ProfileSample {
            node: s.to_string(),
            remote: flag,
            nanos: a,
            msg,
        },
        TraceEvent::ControlDecision {
            local_vdp_ns: a,
            cloud_vdp_ns: b as u64,
            bandwidth: f,
            direction: -f,
            vdp_remote: flag,
            max_linear: 0.15,
            net_decision: s.to_string(),
        },
        TraceEvent::PolicyDecide {
            policy: s.to_string(),
            remote: s.to_string(),
            expected_vdp_ns: a,
            max_velocity: f,
        },
        TraceEvent::GovernorDecision {
            mean_gap: f,
            threads: b,
        },
        TraceEvent::EnergyDelta {
            component: s.to_string(),
            joules: f,
        },
        TraceEvent::NetSwitch { to_remote: flag },
        TraceEvent::MigrationStart { bytes: a },
        TraceEvent::MigrationCommit {
            elapsed_ns: a,
            attempts: b as u64,
        },
        TraceEvent::MigrationAbort,
        TraceEvent::FaultBegin {
            fault: s.to_string(),
            window: b as u64,
            window_ns: a,
        },
        TraceEvent::FaultEnd {
            fault: s.to_string(),
            window: b as u64,
        },
        TraceEvent::HeartbeatMiss { silence_ns: a },
        TraceEvent::MigrationTimeout {
            elapsed_ns: a,
            bytes: b as u64,
        },
        TraceEvent::ReoffloadBackoff {
            wait_ns: a,
            failures: b as u64,
        },
        TraceEvent::CloudBatch {
            stage: s.to_string(),
            occupancy: b as u64,
            window: a,
            marginal_ns: a,
        },
        TraceEvent::CloudScale {
            from_replicas: b,
            to_replicas: b.wrapping_add(1),
            utilization: f,
            window: a,
        },
        TraceEvent::Checkpoint {
            bytes: a,
            elapsed_ns: b as u64,
        },
        TraceEvent::DegradeEnter {
            cause: s.to_string(),
            slam_particles: b as u64,
            dwa_samples: a % 512,
        },
        TraceEvent::DegradeExit {
            held_ns: a,
            missed_cycles: b as u64,
        },
        TraceEvent::ReplicaCrash {
            replicas: b as u64,
            window: a,
            window_ns: a,
        },
        TraceEvent::ReplicaStraggle {
            factor: f,
            window: a,
            window_ns: a,
        },
        TraceEvent::RegionAssign {
            region: b,
            cloud_pool: b / 2,
            wan: flag,
        },
        TraceEvent::WanHop {
            from_region: b,
            to_region: b / 2,
            delay_ns: a,
        },
    ]
}

proptest! {
    #[test]
    fn every_kind_roundtrips_byte_identically(
        t_ns in 0u64..4_000_000_000_000,
        seq in 0u64..1_000_000,
        span in 0u64..100_000,
        a in 0u64..1_000_000_000_000,
        b in 0u32..1_000_000,
        bits in 0u64..u64::MAX,
        flag in any::<bool>(),
        s in ".{0,12}",
    ) {
        // Raw bits cover NaN / ±inf / subnormals alongside normals.
        let f = f64::from_bits(bits);
        for (i, event) in all_kinds(&s, a, b, f, flag).into_iter().enumerate() {
            // Alternate tagged / untagged records so both envelope
            // encodings (field present and omitted) round-trip.
            let vehicle = if i % 2 == 0 { 0 } else { a % 33 };
            let rec = TraceRecord { t_ns, seq, span: SpanId(span), vehicle, event };
            let line = rec.to_json();
            let parsed = TraceReader::parse_line(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            prop_assert_eq!(
                &line,
                &parsed.to_json(),
                "re-encode differs for kind {}", rec.event.kind()
            );
            prop_assert_eq!(parsed.t_ns, t_ns);
            prop_assert_eq!(parsed.seq, seq);
            prop_assert_eq!(parsed.span, SpanId(span));
            prop_assert_eq!(parsed.vehicle, vehicle);
        }
    }

    #[test]
    fn parse_rejects_truncated_lines(
        cut in 1usize..40,
        a in 0u64..1_000_000,
    ) {
        let rec = TraceRecord {
            t_ns: a,
            seq: 1,
            span: SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::RttSample { rtt_ns: a },
        };
        let line = rec.to_json();
        prop_assume!(cut < line.len());
        let truncated = &line[..line.len() - cut];
        prop_assert!(TraceReader::parse_line(truncated).is_err());
    }
}
