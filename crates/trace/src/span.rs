//! Causal identifiers: spans and message lineage.
//!
//! Two id spaces turn the flat event stream into an explanation:
//!
//! * a [`SpanId`] names one interval of virtual time — in practice one
//!   200 ms control cycle, opened with [`crate::Tracer::span_begin`]
//!   and closed with [`crate::Tracer::span_end`]. Every record emitted
//!   while a span is open carries its id in the record envelope, so a
//!   reader can nest the whole stream under cycles without guessing
//!   from timestamps.
//! * a [`MsgId`] names one published message. It is allocated at
//!   `bus_publish` time ([`crate::Tracer::alloc_msg`]), rides with the
//!   payload through subscriber queues, channel sends, losses, and
//!   deliveries, and re-publications on a peer bus record the origin
//!   id as their `parent` — a lineage chain from the sensor publish to
//!   the actuator delivery.
//!
//! Both ids are plain `u64`s starting at 1; `0` is the reserved "none"
//! value ([`SpanId::NONE`] / [`MsgId::NONE`]). Allocation is a shared
//! monotone counter on the tracer, so for a fixed seed the ids — like
//! everything else in the trace — are byte-for-byte reproducible.

use std::fmt;

/// Identifier of one causal span (a control cycle in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// "Not inside any span" (encoded as `"span":0`).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the reserved none value.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// Identifier of one published message (lineage tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgId(pub u64);

impl MsgId {
    /// "No message attached" (encoded as `"msg":0` / `"parent":0`).
    pub const NONE: MsgId = MsgId(0);

    /// Whether this is the reserved none value.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_values_and_display() {
        assert!(SpanId::NONE.is_none());
        assert!(MsgId::NONE.is_none());
        assert!(!SpanId(3).is_none());
        assert_eq!(SpanId(3).to_string(), "span#3");
        assert_eq!(MsgId(9).to_string(), "msg#9");
    }
}
