//! Typed trace reading: the exact inverse of [`TraceRecord::to_json`].
//!
//! [`TraceReader`] parses JSON Lines produced by a [`crate::JsonlSink`]
//! back into [`TraceRecord`]s, so analysis code (the `trace_report`
//! binary, tests, replay tooling) works on typed events instead of
//! string matching. The parser is hand-rolled like the encoder — this
//! crate has no dependencies — and accepts exactly the flat-object
//! schema the encoder emits: every value is a string, number, bool, or
//! `null` (non-finite floats round-trip as `null` → NaN → `null`).
//!
//! Because the encoder prints floats in shortest-round-trip form and
//! fixes the field order per kind, a parsed record re-encodes
//! **byte-for-byte identically** — the property the round-trip
//! proptests pin down.
//!
//! ```
//! use lgv_trace::{TraceEvent, TraceReader};
//!
//! let line = r#"{"t_ns":200000000,"seq":3,"span":1,"kind":"rtt_sample","rtt_ns":24000000}"#;
//! let rec = TraceReader::parse_line(line).unwrap();
//! assert_eq!(rec.event, TraceEvent::RttSample { rtt_ns: 24_000_000 });
//! assert_eq!(rec.to_json(), line);
//! ```

use crate::event::{SendKind, TraceEvent, TraceRecord};
use crate::span::{MsgId, SpanId};
use std::fmt;
use std::path::Path;

/// A parse failure, located by 1-based line number (0 for file-level
/// I/O errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = not line-bound).
    pub line_no: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line_no == 0 {
            write!(f, "trace parse error: {}", self.msg)
        } else {
            write!(
                f,
                "trace parse error at line {}: {}",
                self.line_no, self.msg
            )
        }
    }
}

impl std::error::Error for ParseError {}

/// One decoded JSON value (the schema is flat: no nesting).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    U64(u64),
    F64(f64),
    Bool(bool),
    Null,
}

/// The key/value pairs of one parsed line, in file order.
///
/// Lookups skip the first `skip` fields: envelope keys (`t_ns`, `seq`,
/// `span`, `kind`) come first on the wire and `seq` also names a
/// channel-event field, so event lookups must start past `kind`.
struct Obj {
    fields: Vec<(String, Value)>,
    skip: usize,
}

impl Obj {
    /// The same pairs with lookups scoped past the `kind` field, for
    /// event-field access.
    fn past_kind(self) -> Result<Obj, String> {
        let at = self
            .fields
            .iter()
            .position(|(k, _)| k == "kind")
            .ok_or_else(|| "missing field `kind`".to_string())?;
        Ok(Obj {
            skip: at + 1,
            ..self
        })
    }

    fn get(&self, name: &str) -> Result<&Value, String> {
        self.fields[self.skip..]
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{name}`"))
    }

    fn u64(&self, name: &str) -> Result<u64, String> {
        match self.get(name)? {
            Value::U64(v) => Ok(*v),
            other => Err(format!(
                "field `{name}`: expected unsigned integer, got {other:?}"
            )),
        }
    }

    /// Optional unsigned field: absent → `None`, present with the
    /// wrong type → error. Used for the `vehicle` envelope field,
    /// which the encoder omits for unattributed records.
    fn opt_u64(&self, name: &str) -> Result<Option<u64>, String> {
        if self.fields[self.skip..].iter().any(|(k, _)| k == name) {
            Ok(Some(self.u64(name)?))
        } else {
            Ok(None)
        }
    }

    fn u32(&self, name: &str) -> Result<u32, String> {
        u32::try_from(self.u64(name)?).map_err(|_| format!("field `{name}`: exceeds u32"))
    }

    /// Float fields: `null` decodes to NaN (the encoder writes
    /// non-finite values as `null`), and a bare integer is accepted
    /// leniently.
    fn f64(&self, name: &str) -> Result<f64, String> {
        match self.get(name)? {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(format!("field `{name}`: expected number, got {other:?}")),
        }
    }

    fn str(&self, name: &str) -> Result<String, String> {
        match self.get(name)? {
            Value::Str(v) => Ok(v.clone()),
            other => Err(format!("field `{name}`: expected string, got {other:?}")),
        }
    }

    fn bool(&self, name: &str) -> Result<bool, String> {
        match self.get(name)? {
            Value::Bool(v) => Ok(*v),
            other => Err(format!("field `{name}`: expected bool, got {other:?}")),
        }
    }

    fn msg(&self, name: &str) -> Result<MsgId, String> {
        Ok(MsgId(self.u64(name)?))
    }
}

/// Cursor over one line's characters.
struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Self {
        Scanner { rest: line }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected `{c}`, got `{got}`")),
            None => Err(format!("expected `{c}`, got end of line")),
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if let Some(rest) = self.rest.strip_prefix(lit) {
            self.rest = rest;
            true
        } else {
            false
        }
    }

    /// A JSON string body, positioned after the opening quote.
    fn string_body(&mut self) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match self.bump().ok_or("unterminated string")? {
                '"' => return Ok(out),
                '\\' => match self.bump().ok_or("unterminated escape")? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000c}'),
                    'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if !self.eat("\\u") {
                                return Err("high surrogate without a pair".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "invalid \\u escape".to_string())?,
                        );
                    }
                    other => return Err(format!("invalid escape `\\{other}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            code = code * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("bad hex digit `{c}`"))?;
        }
        Ok(code)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("expected a value, got end of line")? {
            '"' => {
                self.bump();
                Ok(Value::Str(self.string_body()?))
            }
            't' if self.eat("true") => Ok(Value::Bool(true)),
            'f' if self.eat("false") => Ok(Value::Bool(false)),
            'n' if self.eat("null") => Ok(Value::Null),
            '-' | '0'..='9' => self.number(),
            c => Err(format!("unexpected character `{c}`")),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let len = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        let (token, rest) = self.rest.split_at(len);
        self.rest = rest;
        if token.contains(['.', 'e', 'E']) || token.starts_with('-') {
            token
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|e| format!("bad number `{token}`: {e}"))
        } else {
            token
                .parse::<u64>()
                .map(Value::U64)
                .map_err(|e| format!("bad integer `{token}`: {e}"))
        }
    }

    /// Parse one flat `{...}` object to key/value pairs.
    fn object(&mut self) -> Result<Obj, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
        } else {
            loop {
                self.skip_ws();
                self.expect('"')?;
                let key = self.string_body()?;
                self.skip_ws();
                self.expect(':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.bump() {
                    Some(',') => continue,
                    Some('}') => break,
                    Some(c) => return Err(format!("expected `,` or `}}`, got `{c}`")),
                    None => return Err("unterminated object".into()),
                }
            }
        }
        self.skip_ws();
        if !self.rest.is_empty() {
            return Err(format!("trailing content after object: `{}`", self.rest));
        }
        Ok(Obj { fields, skip: 0 })
    }
}

/// Reconstruct the typed event from its `kind` and the fields past it.
fn event_from(kind: &str, obj: &Obj) -> Result<TraceEvent, String> {
    Ok(match kind {
        "mission_start" => TraceEvent::MissionStart {
            workload: obj.str("workload")?,
            deployment: obj.str("deployment")?,
            seed: obj.u64("seed")?,
        },
        "mission_progress" => TraceEvent::MissionProgress {
            x: obj.f64("x")?,
            y: obj.f64("y")?,
            goal_x: obj.f64("goal_x")?,
            goal_y: obj.f64("goal_y")?,
            goal_dist: obj.f64("goal_dist")?,
            battery_soc: obj.f64("battery_soc")?,
        },
        "mission_end" => TraceEvent::MissionEnd {
            completed: obj.bool("completed")?,
            reason: obj.str("reason")?,
        },
        "span_begin" => TraceEvent::SpanBegin {
            span: SpanId(obj.u64("span_id")?),
            name: obj.str("name")?,
            index: obj.u64("index")?,
        },
        "span_end" => TraceEvent::SpanEnd {
            span: SpanId(obj.u64("span_id")?),
        },
        "bus_publish" => TraceEvent::BusPublish {
            topic: obj.str("topic")?,
            bytes: obj.u64("bytes")?,
            fanout: obj.u32("fanout")?,
            msg: obj.msg("msg")?,
            parent: obj.msg("parent")?,
        },
        "bus_drop" => TraceEvent::BusDrop {
            topic: obj.str("topic")?,
            msg: obj.msg("msg")?,
        },
        "channel_send" => TraceEvent::ChannelSend {
            dir: obj.str("dir")?,
            seq: obj.u64("seq")?,
            bytes: obj.u64("bytes")?,
            outcome: match obj.str("outcome")?.as_str() {
                "transmitted" => SendKind::Transmitted,
                "held" => SendKind::Held,
                "discarded" => SendKind::Discarded,
                other => return Err(format!("unknown send outcome `{other}`")),
            },
            msg: obj.msg("msg")?,
        },
        "channel_loss" => TraceEvent::ChannelLoss {
            dir: obj.str("dir")?,
            seq: obj.u64("seq")?,
            msg: obj.msg("msg")?,
        },
        "channel_deliver" => TraceEvent::ChannelDeliver {
            dir: obj.str("dir")?,
            seq: obj.u64("seq")?,
            msg: obj.msg("msg")?,
            latency_ns: obj.u64("latency_ns")?,
        },
        "rtt_sample" => TraceEvent::RttSample {
            rtt_ns: obj.u64("rtt_ns")?,
        },
        "profile_sample" => TraceEvent::ProfileSample {
            node: obj.str("node")?,
            remote: obj.bool("remote")?,
            nanos: obj.u64("nanos")?,
            msg: obj.msg("msg")?,
        },
        "control_decision" => TraceEvent::ControlDecision {
            local_vdp_ns: obj.u64("local_vdp_ns")?,
            cloud_vdp_ns: obj.u64("cloud_vdp_ns")?,
            bandwidth: obj.f64("bandwidth")?,
            direction: obj.f64("direction")?,
            vdp_remote: obj.bool("vdp_remote")?,
            max_linear: obj.f64("max_linear")?,
            net_decision: obj.str("net_decision")?,
        },
        "policy_decide" => TraceEvent::PolicyDecide {
            policy: obj.str("policy")?,
            remote: obj.str("remote")?,
            expected_vdp_ns: obj.u64("expected_vdp_ns")?,
            max_velocity: obj.f64("max_velocity")?,
        },
        "governor_decision" => TraceEvent::GovernorDecision {
            mean_gap: obj.f64("mean_gap")?,
            threads: obj.u32("threads")?,
        },
        "energy_delta" => TraceEvent::EnergyDelta {
            component: obj.str("component")?,
            joules: obj.f64("joules")?,
        },
        "net_switch" => TraceEvent::NetSwitch {
            to_remote: obj.bool("to_remote")?,
        },
        "migration_start" => TraceEvent::MigrationStart {
            bytes: obj.u64("bytes")?,
        },
        "migration_commit" => TraceEvent::MigrationCommit {
            elapsed_ns: obj.u64("elapsed_ns")?,
            attempts: obj.u64("attempts")?,
        },
        "migration_abort" => TraceEvent::MigrationAbort,
        "fault_begin" => TraceEvent::FaultBegin {
            fault: obj.str("fault")?,
            window: obj.u64("window")?,
            window_ns: obj.u64("window_ns")?,
        },
        "fault_end" => TraceEvent::FaultEnd {
            fault: obj.str("fault")?,
            window: obj.u64("window")?,
        },
        "heartbeat_miss" => TraceEvent::HeartbeatMiss {
            silence_ns: obj.u64("silence_ns")?,
        },
        "migration_timeout" => TraceEvent::MigrationTimeout {
            elapsed_ns: obj.u64("elapsed_ns")?,
            bytes: obj.u64("bytes")?,
        },
        "reoffload_backoff" => TraceEvent::ReoffloadBackoff {
            wait_ns: obj.u64("wait_ns")?,
            failures: obj.u64("failures")?,
        },
        "cloud_batch" => TraceEvent::CloudBatch {
            stage: obj.str("stage")?,
            occupancy: obj.u64("occupancy")?,
            window: obj.u64("window")?,
            marginal_ns: obj.u64("marginal_ns")?,
        },
        "cloud_scale" => TraceEvent::CloudScale {
            from_replicas: obj.u32("from_replicas")?,
            to_replicas: obj.u32("to_replicas")?,
            utilization: obj.f64("utilization")?,
            window: obj.u64("window")?,
        },
        "checkpoint" => TraceEvent::Checkpoint {
            bytes: obj.u64("bytes")?,
            elapsed_ns: obj.u64("elapsed_ns")?,
        },
        "degrade_enter" => TraceEvent::DegradeEnter {
            cause: obj.str("cause")?,
            slam_particles: obj.u64("slam_particles")?,
            dwa_samples: obj.u64("dwa_samples")?,
        },
        "degrade_exit" => TraceEvent::DegradeExit {
            held_ns: obj.u64("held_ns")?,
            missed_cycles: obj.u64("missed_cycles")?,
        },
        "replica_crash" => TraceEvent::ReplicaCrash {
            replicas: obj.u64("replicas")?,
            window: obj.u64("window")?,
            window_ns: obj.u64("window_ns")?,
        },
        "replica_straggle" => TraceEvent::ReplicaStraggle {
            factor: obj.f64("factor")?,
            window: obj.u64("window")?,
            window_ns: obj.u64("window_ns")?,
        },
        "region_assign" => TraceEvent::RegionAssign {
            region: obj.u32("region")?,
            cloud_pool: obj.u32("cloud_pool")?,
            wan: obj.bool("wan")?,
        },
        "wan_hop" => TraceEvent::WanHop {
            from_region: obj.u32("from_region")?,
            to_region: obj.u32("to_region")?,
            delay_ns: obj.u64("delay_ns")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    })
}

/// Parser for the JSONL trace format written by [`crate::JsonlSink`].
///
/// Stateless; every method is an associated function.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceReader;

impl TraceReader {
    /// Parse one JSONL line into a typed record.
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        let obj = Scanner::new(line).object()?;
        let t_ns = obj.u64("t_ns")?;
        let seq = obj.u64("seq")?;
        let span = SpanId(obj.u64("span")?);
        // Optional tenant tag; no event kind has a field named
        // `vehicle`, so the unscoped lookup cannot mis-resolve.
        let vehicle = obj.opt_u64("vehicle")?.unwrap_or(0);
        let kind = obj.str("kind")?;
        let obj = obj.past_kind()?;
        Ok(TraceRecord {
            t_ns,
            seq,
            span,
            vehicle,
            event: event_from(&kind, &obj)?,
        })
    }

    /// Parse a whole trace (blank lines skipped), reporting the first
    /// failure with its 1-based line number.
    pub fn parse_str(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
        let mut out = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(Self::parse_line(line).map_err(|msg| ParseError {
                line_no: idx + 1,
                msg,
            })?);
        }
        Ok(out)
    }

    /// Read and parse a trace file. I/O failures surface as a
    /// [`ParseError`] with `line_no == 0`.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Vec<TraceRecord>, ParseError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| ParseError {
            line_no: 0,
            msg: format!("cannot read {}: {e}", path.as_ref().display()),
        })?;
        Self::parse_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_envelope_and_event() {
        let line = r#"{"t_ns":7,"seq":2,"span":4,"kind":"bus_publish","topic":"scan","bytes":10,"fanout":2,"msg":5,"parent":0}"#;
        let rec = TraceReader::parse_line(line).unwrap();
        assert_eq!(rec.t_ns, 7);
        assert_eq!(rec.seq, 2);
        assert_eq!(rec.span, SpanId(4));
        assert_eq!(
            rec.event,
            TraceEvent::BusPublish {
                topic: "scan".into(),
                bytes: 10,
                fanout: 2,
                msg: MsgId(5),
                parent: MsgId::NONE,
            }
        );
        assert_eq!(rec.to_json(), line);
    }

    #[test]
    fn every_kind_round_trips_byte_identically() {
        let events = vec![
            TraceEvent::MissionStart {
                workload: "Navigation".into(),
                deployment: "edge-8t".into(),
                seed: 42,
            },
            TraceEvent::MissionProgress {
                x: 0.1,
                y: -2.5,
                goal_x: 4.0,
                goal_y: 4.5,
                goal_dist: 5.830951894845301,
                battery_soc: 0.93,
            },
            TraceEvent::MissionEnd {
                completed: true,
                reason: "goal \"reached\"\n".into(),
            },
            TraceEvent::SpanBegin {
                span: SpanId(9),
                name: "cycle".into(),
                index: 8,
            },
            TraceEvent::SpanEnd { span: SpanId(9) },
            TraceEvent::BusPublish {
                topic: "scan".into(),
                bytes: 1081,
                fanout: 2,
                msg: MsgId(3),
                parent: MsgId(1),
            },
            TraceEvent::BusDrop {
                topic: "cmd_vel".into(),
                msg: MsgId(4),
            },
            TraceEvent::ChannelSend {
                dir: "up".into(),
                seq: 17,
                bytes: 1100,
                outcome: SendKind::Held,
                msg: MsgId(3),
            },
            TraceEvent::ChannelLoss {
                dir: "down".into(),
                seq: 18,
                msg: MsgId(2),
            },
            TraceEvent::ChannelDeliver {
                dir: "up".into(),
                seq: 17,
                msg: MsgId(3),
                latency_ns: 24_000_000,
            },
            TraceEvent::RttSample { rtt_ns: 24_000_000 },
            TraceEvent::ProfileSample {
                node: "Slam".into(),
                remote: true,
                nanos: 7_000_000,
                msg: MsgId(3),
            },
            TraceEvent::ControlDecision {
                local_vdp_ns: 120_000_000,
                cloud_vdp_ns: 80_000_000,
                bandwidth: 5.5,
                direction: -0.25,
                vdp_remote: true,
                max_linear: 0.6,
                net_decision: "keep".into(),
            },
            TraceEvent::PolicyDecide {
                policy: "bandit".into(),
                remote: "-".into(),
                expected_vdp_ns: 120_000_000,
                max_velocity: 0.31,
            },
            TraceEvent::GovernorDecision {
                mean_gap: f64::NAN,
                threads: 8,
            },
            TraceEvent::EnergyDelta {
                component: "motor".into(),
                joules: 0.5,
            },
            TraceEvent::NetSwitch { to_remote: false },
            TraceEvent::MigrationStart { bytes: 65_536 },
            TraceEvent::MigrationCommit {
                elapsed_ns: 1_000_000,
                attempts: 3,
            },
            TraceEvent::MigrationAbort,
            TraceEvent::FaultBegin {
                fault: "remote_crash".into(),
                window: 0,
                window_ns: 20_000_000_000,
            },
            TraceEvent::FaultEnd {
                fault: "remote_crash".into(),
                window: 0,
            },
            TraceEvent::HeartbeatMiss {
                silence_ns: 1_600_000_000,
            },
            TraceEvent::MigrationTimeout {
                elapsed_ns: 8_000_000_000,
                bytes: 81_920,
            },
            TraceEvent::ReoffloadBackoff {
                wait_ns: 4_000_000_000,
                failures: 2,
            },
            TraceEvent::CloudBatch {
                stage: "slam".to_string(),
                occupancy: 3,
                window: 41,
                marginal_ns: 600_000,
            },
            TraceEvent::CloudScale {
                from_replicas: 1,
                to_replicas: 2,
                utilization: 1.25,
                window: 42,
            },
            TraceEvent::Checkpoint {
                bytes: 5184,
                elapsed_ns: 37_000_000,
            },
            TraceEvent::DegradeEnter {
                cause: "backoff".into(),
                slam_particles: 4,
                dwa_samples: 100,
            },
            TraceEvent::DegradeExit {
                held_ns: 6_200_000_000,
                missed_cycles: 1,
            },
            TraceEvent::ReplicaCrash {
                replicas: 2,
                window: 0,
                window_ns: 4_000_000_000,
            },
            TraceEvent::ReplicaStraggle {
                factor: 3.25,
                window: 1,
                window_ns: 2_500_000_000,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let rec = TraceRecord {
                t_ns: i as u64 * 10,
                seq: i as u64,
                span: SpanId(1),
                vehicle: (i % 3) as u64,
                event,
            };
            let json = rec.to_json();
            let parsed = TraceReader::parse_line(&json)
                .unwrap_or_else(|e| panic!("parse failed for `{json}`: {e}"));
            assert_eq!(parsed.to_json(), json);
        }
    }

    #[test]
    fn vehicle_envelope_field_round_trips_and_defaults() {
        // Tagged: the field sits between `span` and `kind`.
        let tagged = r#"{"t_ns":7,"seq":2,"span":4,"vehicle":3,"kind":"rtt_sample","rtt_ns":5}"#;
        let rec = TraceReader::parse_line(tagged).unwrap();
        assert_eq!(rec.vehicle, 3);
        assert_eq!(rec.to_json(), tagged);
        // Pre-fleet lines (no field) parse to the 0 sentinel.
        let plain = r#"{"t_ns":7,"seq":2,"span":4,"kind":"rtt_sample","rtt_ns":5}"#;
        let rec = TraceReader::parse_line(plain).unwrap();
        assert_eq!(rec.vehicle, 0);
        assert_eq!(rec.to_json(), plain);
        // Wrong type is an error, not a silent default.
        let bad = r#"{"t_ns":7,"seq":2,"span":4,"vehicle":"x","kind":"rtt_sample","rtt_ns":5}"#;
        assert!(TraceReader::parse_line(bad)
            .unwrap_err()
            .contains("vehicle"));
    }

    #[test]
    fn parse_str_reports_line_numbers() {
        let text = "\n{\"t_ns\":0,\"seq\":0,\"span\":0,\"kind\":\"migration_abort\"}\nnot json\n";
        let err = TraceReader::parse_str(text).unwrap_err();
        assert_eq!(err.line_no, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn rejects_unknown_kind_and_missing_fields() {
        let unknown = r#"{"t_ns":0,"seq":0,"span":0,"kind":"mystery"}"#;
        assert!(TraceReader::parse_line(unknown)
            .unwrap_err()
            .contains("unknown event kind"));
        let missing = r#"{"t_ns":0,"seq":0,"span":0,"kind":"rtt_sample"}"#;
        assert!(TraceReader::parse_line(missing)
            .unwrap_err()
            .contains("rtt_ns"));
    }

    #[test]
    fn unicode_escapes_decode() {
        // Built via encode so the source stays free of raw control
        // characters: a control char (escaped as \\u0001 on the wire)
        // plus an astral-plane char (written raw by the encoder).
        let original = TraceRecord {
            t_ns: 0,
            seq: 0,
            span: SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::MissionEnd {
                completed: false,
                reason: format!("ctrl{} pair\u{1F600} end", '\u{1}'),
            },
        };
        let line = original.to_json();
        assert!(line.contains("ctrl\\u0001 pair"));
        let rec = TraceReader::parse_line(&line).unwrap();
        assert_eq!(rec, original);
        assert_eq!(rec.to_json(), line);

        // Surrogate pairs in the input decode to one char.
        let paired = line.replace('\u{1F600}', "\\ud83d\\ude00");
        let rec2 = TraceReader::parse_line(&paired).unwrap();
        assert_eq!(rec2, original);
    }
}
