//! Trace analysis: turn a flat record stream back into explanations.
//!
//! [`TraceAnalysis`] reconstructs, from the records of **one mission**:
//!
//! * **per-message journeys** — lineage chains rooted at a fresh
//!   `bus_publish` (`parent == 0`), followed through channel sends,
//!   deliveries, remote compute samples, and re-publications;
//! * **per-cycle span trees** — every record carries the span of its
//!   200 ms control cycle, so events group under cycles exactly;
//! * a **latency waterfall** over the complete offload journeys
//!   (publish → uplink queue → uplink air → cloud compute → downlink
//!   air → delivery), with exact percentiles per stage;
//! * **critical-path attribution** — which stage dominated each
//!   journey's end-to-end latency;
//! * **drop/loss lineage** — where the journeys that never delivered
//!   actually died (sender discard, radio loss, bus drop, in flight);
//! * the §V **"lying RTT" anomaly** — windows of virtual time where
//!   the sender discards datagrams (kernel buffer full behind a weak
//!   signal) while the last measured RTT still looks healthy, i.e. the
//!   RTT metric actively misleads.
//!
//! [`TraceAnalysis::render_report`] prints all of the above as
//! fixed-precision text that is byte-for-byte deterministic for a
//! given record stream — the `trace_report` binary in `lgv-bench` is a
//! thin CLI over this module.

use crate::event::{SendKind, TraceEvent, TraceRecord};
use crate::metrics::Histogram;
use crate::span::{MsgId, SpanId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Virtual-time window width for the lying-RTT detector (1 s).
const ANOMALY_WINDOW_NS: u64 = 1_000_000_000;
/// Discards per window required to call the window anomalous.
const ANOMALY_MIN_DISCARDS: u64 = 3;
/// An RTT at or below this still "looks healthy" to a naive monitor.
const HEALTHY_RTT_MS: f64 = 100.0;

/// Where a journey's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Fate {
    /// Delivered back to the robot bus (complete waterfall).
    Delivered,
    /// Never left the robot: every send was discarded at the sender.
    Discarded,
    /// Transmitted but lost in the air.
    Lost,
    /// Evicted from a bounded subscriber queue.
    BusDropped,
    /// Never touched a channel (the VDP ran locally that cycle).
    Local,
    /// Still somewhere between hosts when the trace ended.
    InFlight,
}

impl Fate {
    fn as_str(self) -> &'static str {
        match self {
            Fate::Delivered => "delivered",
            Fate::Discarded => "discarded at sender",
            Fate::Lost => "lost in the air",
            Fate::BusDropped => "dropped on a bus queue",
            Fate::Local => "handled locally",
            Fate::InFlight => "in flight at trace end",
        }
    }
}

/// The five waterfall stages of a complete offload journey, in
/// pipeline order.
const STAGES: [&str; 5] = [
    "publish->uplink",
    "uplink air",
    "cloud compute",
    "downlink air",
    "delivery",
];

/// One reconstructed lineage chain rooted at a fresh publish.
#[derive(Debug, Clone)]
struct Journey {
    root: MsgId,
    topic: String,
    span: SpanId,
    t_publish: u64,
    /// Stage durations in ns, indexed like [`STAGES`]; `None` when the
    /// journey never reached that stage.
    stages: [Option<u64>; 5],
    /// Root publish → last chain event (ns).
    end_to_end: Option<u64>,
    fate: Fate,
}

impl Journey {
    /// Index into [`STAGES`] of the longest stage, for complete
    /// journeys.
    fn critical_stage(&self) -> Option<usize> {
        if self.fate != Fate::Delivered {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (i, d) in self.stages.iter().enumerate() {
            if let Some(d) = d {
                // Strict `>` keeps the earliest stage on ties, which
                // is deterministic and favours upstream causes.
                if best.is_none_or(|(_, b)| *d > b) {
                    best = Some((i, *d));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

/// One scripted fault window reconstructed from its
/// `fault_begin`/`fault_end` edge events, with everything the trace
/// blames on it: losses, discards, heartbeat misses, migration
/// timeouts, and the speed cap the controller actually commanded
/// while the window was open.
#[derive(Debug, Clone)]
struct FaultSpan {
    window: u64,
    fault: String,
    begin_ns: u64,
    /// Scheduled width as reported by the `fault_begin` event.
    span_ns: u64,
    /// Did a matching `fault_end` arrive before the trace ended?
    closed: bool,
    losses: u64,
    discards: u64,
    heartbeat_misses: u64,
    migration_timeouts: u64,
    /// `max_linear` samples from control decisions inside the window.
    speed: Histogram,
}

/// Per-vehicle aggregates for fleet traces, where records carry a
/// non-zero envelope `vehicle` tag.
#[derive(Debug, Clone, Default)]
struct VehicleAgg {
    records: u64,
    cycles: u64,
    journeys: u64,
    delivered: u64,
    discards: u64,
    losses: u64,
    rtt_samples: u64,
    /// Same-stage cloud batches this vehicle joined (elastic fleets).
    cloud_batches: u64,
}

/// Per-policy aggregates from `policy_decide` events (the pluggable
/// offload-decision layer). One entry per policy name seen.
#[derive(Debug, Clone, Default)]
struct PolicyAgg {
    /// Decision ticks this policy produced.
    decisions: u64,
    /// Ticks whose plan proposed a non-empty remote set.
    remote_decisions: u64,
    /// Ticks whose proposed remote set differed from the same
    /// (policy, vehicle) stream's previous tick — placement churn.
    flips: u64,
    /// Sum of expected VDP makespans (ns), for the mean.
    expected_vdp_sum_ns: u64,
    /// Sum of advisory Eq. 2c velocities, for the mean.
    vmax_sum: f64,
}

/// One flagged lying-RTT window.
#[derive(Debug, Clone)]
struct Anomaly {
    window_start_ns: u64,
    discards: u64,
    last_rtt_ms: f64,
    /// Virtual age of that RTT sample at the window's last discard.
    rtt_age_ns: u64,
}

/// Aggregated view of one mission's trace: reconstructed message
/// journeys, per-cycle span statistics, drop/loss lineage, and §V
/// "lying RTT" anomaly windows.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    workload: String,
    deployment: String,
    seed: u64,
    completed: Option<(bool, String)>,
    first_t_ns: u64,
    last_t_ns: u64,
    records: usize,
    cycles: u64,
    events_per_cycle: Histogram,
    journeys: Vec<Journey>,
    /// Sender discards per channel direction.
    discards: BTreeMap<String, u64>,
    /// Radio losses per channel direction.
    losses: BTreeMap<String, u64>,
    /// Queue drops per bus topic.
    bus_drops: BTreeMap<String, u64>,
    anomalies: Vec<Anomaly>,
    total_rtt_samples: u64,
    /// Scripted fault windows in `fault_begin` emission order.
    faults: Vec<FaultSpan>,
    /// `max_linear` samples from control decisions outside every
    /// fault window — the baseline the per-window speed compares to.
    speed_outside: Histogram,
    heartbeat_misses: u64,
    migration_timeouts: u64,
    /// Re-offload backoff events as `(t_ns, wait_ns, failures)`.
    backoffs: Vec<(u64, u64, u64)>,
    /// Aggregates keyed by envelope `vehicle` tag; empty for
    /// single-vehicle traces (tag 0 is never entered), so pre-fleet
    /// reports render byte-identically.
    vehicles: BTreeMap<u64, VehicleAgg>,
    /// `cloud_batch` joins across the fleet (elastic cloud only).
    cloud_batch_joins: u64,
    /// Total marginal compute charged for batched joins.
    cloud_marginal_ns: u64,
    /// `cloud_scale` transitions as `(t_ns, from, to, utilization)`.
    cloud_scales: Vec<(u64, u32, u32, f64)>,
    /// Completed checkpoint transfers as `(t_ns, bytes)`.
    checkpoints: Vec<(u64, u64)>,
    /// `degrade_enter` events as `(t_ns, cause)`.
    degrade_enters: Vec<(u64, String)>,
    /// `degrade_exit` events as `(held_ns, missed_cycles)`.
    degrade_exits: Vec<(u64, u64)>,
    /// `replica_crash` window-begin edges (t_ns).
    replica_crashes: Vec<u64>,
    /// `replica_straggle` window-begin edges (t_ns).
    replica_straggles: Vec<u64>,
    /// Heartbeat-miss emission times, for detect/recover pairing.
    heartbeat_times: Vec<u64>,
    /// `net_switch` to-remote times — the re-offload moments a
    /// recovery completes at.
    reoffload_times: Vec<u64>,
    /// Vehicles per radio region from `region_assign` (sharded fleet
    /// traces only; empty otherwise, so unsharded reports render
    /// byte-identically).
    region_vehicles: BTreeMap<u32, u64>,
    /// `region_assign` events whose serving pool is homed elsewhere.
    wan_assigned: u64,
    /// `wan_hop` admissions observed and their total surcharge.
    wan_hops: u64,
    wan_delay_ns: u64,
    /// Distinct `(from_region, to_region)` WAN routes observed.
    wan_routes: BTreeSet<(u32, u32)>,
    /// Per-policy decision aggregates from `policy_decide` events;
    /// empty for traces predating the decision layer, so their
    /// reports render byte-identically.
    policies: BTreeMap<String, PolicyAgg>,
}

/// Recovery-SLO summary computed from the resilience trace kinds
/// (`checkpoint`, `degrade_enter`/`degrade_exit`, `replica_crash`,
/// `replica_straggle`). [`TraceAnalysis::recovery_report`] returns
/// `None` unless the trace contains at least one of those kinds, so
/// pre-resilience traces render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Completed checkpoint transfers.
    pub checkpoints: u64,
    /// Total snapshot bytes streamed by those checkpoints.
    pub checkpoint_bytes: u64,
    /// Times the pipeline dropped to reduced fidelity.
    pub degrade_entries: u64,
    /// Total virtual time spent degraded (sum of exit `held_ns`).
    pub degraded_ns: u64,
    /// `degraded_ns` over the trace's virtual-time span.
    pub degraded_fraction: f64,
    /// Control cycles that missed their deadline while degraded.
    pub missed_cycles: u64,
    /// Scripted replica-crash windows observed.
    pub replica_crash_windows: u64,
    /// Scripted straggler windows observed.
    pub replica_straggle_windows: u64,
    /// Mean replica-crash-begin → first-heartbeat-miss gap; `None`
    /// when no crash window was followed by a heartbeat miss.
    pub mean_time_to_detect_ns: Option<u64>,
    /// Mean heartbeat-miss → next-re-offload gap; `None` when no
    /// heartbeat miss was followed by a re-offload.
    pub mean_time_to_recover_ns: Option<u64>,
    /// Heartbeat misses never followed by a re-offload (the outage
    /// outlived the trace).
    pub unrecovered_outages: u64,
}

impl TraceAnalysis {
    /// Reconstruct journeys, spans, and anomalies from one mission's
    /// records (emission order expected, as read from a trace file).
    pub fn from_records(records: &[TraceRecord]) -> TraceAnalysis {
        let mut a = TraceAnalysis {
            workload: String::new(),
            deployment: String::new(),
            seed: 0,
            completed: None,
            first_t_ns: records.first().map_or(0, |r| r.t_ns),
            last_t_ns: records.last().map_or(0, |r| r.t_ns),
            records: records.len(),
            cycles: 0,
            events_per_cycle: Histogram::default(),
            journeys: Vec::new(),
            discards: BTreeMap::new(),
            losses: BTreeMap::new(),
            bus_drops: BTreeMap::new(),
            anomalies: Vec::new(),
            total_rtt_samples: 0,
            faults: Vec::new(),
            speed_outside: Histogram::default(),
            heartbeat_misses: 0,
            migration_timeouts: 0,
            backoffs: Vec::new(),
            vehicles: BTreeMap::new(),
            cloud_batch_joins: 0,
            cloud_marginal_ns: 0,
            cloud_scales: Vec::new(),
            checkpoints: Vec::new(),
            degrade_enters: Vec::new(),
            degrade_exits: Vec::new(),
            replica_crashes: Vec::new(),
            replica_straggles: Vec::new(),
            heartbeat_times: Vec::new(),
            reoffload_times: Vec::new(),
            region_vehicles: BTreeMap::new(),
            wan_assigned: 0,
            wan_hops: 0,
            wan_delay_ns: 0,
            wan_routes: BTreeSet::new(),
            policies: BTreeMap::new(),
        };

        // ---- single pass: index lineage + spans + anomaly windows.
        struct MsgInfo {
            t_publish: u64,
            topic: String,
            span: SpanId,
            vehicle: u64,
            parent: MsgId,
            children: Vec<MsgId>,
            first_up_send: Option<u64>,
            up_deliver: Option<(u64, u64)>,   // (observed_t, latency)
            down_deliver: Option<(u64, u64)>, // (observed_t, latency)
            compute_ns: u64,
            discarded: bool,
            transmitted: bool,
            lost: bool,
            bus_dropped: bool,
        }
        impl MsgInfo {
            fn new(t: u64, topic: String, span: SpanId, vehicle: u64, parent: MsgId) -> MsgInfo {
                MsgInfo {
                    t_publish: t,
                    topic,
                    span,
                    vehicle,
                    parent,
                    children: Vec::new(),
                    first_up_send: None,
                    up_deliver: None,
                    down_deliver: None,
                    compute_ns: 0,
                    discarded: false,
                    transmitted: false,
                    lost: false,
                    bus_dropped: false,
                }
            }
        }
        let mut msgs: BTreeMap<u64, MsgInfo> = BTreeMap::new();
        let mut span_events: BTreeMap<u64, u64> = BTreeMap::new();

        // Lying-RTT window state.
        let mut last_rtt: Option<(u64, u64)> = None; // (t_ns, rtt_ns)
        let mut window: Option<Anomaly> = None;

        // Fault windows currently open: window id -> index in
        // `a.faults`. Events between a window's begin and end edges
        // are attributed to it.
        let mut open_faults: BTreeMap<u64, usize> = BTreeMap::new();

        // Last proposed remote set per (policy, vehicle) decision
        // stream, for counting placement flips.
        let mut last_policy_remote: BTreeMap<(String, u64), String> = BTreeMap::new();

        for rec in records {
            if !rec.span.is_none() {
                *span_events.entry(rec.span.0).or_insert(0) += 1;
            }
            if rec.vehicle != 0 {
                let v = a.vehicles.entry(rec.vehicle).or_default();
                v.records += 1;
                match &rec.event {
                    TraceEvent::SpanBegin { name, .. } if name == "cycle" => v.cycles += 1,
                    TraceEvent::ChannelSend {
                        outcome: SendKind::Discarded,
                        ..
                    } => v.discards += 1,
                    TraceEvent::ChannelLoss { .. } => v.losses += 1,
                    TraceEvent::RttSample { .. } => v.rtt_samples += 1,
                    TraceEvent::CloudBatch { .. } => v.cloud_batches += 1,
                    _ => {}
                }
            }
            match &rec.event {
                TraceEvent::MissionStart {
                    workload,
                    deployment,
                    seed,
                } => {
                    a.workload = workload.clone();
                    a.deployment = deployment.clone();
                    a.seed = *seed;
                }
                TraceEvent::MissionEnd { completed, reason } => {
                    a.completed = Some((*completed, reason.clone()));
                }
                TraceEvent::SpanBegin { name, .. } if name == "cycle" => {
                    a.cycles += 1;
                }
                TraceEvent::BusPublish {
                    topic, msg, parent, ..
                } if !msg.is_none() => {
                    msgs.entry(msg.0).or_insert_with(|| {
                        MsgInfo::new(rec.t_ns, topic.clone(), rec.span, rec.vehicle, *parent)
                    });
                    if !parent.is_none() {
                        if let Some(p) = msgs.get_mut(&parent.0) {
                            p.children.push(*msg);
                        }
                    }
                }
                TraceEvent::BusDrop { topic, msg } => {
                    *a.bus_drops.entry(topic.clone()).or_insert(0) += 1;
                    if let Some(m) = msgs.get_mut(&msg.0) {
                        m.bus_dropped = true;
                    }
                }
                TraceEvent::ChannelSend {
                    dir, outcome, msg, ..
                } => {
                    match outcome {
                        SendKind::Discarded => {
                            *a.discards.entry(dir.clone()).or_insert(0) += 1;
                            if let Some(m) = msgs.get_mut(&msg.0) {
                                m.discarded = true;
                            }
                            for &i in open_faults.values() {
                                a.faults[i].discards += 1;
                            }
                            // One more silent discard: extend (or open)
                            // the current anomaly window.
                            let w_start = rec.t_ns / ANOMALY_WINDOW_NS * ANOMALY_WINDOW_NS;
                            let fresh = match &window {
                                Some(w) => w.window_start_ns != w_start,
                                None => true,
                            };
                            if fresh {
                                if let Some(w) = window.take() {
                                    a.anomalies.push(w);
                                }
                                window = Some(Anomaly {
                                    window_start_ns: w_start,
                                    discards: 0,
                                    last_rtt_ms: f64::NAN,
                                    rtt_age_ns: 0,
                                });
                            }
                            let w = window.as_mut().expect("window just ensured");
                            w.discards += 1;
                            if let Some((t, rtt)) = last_rtt {
                                w.last_rtt_ms = rtt as f64 / 1e6;
                                w.rtt_age_ns = rec.t_ns.saturating_sub(t);
                            }
                        }
                        SendKind::Transmitted | SendKind::Held => {
                            if let Some(m) = msgs.get_mut(&msg.0) {
                                m.transmitted = true;
                                if dir == "up" && m.first_up_send.is_none() {
                                    m.first_up_send = Some(rec.t_ns);
                                }
                            }
                        }
                    }
                }
                TraceEvent::ChannelLoss { msg, dir, .. } => {
                    *a.losses.entry(dir.clone()).or_insert(0) += 1;
                    if let Some(m) = msgs.get_mut(&msg.0) {
                        m.lost = true;
                    }
                    for &i in open_faults.values() {
                        a.faults[i].losses += 1;
                    }
                }
                TraceEvent::ChannelDeliver {
                    dir,
                    msg,
                    latency_ns,
                    ..
                } => {
                    if let Some(m) = msgs.get_mut(&msg.0) {
                        let slot = if dir == "down" {
                            &mut m.down_deliver
                        } else {
                            &mut m.up_deliver
                        };
                        if slot.is_none() {
                            *slot = Some((rec.t_ns, *latency_ns));
                        }
                    }
                }
                TraceEvent::ProfileSample {
                    remote: true,
                    nanos,
                    msg,
                    ..
                } => {
                    if let Some(m) = msgs.get_mut(&msg.0) {
                        m.compute_ns += nanos;
                    }
                }
                TraceEvent::RttSample { rtt_ns } => {
                    a.total_rtt_samples += 1;
                    last_rtt = Some((rec.t_ns, *rtt_ns));
                }
                TraceEvent::ControlDecision { max_linear, .. } => {
                    if open_faults.is_empty() {
                        a.speed_outside.observe(*max_linear);
                    } else {
                        for &i in open_faults.values() {
                            a.faults[i].speed.observe(*max_linear);
                        }
                    }
                }
                TraceEvent::PolicyDecide {
                    policy,
                    remote,
                    expected_vdp_ns,
                    max_velocity,
                } => {
                    let agg = a.policies.entry(policy.clone()).or_default();
                    agg.decisions += 1;
                    if remote != "-" {
                        agg.remote_decisions += 1;
                    }
                    agg.expected_vdp_sum_ns += expected_vdp_ns;
                    agg.vmax_sum += max_velocity;
                    let key = (policy.clone(), rec.vehicle);
                    match last_policy_remote.get(&key) {
                        Some(prev) if prev != remote => {
                            a.policies.get_mut(policy).expect("just entered").flips += 1;
                        }
                        _ => {}
                    }
                    last_policy_remote.insert(key, remote.clone());
                }
                TraceEvent::FaultBegin {
                    fault,
                    window,
                    window_ns,
                } => {
                    open_faults.insert(*window, a.faults.len());
                    a.faults.push(FaultSpan {
                        window: *window,
                        fault: fault.clone(),
                        begin_ns: rec.t_ns,
                        span_ns: *window_ns,
                        closed: false,
                        losses: 0,
                        discards: 0,
                        heartbeat_misses: 0,
                        migration_timeouts: 0,
                        speed: Histogram::default(),
                    });
                }
                TraceEvent::FaultEnd { window, .. } => {
                    if let Some(i) = open_faults.remove(window) {
                        a.faults[i].closed = true;
                    }
                }
                TraceEvent::HeartbeatMiss { .. } => {
                    a.heartbeat_misses += 1;
                    a.heartbeat_times.push(rec.t_ns);
                    for &i in open_faults.values() {
                        a.faults[i].heartbeat_misses += 1;
                    }
                }
                TraceEvent::NetSwitch { to_remote: true } => {
                    a.reoffload_times.push(rec.t_ns);
                }
                TraceEvent::MigrationTimeout { .. } => {
                    a.migration_timeouts += 1;
                    for &i in open_faults.values() {
                        a.faults[i].migration_timeouts += 1;
                    }
                }
                TraceEvent::ReoffloadBackoff { wait_ns, failures } => {
                    a.backoffs.push((rec.t_ns, *wait_ns, *failures));
                }
                TraceEvent::CloudBatch { marginal_ns, .. } => {
                    a.cloud_batch_joins += 1;
                    a.cloud_marginal_ns += marginal_ns;
                }
                TraceEvent::CloudScale {
                    from_replicas,
                    to_replicas,
                    utilization,
                    ..
                } => {
                    a.cloud_scales
                        .push((rec.t_ns, *from_replicas, *to_replicas, *utilization));
                }
                TraceEvent::Checkpoint { bytes, .. } => {
                    a.checkpoints.push((rec.t_ns, *bytes));
                }
                TraceEvent::DegradeEnter { cause, .. } => {
                    a.degrade_enters.push((rec.t_ns, cause.clone()));
                }
                TraceEvent::DegradeExit {
                    held_ns,
                    missed_cycles,
                } => {
                    a.degrade_exits.push((*held_ns, *missed_cycles));
                }
                TraceEvent::ReplicaCrash { .. } => {
                    a.replica_crashes.push(rec.t_ns);
                }
                TraceEvent::ReplicaStraggle { .. } => {
                    a.replica_straggles.push(rec.t_ns);
                }
                TraceEvent::RegionAssign { region, wan, .. } => {
                    *a.region_vehicles.entry(*region).or_insert(0) += 1;
                    if *wan {
                        a.wan_assigned += 1;
                    }
                }
                TraceEvent::WanHop {
                    from_region,
                    to_region,
                    delay_ns,
                } => {
                    a.wan_hops += 1;
                    a.wan_delay_ns += delay_ns;
                    a.wan_routes.insert((*from_region, *to_region));
                }
                _ => {}
            }
        }
        if let Some(w) = window.take() {
            a.anomalies.push(w);
        }
        a.anomalies.retain(|w| {
            w.discards >= ANOMALY_MIN_DISCARDS
                && w.last_rtt_ms.is_finite()
                && w.last_rtt_ms <= HEALTHY_RTT_MS
        });

        for count in span_events.values() {
            a.events_per_cycle.observe(*count as f64);
        }

        // ---- fold lineage chains into journeys (roots in id order).
        let roots: Vec<u64> = msgs
            .iter()
            .filter(|(_, m)| m.parent.is_none())
            .map(|(id, _)| *id)
            .collect();
        for root in roots {
            // Walk the chain breadth-first, aggregating per-stage data.
            let mut chain = vec![root];
            let mut i = 0;
            while i < chain.len() {
                let kids: Vec<u64> = msgs[&chain[i]].children.iter().map(|c| c.0).collect();
                chain.extend(kids);
                i += 1;
            }
            let rootinfo = &msgs[&root];
            let (t0, topic, span) = (rootinfo.t_publish, rootinfo.topic.clone(), rootinfo.span);
            let root_vehicle = rootinfo.vehicle;

            let mut first_up_send = None;
            let mut up_deliver = None;
            let mut down_deliver = None;
            let mut compute_ns = 0u64;
            let mut last_publish = t0;
            let mut any_send = false;
            let mut discarded = false;
            let mut lost = false;
            let mut bus_dropped = false;
            let mut transmitted = false;
            for id in &chain {
                let m = &msgs[id];
                any_send |= m.transmitted || m.discarded;
                discarded |= m.discarded;
                transmitted |= m.transmitted;
                lost |= m.lost;
                bus_dropped |= m.bus_dropped;
                compute_ns += m.compute_ns;
                last_publish = last_publish.max(m.t_publish);
                if first_up_send.is_none() {
                    first_up_send = m.first_up_send;
                }
                if up_deliver.is_none() {
                    up_deliver = m.up_deliver;
                }
                if down_deliver.is_none() {
                    down_deliver = m.down_deliver;
                }
            }

            let complete = down_deliver.is_some_and(|(t, _)| last_publish >= t);
            let fate = if complete {
                Fate::Delivered
            } else if !any_send && chain.len() == 1 {
                Fate::Local
            } else if lost {
                Fate::Lost
            } else if bus_dropped {
                Fate::BusDropped
            } else if discarded && !transmitted {
                Fate::Discarded
            } else {
                Fate::InFlight
            };

            let mut stages = [None; 5];
            if complete {
                let (down_t, down_lat) = down_deliver.expect("complete implies down");
                stages[0] = first_up_send.map(|t| t.saturating_sub(t0));
                stages[1] = up_deliver.map(|(_, lat)| lat);
                stages[2] = Some(compute_ns);
                stages[3] = Some(down_lat);
                stages[4] = Some(last_publish.saturating_sub(down_t));
            }
            let end_to_end = complete.then(|| last_publish.saturating_sub(t0));

            if root_vehicle != 0 {
                let v = a.vehicles.entry(root_vehicle).or_default();
                v.journeys += 1;
                if fate == Fate::Delivered {
                    v.delivered += 1;
                }
            }
            a.journeys.push(Journey {
                root: MsgId(root),
                topic,
                span,
                t_publish: t0,
                stages,
                end_to_end,
                fate,
            });
        }

        a
    }

    /// Total reconstructed journeys (lineage roots).
    pub fn journey_count(&self) -> usize {
        self.journeys.len()
    }

    /// Journeys that delivered all the way back to the robot bus.
    pub fn complete_count(&self) -> usize {
        self.journeys
            .iter()
            .filter(|j| j.fate == Fate::Delivered)
            .count()
    }

    /// Flagged lying-RTT windows.
    pub fn anomaly_count(&self) -> usize {
        self.anomalies.len()
    }

    /// Control cycles seen (span_begin records named `cycle`).
    pub fn cycle_count(&self) -> u64 {
        self.cycles
    }

    /// Scripted fault windows seen (`fault_begin` records).
    pub fn fault_window_count(&self) -> usize {
        self.faults.len()
    }

    /// Heartbeat misses seen across the whole mission.
    pub fn heartbeat_miss_count(&self) -> u64 {
        self.heartbeat_misses
    }

    /// Migration deadline expiries seen across the whole mission.
    pub fn migration_timeout_count(&self) -> u64 {
        self.migration_timeouts
    }

    /// Re-offload backoff waits announced across the whole mission.
    pub fn backoff_count(&self) -> usize {
        self.backoffs.len()
    }

    /// Distinct non-zero envelope `vehicle` tags seen in the trace
    /// (0 for single-vehicle traces, which never tag records).
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// `policy_decide` ticks seen across the whole trace (0 for
    /// traces predating the pluggable decision layer).
    pub fn policy_decision_count(&self) -> u64 {
        self.policies.values().map(|p| p.decisions).sum()
    }

    /// Distinct offload-policy names that produced decisions in this
    /// trace, sorted.
    pub fn policy_names(&self) -> Vec<&str> {
        self.policies.keys().map(String::as_str).collect()
    }

    /// Placement flips (consecutive `policy_decide` ticks of one
    /// (policy, vehicle) stream proposing different remote sets).
    pub fn policy_flip_count(&self) -> u64 {
        self.policies.values().map(|p| p.flips).sum()
    }

    /// `cloud_batch` joins seen across the fleet (0 outside elastic
    /// fleet traces).
    pub fn cloud_batch_join_count(&self) -> u64 {
        self.cloud_batch_joins
    }

    /// `cloud_scale` replica transitions seen across the fleet.
    pub fn cloud_scale_event_count(&self) -> usize {
        self.cloud_scales.len()
    }

    /// Distinct radio regions that assigned at least one vehicle
    /// (0 outside sharded fleet traces).
    pub fn region_count(&self) -> usize {
        self.region_vehicles.len()
    }

    /// Cross-region admissions that paid the deterministic WAN hop.
    pub fn wan_hop_count(&self) -> u64 {
        self.wan_hops
    }

    /// Total WAN-hop surcharge paid across the fleet (virtual ns).
    pub fn wan_delay_ns(&self) -> u64 {
        self.wan_delay_ns
    }

    /// Per-outage recovery latencies (each heartbeat miss to the next
    /// `net_switch` back to remote) plus the count of misses never
    /// followed by a re-offload. Available for any trace with the old
    /// kinds — unlike [`TraceAnalysis::recovery_report`], which gates
    /// on the resilience kinds.
    fn reoffload_latencies(&self) -> (Vec<u64>, u64) {
        let mut recover = Vec::new();
        let mut unrecovered = 0u64;
        for &m in &self.heartbeat_times {
            match self.reoffload_times.iter().find(|&&r| r >= m) {
                Some(&r) => recover.push(r - m),
                None => unrecovered += 1,
            }
        }
        (recover, unrecovered)
    }

    /// Mean latency from a heartbeat miss to the next successful
    /// re-offload, or `None` when no miss was ever followed by one.
    pub fn mean_reoffload_latency_ns(&self) -> Option<u64> {
        let (recover, _) = self.reoffload_latencies();
        (!recover.is_empty()).then(|| recover.iter().sum::<u64>() / recover.len() as u64)
    }

    /// Recovery-SLO summary, or `None` when the trace carries none of
    /// the resilience kinds (`checkpoint`, `degrade_*`, `replica_*`).
    ///
    /// The gate deliberately ignores `heartbeat_miss`/`net_switch` —
    /// plenty of pre-resilience traces have those, and their reports
    /// must not change.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        if self.checkpoints.is_empty()
            && self.degrade_enters.is_empty()
            && self.degrade_exits.is_empty()
            && self.replica_crashes.is_empty()
            && self.replica_straggles.is_empty()
        {
            return None;
        }
        let degraded_ns: u64 = self.degrade_exits.iter().map(|(h, _)| h).sum();
        let missed_cycles: u64 = self.degrade_exits.iter().map(|(_, m)| m).sum();
        let span = self.last_t_ns.saturating_sub(self.first_t_ns);
        let degraded_fraction = if span == 0 {
            0.0
        } else {
            degraded_ns as f64 / span as f64
        };
        // Time-to-detect: each replica-crash window begin to the first
        // heartbeat miss at or after it (both streams are in emission
        // order).
        let mut detect = Vec::new();
        for &t in &self.replica_crashes {
            if let Some(&m) = self.heartbeat_times.iter().find(|&&m| m >= t) {
                detect.push(m - t);
            }
        }
        // Time-to-recover: each heartbeat miss to the next re-offload.
        let (recover, unrecovered) = self.reoffload_latencies();
        let mean = |v: &[u64]| (!v.is_empty()).then(|| v.iter().sum::<u64>() / v.len() as u64);
        Some(RecoveryReport {
            checkpoints: self.checkpoints.len() as u64,
            checkpoint_bytes: self.checkpoints.iter().map(|(_, b)| b).sum(),
            degrade_entries: self.degrade_enters.len() as u64,
            degraded_ns,
            degraded_fraction,
            missed_cycles,
            replica_crash_windows: self.replica_crashes.len() as u64,
            replica_straggle_windows: self.replica_straggles.len() as u64,
            mean_time_to_detect_ns: mean(&detect),
            mean_time_to_recover_ns: mean(&recover),
            unrecovered_outages: unrecovered,
        })
    }

    /// Render the full deterministic text report.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let span_s = (self.last_t_ns.saturating_sub(self.first_t_ns)) as f64 / 1e9;
        let _ = writeln!(out, "=== trace report ===");
        if self.workload.is_empty() {
            let _ = writeln!(out, "mission: (no mission_start record)");
        } else {
            let _ = writeln!(
                out,
                "mission: {} on {} (seed {})",
                self.workload, self.deployment, self.seed
            );
        }
        if let Some((ok, reason)) = &self.completed {
            let _ = writeln!(
                out,
                "outcome: {} ({})",
                if *ok { "completed" } else { "failed" },
                reason
            );
        }
        let _ = writeln!(
            out,
            "records: {} spanning {:.1} s of virtual time",
            self.records, span_s
        );
        let _ = writeln!(
            out,
            "cycles: {}   events/cycle: mean {:.1}, p95 {:.0}, max {:.0}",
            self.cycles,
            self.events_per_cycle.mean(),
            self.events_per_cycle.percentile(95.0),
            self.events_per_cycle.max()
        );
        let complete = self.complete_count();
        let _ = writeln!(
            out,
            "journeys: {} reconstructed, {} delivered end-to-end",
            self.journey_count(),
            complete
        );

        // ---- per-vehicle attribution (fleet traces only; the map is
        // empty for untagged traces, so pre-fleet reports are
        // byte-identical).
        if !self.vehicles.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- per-vehicle attribution ---");
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>7} {:>9} {:>10} {:>9} {:>7} {:>5} {:>7}",
                "vehicle",
                "records",
                "cycles",
                "journeys",
                "delivered",
                "discards",
                "losses",
                "rtts",
                "batches"
            );
            for (id, v) in &self.vehicles {
                let _ = writeln!(
                    out,
                    "v{:<7} {:>8} {:>7} {:>9} {:>10} {:>9} {:>7} {:>5} {:>7}",
                    id,
                    v.records,
                    v.cycles,
                    v.journeys,
                    v.delivered,
                    v.discards,
                    v.losses,
                    v.rtt_samples,
                    v.cloud_batches
                );
            }
        }

        // ---- elastic cloud (only when batch/scale events exist, so
        // fixed-cloud and single-vehicle reports are unchanged).
        if self.cloud_batch_joins > 0 || !self.cloud_scales.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- elastic cloud ---");
            let _ = writeln!(
                out,
                "batched joins: {} ({:.3} s marginal compute charged)",
                self.cloud_batch_joins,
                self.cloud_marginal_ns as f64 / 1e9
            );
            let _ = writeln!(out, "replica scale events: {}", self.cloud_scales.len());
            for (t_ns, from, to, util) in &self.cloud_scales {
                let _ = writeln!(
                    out,
                    "  t={:>8.3}s  replicas {} -> {}  (window utilization {:.2})",
                    *t_ns as f64 / 1e9,
                    from,
                    to,
                    util
                );
            }
        }

        // ---- regional sharding (only when region_assign/wan_hop
        // events exist, so unsharded fleet reports are unchanged).
        if !self.region_vehicles.is_empty() || self.wan_hops > 0 {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- regional sharding ---");
            let _ = writeln!(
                out,
                "regions: {} ({} vehicles assigned, {} served by a remote pool)",
                self.region_vehicles.len(),
                self.region_vehicles.values().sum::<u64>(),
                self.wan_assigned
            );
            for (region, vehicles) in &self.region_vehicles {
                let _ = writeln!(out, "  region r{region}: {vehicles} vehicle(s)");
            }
            let _ = writeln!(
                out,
                "wan hops: {} admissions, {:.3} s total surcharge, {} route(s)",
                self.wan_hops,
                self.wan_delay_ns as f64 / 1e9,
                self.wan_routes.len()
            );
            for (from, to) in &self.wan_routes {
                let _ = writeln!(out, "  route r{from} -> r{to}");
            }
        }

        // ---- decision layer (only when policy_decide events exist,
        // so traces predating the pluggable policies are unchanged).
        if !self.policies.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- policy decisions ---");
            let _ = writeln!(
                out,
                "{:<12} {:>9} {:>9} {:>7} {:>13} {:>10}",
                "policy", "decisions", "remote", "flips", "mean_vdp_ms", "mean_vmax"
            );
            for (name, p) in &self.policies {
                let n = p.decisions.max(1) as f64;
                let _ = writeln!(
                    out,
                    "{:<12} {:>9} {:>9} {:>7} {:>13.3} {:>10.3}",
                    name,
                    p.decisions,
                    p.remote_decisions,
                    p.flips,
                    p.expected_vdp_sum_ns as f64 / n / 1e6,
                    p.vmax_sum / n
                );
            }
        }

        // ---- waterfall.
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "--- latency waterfall ({complete} delivered journeys) ---"
        );
        if complete == 0 {
            let _ = writeln!(
                out,
                "(no journey delivered end-to-end; nothing to decompose)"
            );
        } else {
            let mut hists: Vec<Histogram> = vec![Histogram::default(); STAGES.len() + 1];
            for j in &self.journeys {
                if j.fate != Fate::Delivered {
                    continue;
                }
                for (i, d) in j.stages.iter().enumerate() {
                    if let Some(d) = d {
                        hists[i].observe(*d as f64 / 1e6);
                    }
                }
                if let Some(e) = j.end_to_end {
                    hists[STAGES.len()].observe(e as f64 / 1e6);
                }
            }
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>9} {:>9} {:>9} {:>9}",
                "stage", "count", "mean_ms", "p50_ms", "p95_ms", "max_ms"
            );
            for (i, name) in STAGES.iter().chain(["end-to-end"].iter()).enumerate() {
                let h = &hists[i];
                let _ = writeln!(
                    out,
                    "{:<16} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    name,
                    h.count(),
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.max()
                );
            }
        }

        // ---- critical path.
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "--- critical path (which stage dominated each delivered journey) ---"
        );
        if complete == 0 {
            let _ = writeln!(out, "(no delivered journeys)");
        } else {
            let mut dominated = [0u64; 5];
            for j in &self.journeys {
                if let Some(i) = j.critical_stage() {
                    dominated[i] += 1;
                }
            }
            let total: u64 = dominated.iter().sum();
            let _ = writeln!(out, "{:<16} {:>9} {:>7}", "stage", "dominated", "share");
            for (i, name) in STAGES.iter().enumerate() {
                let share = if total == 0 {
                    0.0
                } else {
                    dominated[i] as f64 * 100.0 / total as f64
                };
                let _ = writeln!(out, "{:<16} {:>9} {:>6.1}%", name, dominated[i], share);
            }
        }

        // ---- drop & loss lineage.
        let _ = writeln!(out);
        let _ = writeln!(out, "--- drop & loss lineage ---");
        let fmt_map = |map: &BTreeMap<String, u64>| -> String {
            if map.is_empty() {
                "none".to_string()
            } else {
                map.iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        let _ = writeln!(out, "sender discards: {}", fmt_map(&self.discards));
        let _ = writeln!(out, "radio losses:    {}", fmt_map(&self.losses));
        let _ = writeln!(out, "bus queue drops: {}", fmt_map(&self.bus_drops));
        let mut fates: BTreeMap<Fate, u64> = BTreeMap::new();
        for j in &self.journeys {
            *fates.entry(j.fate).or_insert(0) += 1;
        }
        let fate_line = if fates.is_empty() {
            "none".to_string()
        } else {
            fates
                .iter()
                .map(|(f, n)| format!("{}={n}", f.as_str()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "journey fates:   {fate_line}");
        // The undelivered journeys, each with its root and fate — the
        // lineage answer to "where did my message go?".
        for j in &self.journeys {
            if matches!(j.fate, Fate::Discarded | Fate::Lost | Fate::BusDropped) {
                let _ = writeln!(
                    out,
                    "  {} `{}` published at {:.3} s in {} -> {}",
                    j.root,
                    j.topic,
                    j.t_publish as f64 / 1e9,
                    j.span,
                    j.fate.as_str()
                );
            }
        }

        // ---- fault attribution.
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "--- fault windows (scripted faults and what the trace blames on them) ---"
        );
        if self.faults.is_empty() {
            let _ = writeln!(out, "none scripted");
        } else {
            for w in &self.faults {
                let t0 = w.begin_ns as f64 / 1e9;
                let dur = w.span_ns as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "#{} {:<13} [{:6.1} s, {:6.1} s){}",
                    w.window,
                    w.fault,
                    t0,
                    t0 + dur,
                    if w.closed {
                        ""
                    } else {
                        "  (still open at trace end)"
                    }
                );
                let _ = writeln!(
                    out,
                    "  inside: {} radio losses, {} sender discards, {} heartbeat misses, \
                     {} migration timeouts",
                    w.losses, w.discards, w.heartbeat_misses, w.migration_timeouts
                );
                let inside = w.speed.mean();
                let outside = self.speed_outside.mean();
                if w.speed.count() > 0 && self.speed_outside.count() > 0 {
                    let _ = writeln!(
                        out,
                        "  speed cap: mean {:.3} m/s inside vs {:.3} m/s outside fault windows",
                        inside, outside
                    );
                }
            }
            let blamed: u64 = self.faults.iter().map(|w| w.losses + w.discards).sum();
            let total: u64 =
                self.losses.values().sum::<u64>() + self.discards.values().sum::<u64>();
            let _ = writeln!(
                out,
                "{} of {} dropped/discarded datagrams fell inside a fault window",
                blamed.min(total),
                total
            );
        }
        if !self.backoffs.is_empty() {
            let waits = self
                .backoffs
                .iter()
                .map(|(_, wait, _)| format!("{:.1} s", *wait as f64 / 1e9))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "re-offload backoffs: {} (waits {})",
                self.backoffs.len(),
                waits
            );
        }

        // ---- anomalies.
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "--- anomalies: lying-RTT windows (rtt healthy while sender discards) ---"
        );
        if self.anomalies.is_empty() {
            let _ = writeln!(out, "none detected");
        } else {
            for w in &self.anomalies {
                let t0 = w.window_start_ns as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "[{:6.1} s, {:6.1} s): {} datagrams discarded while last RTT reads {:.1} ms \
                     ({:.1} s stale) -> RTT metric lies",
                    t0,
                    t0 + ANOMALY_WINDOW_NS as f64 / 1e9,
                    w.discards,
                    w.last_rtt_ms,
                    w.rtt_age_ns as f64 / 1e9
                );
            }
            let _ = writeln!(
                out,
                "{} window(s) where RTT telemetry ({} samples total) hid sender-side loss",
                self.anomalies.len(),
                self.total_rtt_samples
            );
        }

        // ---- recovery SLOs (only when the resilience kinds are
        // present, so earlier traces render byte-identically).
        if let Some(r) = self.recovery_report() {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- recovery SLOs ---");
            let _ = writeln!(
                out,
                "checkpoints: {} completed ({} snapshot bytes streamed)",
                r.checkpoints, r.checkpoint_bytes
            );
            let _ = writeln!(
                out,
                "replica fault windows: {} crash, {} straggle",
                r.replica_crash_windows, r.replica_straggle_windows
            );
            let _ = writeln!(
                out,
                "degraded mode: {} entries, {:.3} s held ({:.1}% of trace), {} missed cycles",
                r.degrade_entries,
                r.degraded_ns as f64 / 1e9,
                r.degraded_fraction * 100.0,
                r.missed_cycles
            );
            for (t_ns, cause) in &self.degrade_enters {
                let _ = writeln!(
                    out,
                    "  entered at {:.3} s (cause: {cause})",
                    *t_ns as f64 / 1e9
                );
            }
            match r.mean_time_to_detect_ns {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "time-to-detect: mean {:.3} s (replica crash -> heartbeat miss)",
                        d as f64 / 1e9
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "time-to-detect: n/a (no heartbeat miss followed a replica crash)"
                    );
                }
            }
            match r.mean_time_to_recover_ns {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "time-to-recover: mean {:.3} s (heartbeat miss -> re-offload), \
                         {} outage(s) unrecovered at trace end",
                        d as f64 / 1e9,
                        r.unrecovered_outages
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "time-to-recover: n/a ({} outage(s) unrecovered at trace end)",
                        r.unrecovered_outages
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ms: u64, seq: u64, span: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns: t_ms * 1_000_000,
            seq,
            span: SpanId(span),
            vehicle: 0,
            event,
        }
    }

    fn publish(topic: &str, msg: u64, parent: u64) -> TraceEvent {
        TraceEvent::BusPublish {
            topic: topic.into(),
            bytes: 100,
            fanout: 1,
            msg: MsgId(msg),
            parent: MsgId(parent),
        }
    }

    /// One complete offload journey: scan publish -> uplink -> remote
    /// republish -> remote compute -> cmd publish -> downlink ->
    /// robot republish.
    fn complete_journey() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                1,
                TraceEvent::SpanBegin {
                    span: SpanId(1),
                    name: "cycle".into(),
                    index: 0,
                },
            ),
            rec(0, 1, 1, publish("scan", 1, 0)),
            rec(
                1,
                2,
                1,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq: 0,
                    bytes: 100,
                    outcome: SendKind::Transmitted,
                    msg: MsgId(1),
                },
            ),
            rec(
                13,
                3,
                1,
                TraceEvent::ChannelDeliver {
                    dir: "up".into(),
                    seq: 0,
                    msg: MsgId(1),
                    latency_ns: 12_000_000,
                },
            ),
            rec(13, 4, 1, publish("scan", 2, 1)),
            rec(
                53,
                5,
                1,
                TraceEvent::ProfileSample {
                    node: "Slam".into(),
                    remote: true,
                    nanos: 40_000_000,
                    msg: MsgId(2),
                },
            ),
            rec(53, 6, 1, publish("cmd_vel", 3, 2)),
            rec(
                54,
                7,
                1,
                TraceEvent::ChannelSend {
                    dir: "down".into(),
                    seq: 0,
                    bytes: 20,
                    outcome: SendKind::Transmitted,
                    msg: MsgId(3),
                },
            ),
            rec(
                64,
                8,
                1,
                TraceEvent::ChannelDeliver {
                    dir: "down".into(),
                    seq: 0,
                    msg: MsgId(3),
                    latency_ns: 10_000_000,
                },
            ),
            rec(65, 9, 1, publish("cmd_vel", 4, 3)),
            rec(200, 10, 1, TraceEvent::SpanEnd { span: SpanId(1) }),
        ]
    }

    #[test]
    fn reconstructs_a_complete_journey() {
        let a = TraceAnalysis::from_records(&complete_journey());
        assert_eq!(a.journey_count(), 1);
        assert_eq!(a.complete_count(), 1);
        assert_eq!(a.cycle_count(), 1);
        let j = &a.journeys[0];
        assert_eq!(j.fate, Fate::Delivered);
        assert_eq!(j.stages[0], Some(1_000_000)); // publish->uplink
        assert_eq!(j.stages[1], Some(12_000_000)); // uplink air
        assert_eq!(j.stages[2], Some(40_000_000)); // cloud compute
        assert_eq!(j.stages[3], Some(10_000_000)); // downlink air
        assert_eq!(j.stages[4], Some(1_000_000)); // delivery
        assert_eq!(j.end_to_end, Some(65_000_000));
        assert_eq!(j.critical_stage(), Some(2)); // compute dominates
        let report = a.render_report();
        assert!(report.contains("cloud compute"));
        assert!(report.contains("none detected"));
    }

    #[test]
    fn classifies_discard_and_loss_fates() {
        let mut records = vec![
            rec(0, 0, 0, publish("scan", 1, 0)),
            rec(
                1,
                1,
                0,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq: 0,
                    bytes: 100,
                    outcome: SendKind::Discarded,
                    msg: MsgId(1),
                },
            ),
            rec(10, 2, 0, publish("scan", 2, 0)),
            rec(
                11,
                3,
                0,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq: 1,
                    bytes: 100,
                    outcome: SendKind::Transmitted,
                    msg: MsgId(2),
                },
            ),
            rec(
                12,
                4,
                0,
                TraceEvent::ChannelLoss {
                    dir: "up".into(),
                    seq: 1,
                    msg: MsgId(2),
                },
            ),
            rec(20, 5, 0, publish("scan", 3, 0)),
        ];
        records.sort_by_key(|r| r.seq);
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.journey_count(), 3);
        assert_eq!(a.complete_count(), 0);
        let fates: Vec<Fate> = a.journeys.iter().map(|j| j.fate).collect();
        assert_eq!(fates, vec![Fate::Discarded, Fate::Lost, Fate::Local]);
        let report = a.render_report();
        assert!(report.contains("sender discards: up=1"));
        assert!(report.contains("radio losses:    up=1"));
        assert!(report.contains("msg#1 `scan`"));
    }

    #[test]
    fn lying_rtt_needs_healthy_rtt_and_enough_discards() {
        let discard = |seq: u64, t_ms: u64, msg: u64| {
            rec(
                t_ms,
                seq,
                0,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq,
                    bytes: 100,
                    outcome: SendKind::Discarded,
                    msg: MsgId(msg),
                },
            )
        };
        // Healthy RTT then a burst of discards in one window: flagged.
        let mut records = vec![rec(100, 0, 0, TraceEvent::RttSample { rtt_ns: 24_000_000 })];
        for i in 0..4 {
            records.push(discard(i + 1, 1_200 + i * 10, i + 1));
        }
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.anomaly_count(), 1);
        let report = a.render_report();
        assert!(report.contains("RTT metric lies"));
        assert!(report.contains("24.0 ms"));

        // Too few discards: not flagged.
        let few = vec![
            rec(100, 0, 0, TraceEvent::RttSample { rtt_ns: 24_000_000 }),
            discard(1, 1_200, 1),
            discard(2, 1_210, 2),
        ];
        assert_eq!(TraceAnalysis::from_records(&few).anomaly_count(), 0);

        // Unhealthy RTT (the monitor already sees trouble): not lying.
        let honest = vec![
            rec(
                100,
                0,
                0,
                TraceEvent::RttSample {
                    rtt_ns: 900_000_000,
                },
            ),
            discard(1, 1_200, 1),
            discard(2, 1_210, 2),
            discard(3, 1_220, 3),
            discard(4, 1_230, 4),
        ];
        assert_eq!(TraceAnalysis::from_records(&honest).anomaly_count(), 0);

        // No RTT sample at all: nothing to lie.
        let blind = vec![
            discard(0, 1_200, 1),
            discard(1, 1_210, 2),
            discard(2, 1_220, 3),
        ];
        assert_eq!(TraceAnalysis::from_records(&blind).anomaly_count(), 0);
    }

    #[test]
    fn fault_windows_attribute_losses_and_speed() {
        let records = vec![
            // Healthy cycle before the fault: full speed, no loss.
            rec(
                0,
                0,
                0,
                TraceEvent::ControlDecision {
                    local_vdp_ns: 1,
                    cloud_vdp_ns: 1,
                    bandwidth: 5.0,
                    direction: 0.1,
                    vdp_remote: true,
                    max_linear: 0.15,
                    net_decision: "hold".into(),
                },
            ),
            rec(
                1_000,
                1,
                0,
                TraceEvent::FaultBegin {
                    fault: "blackout".into(),
                    window: 0,
                    window_ns: 2_000_000_000,
                },
            ),
            rec(
                1_100,
                2,
                0,
                TraceEvent::ChannelLoss {
                    dir: "up".into(),
                    seq: 0,
                    msg: MsgId(0),
                },
            ),
            rec(
                1_200,
                3,
                0,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq: 1,
                    bytes: 10,
                    outcome: SendKind::Discarded,
                    msg: MsgId(0),
                },
            ),
            rec(
                1_300,
                4,
                0,
                TraceEvent::HeartbeatMiss {
                    silence_ns: 1_600_000_000,
                },
            ),
            rec(
                1_400,
                5,
                0,
                TraceEvent::ControlDecision {
                    local_vdp_ns: 1,
                    cloud_vdp_ns: 1,
                    bandwidth: 0.0,
                    direction: 0.0,
                    vdp_remote: false,
                    max_linear: 0.08,
                    net_decision: "to_local".into(),
                },
            ),
            rec(
                3_000,
                6,
                0,
                TraceEvent::FaultEnd {
                    fault: "blackout".into(),
                    window: 0,
                },
            ),
            rec(
                3_100,
                7,
                0,
                TraceEvent::ChannelLoss {
                    dir: "up".into(),
                    seq: 2,
                    msg: MsgId(0),
                },
            ),
            rec(
                5_000,
                8,
                0,
                TraceEvent::ReoffloadBackoff {
                    wait_ns: 2_000_000_000,
                    failures: 1,
                },
            ),
        ];
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.fault_window_count(), 1);
        assert_eq!(a.heartbeat_miss_count(), 1);
        assert_eq!(a.backoff_count(), 1);
        let w = &a.faults[0];
        assert!(w.closed);
        assert_eq!(w.losses, 1, "post-window loss must not be blamed on it");
        assert_eq!(w.discards, 1);
        assert_eq!(w.heartbeat_misses, 1);
        assert_eq!(w.speed.count(), 1);
        assert_eq!(a.speed_outside.count(), 1);
        let report = a.render_report();
        assert!(report.contains("#0 blackout"));
        assert!(report.contains("1 radio losses, 1 sender discards, 1 heartbeat misses"));
        assert!(report.contains("speed cap: mean 0.080 m/s inside vs 0.150 m/s outside"));
        assert!(report.contains("2 of 3 dropped/discarded datagrams fell inside a fault window"));
        assert!(report.contains("re-offload backoffs: 1 (waits 2.0 s)"));
    }

    #[test]
    fn report_is_deterministic() {
        let records = complete_journey();
        let a = TraceAnalysis::from_records(&records).render_report();
        let b = TraceAnalysis::from_records(&records).render_report();
        assert_eq!(a, b);
    }

    #[test]
    fn untagged_traces_render_no_vehicle_section() {
        let a = TraceAnalysis::from_records(&complete_journey());
        assert_eq!(a.vehicle_count(), 0);
        assert!(!a.render_report().contains("per-vehicle attribution"));
    }

    #[test]
    fn fleet_traces_attribute_per_vehicle() {
        // Vehicle 1 delivers a full journey; vehicle 2 only discards.
        let mut records: Vec<TraceRecord> = complete_journey()
            .into_iter()
            .map(|r| TraceRecord { vehicle: 1, ..r })
            .collect();
        records.push(TraceRecord {
            vehicle: 2,
            ..rec(300, 11, 0, publish("scan", 50, 0))
        });
        records.push(TraceRecord {
            vehicle: 2,
            ..rec(
                301,
                12,
                0,
                TraceEvent::ChannelSend {
                    dir: "up".into(),
                    seq: 9,
                    bytes: 100,
                    outcome: SendKind::Discarded,
                    msg: MsgId(50),
                },
            )
        });
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.vehicle_count(), 2);
        let v1 = &a.vehicles[&1];
        assert_eq!((v1.cycles, v1.journeys, v1.delivered), (1, 1, 1));
        let v2 = &a.vehicles[&2];
        assert_eq!((v2.journeys, v2.delivered, v2.discards), (1, 0, 1));
        let report = a.render_report();
        assert!(report.contains("per-vehicle attribution"));
        assert!(report.contains("v1"));
        assert!(report.contains("v2"));
        // No elastic cloud events: the section must not render.
        assert!(!report.contains("elastic cloud"));
        // No region events either: the sharding section must not
        // render for unsharded fleet traces.
        assert!(!report.contains("regional sharding"));
        assert_eq!(a.region_count(), 0);
    }

    #[test]
    fn sharded_traces_report_regions_and_wan_hops() {
        let records = vec![
            rec(
                0,
                0,
                0,
                TraceEvent::RegionAssign {
                    region: 0,
                    cloud_pool: 0,
                    wan: false,
                },
            ),
            rec(
                1,
                1,
                0,
                TraceEvent::RegionAssign {
                    region: 1,
                    cloud_pool: 0,
                    wan: true,
                },
            ),
            rec(
                200_000_000,
                2,
                0,
                TraceEvent::WanHop {
                    from_region: 1,
                    to_region: 0,
                    delay_ns: 10_000_000,
                },
            ),
            rec(
                400_000_000,
                3,
                0,
                TraceEvent::WanHop {
                    from_region: 1,
                    to_region: 0,
                    delay_ns: 10_000_000,
                },
            ),
        ];
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.region_count(), 2);
        assert_eq!(a.wan_hop_count(), 2);
        assert_eq!(a.wan_delay_ns(), 20_000_000);
        let report = a.render_report();
        assert!(report.contains("regional sharding"));
        assert!(report.contains("region r1: 1 vehicle(s)"));
        assert!(report.contains("route r1 -> r0"));
        assert!(report.contains("1 served by a remote pool"));
    }

    #[test]
    fn policy_section_requires_policy_decide_events() {
        // A pre-decision-layer trace must render without the section
        // and count zero decisions.
        let legacy = vec![rec(5_000, 1, 0, TraceEvent::NetSwitch { to_remote: true })];
        let a = TraceAnalysis::from_records(&legacy);
        assert_eq!(a.policy_decision_count(), 0);
        assert!(a.policy_names().is_empty());
        assert!(!a.render_report().contains("policy decisions"));
    }

    #[test]
    fn policy_section_aggregates_decisions_and_flips() {
        let decide = |policy: &str, remote: &str| TraceEvent::PolicyDecide {
            policy: policy.into(),
            remote: remote.into(),
            expected_vdp_ns: 100_000_000,
            max_velocity: 0.5,
        };
        let records = vec![
            rec(200, 0, 0, decide("algorithm1", "costmap_gen+path_tracking")),
            rec(400, 1, 0, decide("algorithm1", "costmap_gen+path_tracking")),
            rec(600, 2, 0, decide("algorithm1", "-")),
            rec(800, 3, 0, decide("bandit", "-")),
        ];
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.policy_decision_count(), 4);
        assert_eq!(a.policy_names(), vec!["algorithm1", "bandit"]);
        // algorithm1 flipped once (remote -> local); the bandit's
        // single tick has no predecessor, so no flip.
        assert_eq!(a.policy_flip_count(), 1);
        let rendered = a.render_report();
        assert!(rendered.contains("policy decisions"));
        assert!(rendered.contains("algorithm1"));
        assert!(rendered.contains("bandit"));
    }

    #[test]
    fn recovery_report_requires_a_resilience_kind() {
        // heartbeat_miss + net_switch alone (the pre-resilience chaos
        // vocabulary) must not trigger the section.
        let legacy = vec![
            rec(
                1_000,
                0,
                0,
                TraceEvent::HeartbeatMiss {
                    silence_ns: 1_600_000_000,
                },
            ),
            rec(5_000, 1, 0, TraceEvent::NetSwitch { to_remote: true }),
        ];
        let a = TraceAnalysis::from_records(&legacy);
        assert!(a.recovery_report().is_none());
        assert!(!a.render_report().contains("recovery SLOs"));
    }

    #[test]
    fn recovery_report_computes_the_slos() {
        let records = vec![
            rec(
                0,
                0,
                0,
                TraceEvent::Checkpoint {
                    bytes: 5184,
                    elapsed_ns: 40_000_000,
                },
            ),
            rec(
                2_000,
                1,
                0,
                TraceEvent::ReplicaCrash {
                    replicas: 1,
                    window: 0,
                    window_ns: 4_000_000_000,
                },
            ),
            rec(
                3_000,
                2,
                0,
                TraceEvent::HeartbeatMiss {
                    silence_ns: 1_600_000_000,
                },
            ),
            rec(
                4_000,
                3,
                0,
                TraceEvent::DegradeEnter {
                    cause: "blackout".into(),
                    slam_particles: 4,
                    dwa_samples: 100,
                },
            ),
            rec(
                9_000,
                4,
                0,
                TraceEvent::DegradeExit {
                    held_ns: 5_000_000_000,
                    missed_cycles: 0,
                },
            ),
            rec(10_000, 5, 0, TraceEvent::NetSwitch { to_remote: true }),
            rec(
                12_000,
                6,
                0,
                TraceEvent::ReplicaStraggle {
                    factor: 2.5,
                    window: 1,
                    window_ns: 2_000_000_000,
                },
            ),
            rec(
                13_000,
                7,
                0,
                TraceEvent::HeartbeatMiss {
                    silence_ns: 1_600_000_000,
                },
            ),
        ];
        let a = TraceAnalysis::from_records(&records);
        let r = a.recovery_report().expect("resilience kinds present");
        assert_eq!((r.checkpoints, r.checkpoint_bytes), (1, 5184));
        assert_eq!(r.degrade_entries, 1);
        assert_eq!(r.degraded_ns, 5_000_000_000);
        assert_eq!(r.missed_cycles, 0);
        assert_eq!(r.replica_crash_windows, 1);
        assert_eq!(r.replica_straggle_windows, 1);
        // Crash at 2 s, first miss at 3 s: 1 s to detect.
        assert_eq!(r.mean_time_to_detect_ns, Some(1_000_000_000));
        // Miss at 3 s recovers at the 10 s re-offload (7 s); the 13 s
        // miss never recovers.
        assert_eq!(r.mean_time_to_recover_ns, Some(7_000_000_000));
        assert_eq!(r.unrecovered_outages, 1);
        // Degraded fraction over the 13 s trace span.
        assert!((r.degraded_fraction - 5.0 / 13.0).abs() < 1e-9);
        let report = a.render_report();
        assert!(report.contains("--- recovery SLOs ---"), "{report}");
        assert!(
            report.contains("checkpoints: 1 completed (5184"),
            "{report}"
        );
        assert!(report.contains("1 crash, 1 straggle"), "{report}");
        assert!(report.contains("time-to-detect: mean 1.000 s"), "{report}");
        assert!(report.contains("time-to-recover: mean 7.000 s"), "{report}");
        assert!(report.contains("1 outage(s) unrecovered"), "{report}");
    }

    #[test]
    fn elastic_cloud_events_render_attributed_section() {
        let mut records: Vec<TraceRecord> = complete_journey()
            .into_iter()
            .map(|r| TraceRecord { vehicle: 1, ..r })
            .collect();
        records.push(TraceRecord {
            vehicle: 2,
            ..rec(
                400,
                20,
                0,
                TraceEvent::CloudBatch {
                    stage: "slam".into(),
                    occupancy: 2,
                    window: 2,
                    marginal_ns: 6_000_000,
                },
            )
        });
        records.push(TraceRecord {
            vehicle: 1,
            ..rec(
                410,
                21,
                0,
                TraceEvent::CloudScale {
                    from_replicas: 1,
                    to_replicas: 2,
                    utilization: 1.5,
                    window: 3,
                },
            )
        });
        let a = TraceAnalysis::from_records(&records);
        assert_eq!(a.cloud_batch_join_count(), 1);
        assert_eq!(a.cloud_scale_event_count(), 1);
        assert_eq!(a.vehicles[&2].cloud_batches, 1);
        let report = a.render_report();
        assert!(report.contains("--- elastic cloud ---"), "{report}");
        assert!(report.contains("batched joins: 1"), "{report}");
        assert!(report.contains("replicas 1 -> 2"), "{report}");
    }
}
