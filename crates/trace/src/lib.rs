//! # lgv-trace
//!
//! Virtual-time observability for the LGV offloading stack: structured
//! trace events, pluggable sinks, and a metrics registry — with **no
//! dependencies** (not even on `lgv-types`), so every crate in the
//! workspace can emit events without dependency cycles.
//!
//! ## Design
//!
//! The central handle is the [`Tracer`]: a cheap, cloneable object
//! every instrumented component holds. All clones share one **sink
//! list** (a single JSONL file or metrics registry sees the
//! interleaved stream of the whole stack) and one **emission
//! counter** (`seq`, a total order over the run). The **virtual
//! clock**, the **current-span register**, and the **span/msg id
//! allocators** live one level down, in a *family* shared by plain
//! clones but forked by [`Tracer::for_vehicle`]: every fleet vehicle
//! gets its own clock and id space, so sessions stepped on different
//! worker threads can never race each other's timestamps or span
//! attribution. Components whose APIs carry no time parameter (e.g.
//! the bus publish path) still emit correctly-timestamped events —
//! they hold a clone from their own session's family.
//!
//! A disabled tracer (the [`Tracer::default`]) is a no-op: emission
//! sites pay one `Option` check and, via [`Tracer::emit_with`], build
//! no event at all.
//!
//! ## Determinism
//!
//! Timestamps are virtual time, the emission sequence is a plain
//! counter, and the JSON encoding is fixed-order with shortest-
//! round-trip floats — so for a fixed mission seed the JSONL output is
//! **byte-for-byte identical** across runs. See `docs/OBSERVABILITY.md`
//! for the schema and the replay workflow built on that guarantee.
//! For fleets stepped by several worker threads the guarantee is
//! per-vehicle: each vehicle's record subsequence (its timestamps,
//! span/msg ids, and relative order) is byte-identical across runs
//! and thread counts, while the global `seq` interleaving between
//! vehicles follows the OS schedule — sort by `(vehicle, seq)` and
//! drop `seq` to compare threaded fleet traces.
//!
//! ```
//! use lgv_trace::{RingBufferSink, TraceEvent, Tracer};
//!
//! let tracer = Tracer::enabled();
//! let ring = tracer.attach(RingBufferSink::new(16));
//!
//! tracer.set_time_ns(200_000_000); // the engine advances the clock
//! tracer.emit(TraceEvent::RttSample { rtt_ns: 24_000_000 });
//!
//! let ring = ring.lock().unwrap();
//! let rec = ring.records().next().unwrap();
//! assert_eq!(rec.t_ns, 200_000_000);
//! assert_eq!(rec.event, TraceEvent::RttSample { rtt_ns: 24_000_000 });
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analyze;
mod event;
mod metrics;
pub mod prof;
mod reader;
mod sink;
mod span;

pub use analyze::{RecoveryReport, TraceAnalysis};
pub use event::{EventCategory, SendKind, TraceEvent, TraceRecord};
pub use metrics::{Histogram, MetricsRegistry, StreamingHistogram};
pub use reader::{ParseError, TraceReader};
pub use sink::{JsonlSink, NullSink, RingBufferSink, TraceSink};
pub use span::{MsgId, SpanId};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sink shared between the tracer and the code that inspects it
/// after the run.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// State shared by *every* clone of a tracer, whatever its vehicle:
/// the sink list and the global emission counter.
struct TracerInner {
    /// Emission counter (total order over the whole run).
    seq: AtomicU64,
    sinks: Mutex<Vec<SharedSink>>,
}

/// Per-vehicle-family registers. Plain clones share their family;
/// [`Tracer::for_vehicle`] forks a fresh one, so fleet sessions
/// stepped by different worker threads cannot race each other's
/// clock, span attribution, or id allocation.
struct FamilyCells {
    /// Virtual time in nanoseconds for this family.
    clock_ns: AtomicU64,
    /// Next message-lineage id (local ids start at 1; 0 is
    /// [`MsgId::NONE`]; emitted ids carry the vehicle in high bits).
    next_msg: AtomicU64,
    /// Next span id (same scheme as `next_msg`).
    next_span: AtomicU64,
    /// The span currently open (0 when none). A session's loop is
    /// single-threaded, so a single cell — not a stack — suffices.
    current_span: AtomicU64,
}

impl FamilyCells {
    fn new(clock_ns: u64) -> Self {
        FamilyCells {
            clock_ns: AtomicU64::new(clock_ns),
            next_msg: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            current_span: AtomicU64::new(0),
        }
    }
}

/// Bit position of the vehicle tag in span/msg ids: each family
/// allocates locally (no cross-thread contention, deterministic per
/// vehicle) and ids stay globally unique because the vehicle id is
/// folded into the high bits. Vehicle 0 — single-vehicle runs — keeps
/// plain small ids, so solo traces are unchanged.
const VEHICLE_ID_SHIFT: u32 = 40;

#[derive(Clone)]
struct Enabled {
    shared: Arc<TracerInner>,
    cells: Arc<FamilyCells>,
}

/// The cloneable tracing handle held by every instrumented component.
///
/// See the [crate docs](crate) for the sharing model. A default
/// tracer is disabled; [`Tracer::enabled`] plus [`Tracer::attach`]
/// turns tracing on.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Enabled>,
    /// Fleet vehicle (tenant) stamped into every record this clone
    /// emits; 0 = unattributed (single-vehicle runs, fleet-level
    /// components). Per-clone, like the family cells and unlike the
    /// shared sink/seq state: a fleet driver derives one
    /// [`Tracer::for_vehicle`] clone per session and hands it to all
    /// of that session's components.
    vehicle: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(e) => f
                .debug_struct("Tracer")
                .field("time_ns", &e.cells.clock_ns.load(Ordering::Relaxed))
                .field("events", &e.shared.seq.load(Ordering::Relaxed))
                .finish(),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A disabled tracer: every emission is a no-op. This is the
    /// default every component starts with.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            vehicle: 0,
        }
    }

    /// An enabled tracer with an empty sink list and the clock at 0.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Enabled {
                shared: Arc::new(TracerInner {
                    seq: AtomicU64::new(0),
                    sinks: Mutex::new(Vec::new()),
                }),
                cells: Arc::new(FamilyCells::new(0)),
            }),
            vehicle: 0,
        }
    }

    /// A clone of this tracer whose emissions are attributed to fleet
    /// vehicle `vehicle` (see [`TraceRecord::vehicle`]). The clone
    /// shares the sequence counter and sinks with `self`, so a
    /// fleet's per-vehicle streams interleave in one total order —
    /// but owns a fresh clock, span register, and span/msg id space
    /// (seeded from `self`'s clock), so sessions stepped on different
    /// worker threads stay per-vehicle deterministic. Asking for the
    /// vehicle `self` already carries returns a plain clone.
    pub fn for_vehicle(&self, vehicle: u64) -> Self {
        let inner = self.inner.as_ref().map(|e| {
            if vehicle == self.vehicle {
                e.clone()
            } else {
                Enabled {
                    shared: e.shared.clone(),
                    cells: Arc::new(FamilyCells::new(e.cells.clock_ns.load(Ordering::Relaxed))),
                }
            }
        });
        Tracer { inner, vehicle }
    }

    /// Fold this clone's vehicle into a family-local id so ids stay
    /// globally unique without cross-family coordination.
    fn tag_id(&self, local: u64) -> u64 {
        (self.vehicle << VEHICLE_ID_SHIFT) | local
    }

    /// The vehicle id stamped on this clone's emissions (0 = none).
    pub fn vehicle(&self) -> u64 {
        self.vehicle
    }

    /// Whether emissions go anywhere at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a sink, returning a shared handle for later inspection
    /// (e.g. reading a ring buffer or dumping metrics after the run).
    ///
    /// On a disabled tracer the sink is still returned but will never
    /// receive events.
    pub fn attach<S: TraceSink + Send + 'static>(&self, sink: S) -> Arc<Mutex<S>> {
        let shared = Arc::new(Mutex::new(sink));
        self.add_sink(shared.clone());
        shared
    }

    /// Attach an already-shared sink.
    pub fn add_sink(&self, sink: SharedSink) {
        if let Some(e) = &self.inner {
            e.shared.sinks.lock().unwrap().push(sink);
        }
    }

    /// Advance the shared virtual clock (nanoseconds since the
    /// simulation epoch). Called by whoever owns time — the mission
    /// engine — so that emission sites without a time parameter stamp
    /// correctly.
    pub fn set_time_ns(&self, ns: u64) {
        if let Some(e) = &self.inner {
            e.cells.clock_ns.store(ns, Ordering::Relaxed);
        }
    }

    /// The current virtual time (0 when disabled).
    pub fn time_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |e| e.cells.clock_ns.load(Ordering::Relaxed))
    }

    /// Emit an event stamped with the shared clock.
    pub fn emit(&self, event: TraceEvent) {
        if self.inner.is_some() {
            let t_ns = self.time_ns();
            self.emit_record(t_ns, event);
        }
    }

    /// Emit an event stamped with an explicit virtual time — for call
    /// sites that already receive `now` as a parameter.
    pub fn emit_at(&self, t_ns: u64, event: TraceEvent) {
        if self.inner.is_some() {
            self.emit_record(t_ns, event);
        }
    }

    /// Emit lazily: the event (and any `String` it allocates) is only
    /// built when the tracer is enabled. Use on hot paths.
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if self.inner.is_some() {
            let t_ns = self.time_ns();
            self.emit_record(t_ns, f());
        }
    }

    /// Like [`Tracer::emit_with`] with an explicit timestamp.
    pub fn emit_with_at<F: FnOnce() -> TraceEvent>(&self, t_ns: u64, f: F) {
        if self.inner.is_some() {
            self.emit_record(t_ns, f());
        }
    }

    fn emit_record(&self, t_ns: u64, event: TraceEvent) {
        let e = self.inner.as_ref().expect("checked by callers");
        let seq = e.shared.seq.fetch_add(1, Ordering::Relaxed);
        let span = SpanId(e.cells.current_span.load(Ordering::Relaxed));
        let rec = TraceRecord {
            t_ns,
            seq,
            span,
            vehicle: self.vehicle,
            event,
        };
        for sink in e.shared.sinks.lock().unwrap().iter() {
            sink.lock().unwrap().record(&rec);
        }
    }

    /// Allocate a fresh message-lineage id ([`MsgId::NONE`] when
    /// disabled, so untraced runs carry no ids and pay one load).
    pub fn alloc_msg(&self) -> MsgId {
        match &self.inner {
            Some(e) => MsgId(self.tag_id(e.cells.next_msg.fetch_add(1, Ordering::Relaxed))),
            None => MsgId::NONE,
        }
    }

    /// Open a causal span: allocates an id, makes it the current span
    /// (stamped into every subsequent record's envelope), and emits a
    /// [`TraceEvent::SpanBegin`] — which itself already carries the new
    /// id, so the begin record nests under its own span.
    pub fn span_begin(&self, name: &str, index: u64) -> SpanId {
        match &self.inner {
            Some(e) => {
                let span = SpanId(self.tag_id(e.cells.next_span.fetch_add(1, Ordering::Relaxed)));
                e.cells.current_span.store(span.0, Ordering::Relaxed);
                self.emit(TraceEvent::SpanBegin {
                    span,
                    name: name.to_string(),
                    index,
                });
                span
            }
            None => SpanId::NONE,
        }
    }

    /// Close a span: emits [`TraceEvent::SpanEnd`] (still stamped with
    /// the span, so the end record nests under it too) and clears the
    /// current span.
    pub fn span_end(&self, span: SpanId) {
        if let Some(e) = &self.inner {
            self.emit(TraceEvent::SpanEnd { span });
            e.cells.current_span.store(0, Ordering::Relaxed);
        }
    }

    /// The span currently open ([`SpanId::NONE`] when none/disabled).
    pub fn current_span(&self) -> SpanId {
        self.inner.as_ref().map_or(SpanId::NONE, |e| {
            SpanId(e.cells.current_span.load(Ordering::Relaxed))
        })
    }

    /// Flush every attached sink.
    pub fn flush(&self) {
        if let Some(e) = &self.inner {
            for sink in e.shared.sinks.lock().unwrap().iter() {
                sink.lock().unwrap().flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_cheap_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.set_time_ns(5);
        assert_eq!(t.time_ns(), 0);
        t.emit(TraceEvent::MigrationAbort);
        t.emit_with(|| panic!("must not be built"));
        t.flush();
    }

    #[test]
    fn clones_share_clock_and_sinks() {
        let a = Tracer::enabled();
        let b = a.clone();
        let ring = a.attach(RingBufferSink::new(8));
        b.set_time_ns(42);
        assert_eq!(a.time_ns(), 42);
        b.emit(TraceEvent::NetSwitch { to_remote: true });
        a.emit(TraceEvent::NetSwitch { to_remote: false });
        let ring = ring.lock().unwrap();
        let recs: Vec<_> = ring.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_ns, 42);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn emit_at_overrides_the_clock() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(4));
        t.set_time_ns(100);
        t.emit_at(7, TraceEvent::MigrationAbort);
        assert_eq!(ring.lock().unwrap().records().next().unwrap().t_ns, 7);
    }

    #[test]
    fn spans_stamp_the_envelope_and_msgs_count_up() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(8));
        assert_eq!(t.alloc_msg(), MsgId(1));
        assert_eq!(t.alloc_msg(), MsgId(2));
        t.emit(TraceEvent::MigrationAbort); // outside any span
        let span = t.span_begin("cycle", 0);
        assert_eq!(span, SpanId(1));
        assert_eq!(t.current_span(), span);
        t.emit(TraceEvent::RttSample { rtt_ns: 5 });
        t.span_end(span);
        assert_eq!(t.current_span(), SpanId::NONE);
        t.emit(TraceEvent::MigrationAbort); // outside again
        let ring = ring.lock().unwrap();
        let spans: Vec<_> = ring.records().map(|r| r.span).collect();
        assert_eq!(
            spans,
            vec![SpanId(0), SpanId(1), SpanId(1), SpanId(1), SpanId(0)]
        );

        let off = Tracer::disabled();
        assert_eq!(off.alloc_msg(), MsgId::NONE);
        assert_eq!(off.span_begin("cycle", 0), SpanId::NONE);
    }

    #[test]
    fn vehicle_clones_stamp_their_records() {
        let fleet = Tracer::enabled();
        let ring = fleet.attach(RingBufferSink::new(8));
        let v1 = fleet.for_vehicle(1);
        let v2 = fleet.for_vehicle(2);
        assert_eq!(fleet.vehicle(), 0);
        assert_eq!(v2.vehicle(), 2);
        fleet.emit(TraceEvent::MigrationAbort);
        v1.emit(TraceEvent::RttSample { rtt_ns: 5 });
        v2.emit(TraceEvent::RttSample { rtt_ns: 6 });
        let ring = ring.lock().unwrap();
        let vehicles: Vec<u64> = ring.records().map(|r| r.vehicle).collect();
        assert_eq!(vehicles, vec![0, 1, 2]);
        // Clones share the sequence counter: one total order.
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // The envelope field only appears when attributed.
        let jsons: Vec<String> = ring.records().map(|r| r.to_json()).collect();
        assert!(!jsons[0].contains("\"vehicle\""));
        assert!(jsons[1].contains("\"vehicle\":1"));
    }

    #[test]
    fn vehicle_families_have_independent_clocks_spans_and_ids() {
        let fleet = Tracer::enabled();
        let ring = fleet.attach(RingBufferSink::new(16));
        fleet.set_time_ns(50);
        // Forked families start at the parent's clock, then diverge.
        let v1 = fleet.for_vehicle(1);
        let v2 = fleet.for_vehicle(2);
        assert_eq!(v1.time_ns(), 50);
        v1.set_time_ns(100);
        v2.set_time_ns(999);
        assert_eq!(v1.time_ns(), 100, "v2's clock write must not leak into v1");
        assert_eq!(fleet.time_ns(), 50, "the root clock is its own family");

        // Id spaces are family-local, namespaced by the vehicle tag.
        assert_eq!(v1.alloc_msg(), MsgId((1 << VEHICLE_ID_SHIFT) | 1));
        assert_eq!(v2.alloc_msg(), MsgId((2 << VEHICLE_ID_SHIFT) | 1));
        assert_eq!(fleet.alloc_msg(), MsgId(1));

        // An open span on one vehicle never stamps another's records.
        let s1 = v1.span_begin("cycle", 0);
        assert_eq!(s1, SpanId((1 << VEHICLE_ID_SHIFT) | 1));
        v2.emit(TraceEvent::RttSample { rtt_ns: 6 });
        v1.emit(TraceEvent::RttSample { rtt_ns: 5 });
        v1.span_end(s1);
        assert_eq!(v2.current_span(), SpanId::NONE);
        let ring = ring.lock().unwrap();
        let recs: Vec<_> = ring.records().collect();
        let v2_rec = recs.iter().find(|r| r.vehicle == 2).unwrap();
        assert_eq!(v2_rec.span, SpanId::NONE);
        assert_eq!(v2_rec.t_ns, 999);
        let v1_rtt = recs
            .iter()
            .find(|r| r.vehicle == 1 && r.event.kind() == "rtt_sample")
            .unwrap();
        assert_eq!(v1_rtt.span, s1);
        assert_eq!(v1_rtt.t_ns, 100);

        // Re-asking for the vehicle a clone already carries shares the
        // family (the session hands clones to its own components).
        let v1b = v1.for_vehicle(1);
        v1b.set_time_ns(123);
        assert_eq!(v1.time_ns(), 123);
    }

    #[test]
    fn multiple_sinks_all_see_the_stream() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(4));
        let metrics = t.attach(MetricsRegistry::new());
        t.emit(TraceEvent::RttSample { rtt_ns: 1_000_000 });
        assert_eq!(ring.lock().unwrap().len(), 1);
        assert_eq!(metrics.lock().unwrap().counter("events.rtt_sample"), 1);
    }
}
