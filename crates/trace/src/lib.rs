//! # lgv-trace
//!
//! Virtual-time observability for the LGV offloading stack: structured
//! trace events, pluggable sinks, and a metrics registry — with **no
//! dependencies** (not even on `lgv-types`), so every crate in the
//! workspace can emit events without dependency cycles.
//!
//! ## Design
//!
//! The central handle is the [`Tracer`]: a cheap, cloneable object
//! every instrumented component holds. All clones share
//!
//! * one **virtual clock** (nanoseconds, set by whoever advances
//!   simulation time — the mission engine in practice), so components
//!   whose APIs carry no time parameter (e.g. the bus publish path)
//!   still emit correctly-timestamped events, and
//! * one **sink list**, so a single JSONL file or metrics registry
//!   sees the interleaved stream of the whole stack in emission order.
//!
//! A disabled tracer (the [`Tracer::default`]) is a no-op: emission
//! sites pay one `Option` check and, via [`Tracer::emit_with`], build
//! no event at all.
//!
//! ## Determinism
//!
//! Timestamps are virtual time, the emission sequence is a plain
//! counter, and the JSON encoding is fixed-order with shortest-
//! round-trip floats — so for a fixed mission seed the JSONL output is
//! **byte-for-byte identical** across runs. See `docs/OBSERVABILITY.md`
//! for the schema and the replay workflow built on that guarantee.
//!
//! ```
//! use lgv_trace::{RingBufferSink, TraceEvent, Tracer};
//!
//! let tracer = Tracer::enabled();
//! let ring = tracer.attach(RingBufferSink::new(16));
//!
//! tracer.set_time_ns(200_000_000); // the engine advances the clock
//! tracer.emit(TraceEvent::RttSample { rtt_ns: 24_000_000 });
//!
//! let ring = ring.lock().unwrap();
//! let rec = ring.records().next().unwrap();
//! assert_eq!(rec.t_ns, 200_000_000);
//! assert_eq!(rec.event, TraceEvent::RttSample { rtt_ns: 24_000_000 });
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analyze;
mod event;
mod metrics;
pub mod prof;
mod reader;
mod sink;
mod span;

pub use analyze::{RecoveryReport, TraceAnalysis};
pub use event::{EventCategory, SendKind, TraceEvent, TraceRecord};
pub use metrics::{Histogram, MetricsRegistry, StreamingHistogram};
pub use reader::{ParseError, TraceReader};
pub use sink::{JsonlSink, NullSink, RingBufferSink, TraceSink};
pub use span::{MsgId, SpanId};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sink shared between the tracer and the code that inspects it
/// after the run.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

struct TracerInner {
    /// Virtual time in nanoseconds, shared by every clone.
    clock_ns: AtomicU64,
    /// Emission counter (total order over the whole run).
    seq: AtomicU64,
    /// Next message-lineage id (ids start at 1; 0 is [`MsgId::NONE`]).
    next_msg: AtomicU64,
    /// Next span id (ids start at 1; 0 is [`SpanId::NONE`]).
    next_span: AtomicU64,
    /// The span currently open (0 when none). The mission loop is
    /// single-threaded, so a single cell — not a stack — suffices.
    current_span: AtomicU64,
    sinks: Mutex<Vec<SharedSink>>,
}

/// The cloneable tracing handle held by every instrumented component.
///
/// See the [crate docs](crate) for the sharing model. A default
/// tracer is disabled; [`Tracer::enabled`] plus [`Tracer::attach`]
/// turns tracing on.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
    /// Fleet vehicle (tenant) stamped into every record this clone
    /// emits; 0 = unattributed (single-vehicle runs, fleet-level
    /// components). Per-clone, unlike the shared `inner` state: a
    /// fleet driver derives one [`Tracer::for_vehicle`] clone per
    /// session and hands it to all of that session's components.
    vehicle: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("time_ns", &inner.clock_ns.load(Ordering::Relaxed))
                .field("events", &inner.seq.load(Ordering::Relaxed))
                .finish(),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A disabled tracer: every emission is a no-op. This is the
    /// default every component starts with.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            vehicle: 0,
        }
    }

    /// An enabled tracer with an empty sink list and the clock at 0.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock_ns: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                next_msg: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                current_span: AtomicU64::new(0),
                sinks: Mutex::new(Vec::new()),
            })),
            vehicle: 0,
        }
    }

    /// A clone of this tracer whose emissions are attributed to fleet
    /// vehicle `vehicle` (see [`TraceRecord::vehicle`]). The clone
    /// shares the clock, sequence counter, and sinks with `self`, so
    /// a fleet's per-vehicle streams interleave in one total order.
    /// `vehicle` 0 returns an unattributed clone.
    pub fn for_vehicle(&self, vehicle: u64) -> Self {
        Tracer {
            inner: self.inner.clone(),
            vehicle,
        }
    }

    /// The vehicle id stamped on this clone's emissions (0 = none).
    pub fn vehicle(&self) -> u64 {
        self.vehicle
    }

    /// Whether emissions go anywhere at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a sink, returning a shared handle for later inspection
    /// (e.g. reading a ring buffer or dumping metrics after the run).
    ///
    /// On a disabled tracer the sink is still returned but will never
    /// receive events.
    pub fn attach<S: TraceSink + Send + 'static>(&self, sink: S) -> Arc<Mutex<S>> {
        let shared = Arc::new(Mutex::new(sink));
        self.add_sink(shared.clone());
        shared
    }

    /// Attach an already-shared sink.
    pub fn add_sink(&self, sink: SharedSink) {
        if let Some(inner) = &self.inner {
            inner.sinks.lock().unwrap().push(sink);
        }
    }

    /// Advance the shared virtual clock (nanoseconds since the
    /// simulation epoch). Called by whoever owns time — the mission
    /// engine — so that emission sites without a time parameter stamp
    /// correctly.
    pub fn set_time_ns(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.clock_ns.store(ns, Ordering::Relaxed);
        }
    }

    /// The current virtual time (0 when disabled).
    pub fn time_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.clock_ns.load(Ordering::Relaxed))
    }

    /// Emit an event stamped with the shared clock.
    pub fn emit(&self, event: TraceEvent) {
        if self.inner.is_some() {
            let t_ns = self.time_ns();
            self.emit_record(t_ns, event);
        }
    }

    /// Emit an event stamped with an explicit virtual time — for call
    /// sites that already receive `now` as a parameter.
    pub fn emit_at(&self, t_ns: u64, event: TraceEvent) {
        if self.inner.is_some() {
            self.emit_record(t_ns, event);
        }
    }

    /// Emit lazily: the event (and any `String` it allocates) is only
    /// built when the tracer is enabled. Use on hot paths.
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if self.inner.is_some() {
            let t_ns = self.time_ns();
            self.emit_record(t_ns, f());
        }
    }

    /// Like [`Tracer::emit_with`] with an explicit timestamp.
    pub fn emit_with_at<F: FnOnce() -> TraceEvent>(&self, t_ns: u64, f: F) {
        if self.inner.is_some() {
            self.emit_record(t_ns, f());
        }
    }

    fn emit_record(&self, t_ns: u64, event: TraceEvent) {
        let inner = self.inner.as_ref().expect("checked by callers");
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let span = SpanId(inner.current_span.load(Ordering::Relaxed));
        let rec = TraceRecord {
            t_ns,
            seq,
            span,
            vehicle: self.vehicle,
            event,
        };
        for sink in inner.sinks.lock().unwrap().iter() {
            sink.lock().unwrap().record(&rec);
        }
    }

    /// Allocate a fresh message-lineage id ([`MsgId::NONE`] when
    /// disabled, so untraced runs carry no ids and pay one load).
    pub fn alloc_msg(&self) -> MsgId {
        match &self.inner {
            Some(inner) => MsgId(inner.next_msg.fetch_add(1, Ordering::Relaxed)),
            None => MsgId::NONE,
        }
    }

    /// Open a causal span: allocates an id, makes it the current span
    /// (stamped into every subsequent record's envelope), and emits a
    /// [`TraceEvent::SpanBegin`] — which itself already carries the new
    /// id, so the begin record nests under its own span.
    pub fn span_begin(&self, name: &str, index: u64) -> SpanId {
        match &self.inner {
            Some(inner) => {
                let span = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
                inner.current_span.store(span.0, Ordering::Relaxed);
                self.emit(TraceEvent::SpanBegin {
                    span,
                    name: name.to_string(),
                    index,
                });
                span
            }
            None => SpanId::NONE,
        }
    }

    /// Close a span: emits [`TraceEvent::SpanEnd`] (still stamped with
    /// the span, so the end record nests under it too) and clears the
    /// current span.
    pub fn span_end(&self, span: SpanId) {
        if let Some(inner) = &self.inner {
            self.emit(TraceEvent::SpanEnd { span });
            inner.current_span.store(0, Ordering::Relaxed);
        }
    }

    /// The span currently open ([`SpanId::NONE`] when none/disabled).
    pub fn current_span(&self) -> SpanId {
        self.inner.as_ref().map_or(SpanId::NONE, |i| {
            SpanId(i.current_span.load(Ordering::Relaxed))
        })
    }

    /// Flush every attached sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in inner.sinks.lock().unwrap().iter() {
                sink.lock().unwrap().flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_cheap_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.set_time_ns(5);
        assert_eq!(t.time_ns(), 0);
        t.emit(TraceEvent::MigrationAbort);
        t.emit_with(|| panic!("must not be built"));
        t.flush();
    }

    #[test]
    fn clones_share_clock_and_sinks() {
        let a = Tracer::enabled();
        let b = a.clone();
        let ring = a.attach(RingBufferSink::new(8));
        b.set_time_ns(42);
        assert_eq!(a.time_ns(), 42);
        b.emit(TraceEvent::NetSwitch { to_remote: true });
        a.emit(TraceEvent::NetSwitch { to_remote: false });
        let ring = ring.lock().unwrap();
        let recs: Vec<_> = ring.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_ns, 42);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn emit_at_overrides_the_clock() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(4));
        t.set_time_ns(100);
        t.emit_at(7, TraceEvent::MigrationAbort);
        assert_eq!(ring.lock().unwrap().records().next().unwrap().t_ns, 7);
    }

    #[test]
    fn spans_stamp_the_envelope_and_msgs_count_up() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(8));
        assert_eq!(t.alloc_msg(), MsgId(1));
        assert_eq!(t.alloc_msg(), MsgId(2));
        t.emit(TraceEvent::MigrationAbort); // outside any span
        let span = t.span_begin("cycle", 0);
        assert_eq!(span, SpanId(1));
        assert_eq!(t.current_span(), span);
        t.emit(TraceEvent::RttSample { rtt_ns: 5 });
        t.span_end(span);
        assert_eq!(t.current_span(), SpanId::NONE);
        t.emit(TraceEvent::MigrationAbort); // outside again
        let ring = ring.lock().unwrap();
        let spans: Vec<_> = ring.records().map(|r| r.span).collect();
        assert_eq!(
            spans,
            vec![SpanId(0), SpanId(1), SpanId(1), SpanId(1), SpanId(0)]
        );

        let off = Tracer::disabled();
        assert_eq!(off.alloc_msg(), MsgId::NONE);
        assert_eq!(off.span_begin("cycle", 0), SpanId::NONE);
    }

    #[test]
    fn vehicle_clones_stamp_their_records() {
        let fleet = Tracer::enabled();
        let ring = fleet.attach(RingBufferSink::new(8));
        let v1 = fleet.for_vehicle(1);
        let v2 = fleet.for_vehicle(2);
        assert_eq!(fleet.vehicle(), 0);
        assert_eq!(v2.vehicle(), 2);
        fleet.emit(TraceEvent::MigrationAbort);
        v1.emit(TraceEvent::RttSample { rtt_ns: 5 });
        v2.emit(TraceEvent::RttSample { rtt_ns: 6 });
        let ring = ring.lock().unwrap();
        let vehicles: Vec<u64> = ring.records().map(|r| r.vehicle).collect();
        assert_eq!(vehicles, vec![0, 1, 2]);
        // Clones share the sequence counter: one total order.
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // The envelope field only appears when attributed.
        let jsons: Vec<String> = ring.records().map(|r| r.to_json()).collect();
        assert!(!jsons[0].contains("\"vehicle\""));
        assert!(jsons[1].contains("\"vehicle\":1"));
    }

    #[test]
    fn multiple_sinks_all_see_the_stream() {
        let t = Tracer::enabled();
        let ring = t.attach(RingBufferSink::new(4));
        let metrics = t.attach(MetricsRegistry::new());
        t.emit(TraceEvent::RttSample { rtt_ns: 1_000_000 });
        assert_eq!(ring.lock().unwrap().len(), 1);
        assert_eq!(metrics.lock().unwrap().counter("events.rtt_sample"), 1);
    }
}
