//! Counters, gauges, and histograms with a deterministic text dump.
//!
//! [`MetricsRegistry`] is the aggregate view next to the event stream:
//! where a trace answers "what happened, when", metrics answer "how
//! much, overall". The registry also implements [`TraceSink`], so it
//! can be attached to a [`crate::Tracer`] directly and aggregate the
//! event stream without any extra instrumentation.

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Running summary of an observed value series.
///
/// Keeps every sample (sorted) so exact percentiles are available —
/// the series here are per-mission, small enough that an exact answer
/// beats a sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// All observations, kept sorted ascending (insertion point found
    /// by binary search, so `observe` is O(log n) + shift).
    samples: Vec<f64>,
}

impl Histogram {
    /// Fold one observation in.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let at = self.samples.partition_point(|s| *s < v);
        self.samples.insert(at, v);
    }

    /// Exact nearest-rank percentile: the smallest sample such that at
    /// least `p`% of observations are ≤ it. `p` is clamped to
    /// `[0, 100]`; an empty histogram reports 0 (like `min`/`max`).
    ///
    /// ```
    /// use lgv_trace::Histogram;
    ///
    /// let mut h = Histogram::default();
    /// for v in [10.0, 20.0, 30.0, 40.0] {
    ///     h.observe(v);
    /// }
    /// assert_eq!(h.percentile(50.0), 20.0);
    /// assert_eq!(h.percentile(95.0), 40.0);
    /// assert_eq!(h.percentile(0.0), 10.0);
    /// ```
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.max(1) - 1]
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are free-form dotted strings (`"bus.drops"`). Storage is
/// `BTreeMap`, so [`MetricsRegistry::dump`] is sorted and
/// deterministic.
///
/// ```
/// use lgv_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("bus.publishes");
/// m.inc_by("bus.publishes", 2);
/// m.set_gauge("battery.soc", 0.93);
/// m.observe("rtt_ms", 24.0);
/// m.observe("rtt_ms", 30.0);
///
/// assert_eq!(m.counter("bus.publishes"), 3);
/// assert_eq!(m.gauge("battery.soc"), Some(0.93));
/// assert_eq!(m.histogram("rtt_ms").unwrap().mean(), 27.0);
/// assert!(m.dump().contains("counter bus.publishes 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn inc_by(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Fold a value into a histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render every metric as sorted, deterministic text: one
    /// `counter|gauge|hist <name> <value…>` line per metric.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v:?}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {name} count={} min={:?} mean={:?} p50={:?} p95={:?} p99={:?} max={:?}",
                h.count(),
                h.min(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
        out
    }
}

/// Attached as a sink, the registry aggregates the event stream:
/// per-kind event counters, outcome counters for channel sends,
/// latency/energy histograms, and latest-value gauges for the
/// controller and battery signals.
impl TraceSink for MetricsRegistry {
    fn record(&mut self, rec: &TraceRecord) {
        self.inc_by(&format!("events.{}", rec.event.kind()), 1);
        match &rec.event {
            TraceEvent::BusDrop { topic, .. } => self.inc_by(&format!("bus.drops.{topic}"), 1),
            TraceEvent::ChannelSend { dir, outcome, .. } => {
                self.inc_by(&format!("channel.{dir}.{}", outcome.as_str()), 1)
            }
            TraceEvent::ChannelLoss { dir, .. } => {
                self.inc_by(&format!("channel.{dir}.radio_loss"), 1)
            }
            TraceEvent::ChannelDeliver {
                dir, latency_ns, ..
            } => {
                self.inc_by(&format!("channel.{dir}.delivered"), 1);
                self.observe(&format!("latency_ms.{dir}"), *latency_ns as f64 / 1e6);
            }
            TraceEvent::RttSample { rtt_ns } => {
                self.observe("rtt_ms", *rtt_ns as f64 / 1e6);
            }
            TraceEvent::ProfileSample { node, nanos, .. } => {
                self.observe(&format!("proc_ms.{node}"), *nanos as f64 / 1e6);
            }
            TraceEvent::ControlDecision {
                bandwidth,
                max_linear,
                ..
            } => {
                self.set_gauge("control.bandwidth", *bandwidth);
                self.set_gauge("control.max_linear", *max_linear);
            }
            TraceEvent::GovernorDecision { threads, .. } => {
                self.set_gauge("governor.threads", f64::from(*threads));
            }
            TraceEvent::EnergyDelta { component, joules } => {
                self.observe(&format!("energy_j.{component}"), *joules);
            }
            TraceEvent::MissionProgress { battery_soc, .. } => {
                self.set_gauge("battery.soc", *battery_soc);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(2.0);
        h.observe(4.0);
        h.observe(-1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 4.0);
        assert!((h.mean() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let empty = Histogram::default();
        assert_eq!(empty.percentile(50.0), 0.0);

        let mut h = Histogram::default();
        // Insert out of order to exercise the sorted-insert path.
        for v in [50.0, 10.0, 40.0, 20.0, 30.0, 60.0, 90.0, 70.0, 100.0, 80.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(95.0), 100.0);
        assert_eq!(h.percentile(99.0), 100.0);
        assert_eq!(h.percentile(10.0), 10.0);
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(-5.0), 10.0);
        assert_eq!(h.percentile(250.0), 100.0);
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("mid", 1.5);
        m.observe("h", 3.0);
        let d = m.dump();
        let a = d.find("counter a.first").unwrap();
        let z = d.find("counter z.last").unwrap();
        assert!(a < z);
        assert!(d.contains("gauge mid 1.5"));
        assert!(d.contains("hist h count=1 min=3.0 mean=3.0 p50=3.0 p95=3.0 p99=3.0 max=3.0"));
    }

    #[test]
    fn registry_aggregates_events_as_a_sink() {
        use crate::event::SendKind;
        use crate::span::{MsgId, SpanId};
        let mut m = MetricsRegistry::new();
        let mk = |seq, event| TraceRecord {
            t_ns: 0,
            seq,
            span: SpanId::NONE,
            vehicle: 0,
            event,
        };
        m.record(&mk(0, TraceEvent::RttSample { rtt_ns: 2_000_000 }));
        m.record(&mk(
            1,
            TraceEvent::ChannelSend {
                dir: "up".into(),
                seq: 0,
                bytes: 8,
                outcome: SendKind::Discarded,
                msg: MsgId(1),
            },
        ));
        m.record(&mk(
            2,
            TraceEvent::BusDrop {
                topic: "scan".into(),
                msg: MsgId(1),
            },
        ));
        m.record(&mk(
            3,
            TraceEvent::ChannelDeliver {
                dir: "up".into(),
                seq: 1,
                msg: MsgId(2),
                latency_ns: 3_000_000,
            },
        ));
        assert_eq!(m.counter("events.rtt_sample"), 1);
        assert_eq!(m.counter("channel.up.discarded"), 1);
        assert_eq!(m.counter("bus.drops.scan"), 1);
        assert_eq!(m.counter("channel.up.delivered"), 1);
        assert_eq!(m.histogram("rtt_ms").unwrap().max(), 2.0);
        assert_eq!(m.histogram("latency_ms.up").unwrap().max(), 3.0);
    }
}
