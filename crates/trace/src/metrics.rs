//! Counters, gauges, and histograms with a deterministic text dump.
//!
//! [`MetricsRegistry`] is the aggregate view next to the event stream:
//! where a trace answers "what happened, when", metrics answer "how
//! much, overall". The registry also implements [`TraceSink`], so it
//! can be attached to a [`crate::Tracer`] directly and aggregate the
//! event stream without any extra instrumentation.

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Running summary of an observed value series.
///
/// Keeps every sample (sorted) so exact percentiles are available —
/// the series here are per-mission, small enough that an exact answer
/// beats a sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// All observations, kept sorted ascending (insertion point found
    /// by binary search, so `observe` is O(log n) + shift).
    samples: Vec<f64>,
}

impl Histogram {
    /// Fold one observation in.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let at = self.samples.partition_point(|s| *s < v);
        self.samples.insert(at, v);
    }

    /// Exact nearest-rank percentile: the smallest sample such that at
    /// least `p`% of observations are ≤ it. `p` is clamped to
    /// `[0, 100]`; an empty histogram reports 0 (like `min`/`max`).
    ///
    /// ```
    /// use lgv_trace::Histogram;
    ///
    /// let mut h = Histogram::default();
    /// for v in [10.0, 20.0, 30.0, 40.0] {
    ///     h.observe(v);
    /// }
    /// assert_eq!(h.percentile(50.0), 20.0);
    /// assert_eq!(h.percentile(95.0), 40.0);
    /// assert_eq!(h.percentile(0.0), 10.0);
    /// ```
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.max(1) - 1]
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram's observations into this one, as if every
    /// one of `other`'s samples had been [`Histogram::observe`]d here.
    /// Percentiles over the merged set stay exact — this is the
    /// small-N aggregation path (per-mission series); for fleet-scale
    /// series use [`StreamingHistogram`], which merges in bounded
    /// memory.
    ///
    /// ```
    /// use lgv_trace::Histogram;
    ///
    /// let mut a = Histogram::default();
    /// a.observe(10.0);
    /// a.observe(30.0);
    /// let mut b = Histogram::default();
    /// b.observe(20.0);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 3);
    /// assert_eq!(a.percentile(50.0), 20.0);
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        // Both sample vectors are sorted: merge-join instead of N
        // binary-search inserts.
        let mut merged = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut i, mut j) = (0, 0);
        while i < self.samples.len() && j < other.samples.len() {
            if self.samples[i] <= other.samples[j] {
                merged.push(self.samples[i]);
                i += 1;
            } else {
                merged.push(other.samples[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.samples[i..]);
        merged.extend_from_slice(&other.samples[j..]);
        self.samples = merged;
    }
}

/// Quantization granularity of [`StreamingHistogram`]'s log bins:
/// sub-buckets per octave. 16 gives a worst-case relative quantile
/// error of `2^(1/16) − 1 ≈ 4.4%`.
const STREAM_SUBBUCKETS: f64 = 16.0;

/// Bounded-memory histogram for fleet-scale series.
///
/// Up to `cap` observations it behaves exactly like [`Histogram`]
/// (every sample kept, percentiles exact). Past the cap it switches to
/// sparse log-quantized bins — HdrHistogram-style, 16 sub-buckets per
/// octave, sign-mirrored for negative values — so memory is bounded by
/// the *dynamic range* of the series (a few hundred bins in practice),
/// not its length, and quantiles carry ≤ ~4.4% relative error.
/// `count`/`sum`/`min`/`max`/`mean` stay exact in both modes.
///
/// [`StreamingHistogram::merge`] adds bin counts, so 1000 per-vehicle
/// histograms aggregate into one without ever materializing the
/// combined sample set.
///
/// ```
/// use lgv_trace::StreamingHistogram;
///
/// let mut h = StreamingHistogram::with_cap(4);
/// for v in [10.0, 20.0, 30.0, 40.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.percentile(50.0), 20.0); // under cap: exact
/// h.observe(50.0); // crosses the cap: log-binned from here on
/// assert!((h.percentile(100.0) - 50.0).abs() / 50.0 < 0.045);
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Exact-mode cap: number of samples to keep before degrading to
    /// bins. 0 means bins-only from the first observation.
    cap: usize,
    /// Exact mode: sorted samples (only while `bins` is empty).
    samples: Vec<f64>,
    /// Streaming mode: sparse log-quantized bins, key → count.
    bins: BTreeMap<i64, u64>,
}

impl StreamingHistogram {
    /// Default exact-mode cap: plenty for per-mission series, small
    /// enough that a stuck-in-exact-mode histogram is never the memory
    /// problem.
    pub const DEFAULT_CAP: usize = 4096;

    /// A streaming histogram with the [`StreamingHistogram::DEFAULT_CAP`].
    pub fn new() -> Self {
        Self::with_cap(Self::DEFAULT_CAP)
    }

    /// A streaming histogram that keeps exact samples up to `cap`
    /// observations, then degrades to log bins.
    pub fn with_cap(cap: usize) -> Self {
        StreamingHistogram {
            cap,
            ..Default::default()
        }
    }

    /// Sign-mirrored log-quantized bin key. 0 maps to key 0; positive
    /// `v` to `1 + floor(16·log2(v)) + K` (offset `K` keeps keys for
    /// tiny values positive); negative `v` mirrors to the negation.
    fn key(v: f64) -> i64 {
        const K: i64 = 1 << 20;
        if v == 0.0 {
            return 0;
        }
        let q = (v.abs().log2() * STREAM_SUBBUCKETS).floor() as i64;
        let k = 1 + (q + K).max(1);
        if v < 0.0 {
            -k
        } else {
            k
        }
    }

    /// Representative value of a bin: the geometric midpoint of the
    /// quantization interval the key covers.
    fn rep(key: i64) -> f64 {
        const K: i64 = 1 << 20;
        if key == 0 {
            return 0.0;
        }
        let q = (key.abs() - 1 - K).max(1 - K);
        let v = ((q as f64 + 0.5) / STREAM_SUBBUCKETS).exp2();
        if key < 0 {
            -v
        } else {
            v
        }
    }

    fn spill_to_bins(&mut self) {
        for &s in &self.samples {
            *self.bins.entry(Self::key(s)).or_insert(0) += 1;
        }
        self.samples = Vec::new();
    }

    /// Fold one observation in.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if self.bins.is_empty() && self.samples.len() < self.cap {
            let at = self.samples.partition_point(|s| *s < v);
            self.samples.insert(at, v);
        } else {
            if !self.samples.is_empty() {
                self.spill_to_bins();
            }
            *self.bins.entry(Self::key(v)).or_insert(0) += 1;
        }
    }

    /// Nearest-rank percentile: exact while under the cap, quantized
    /// (≤ ~4.4% relative error) once streaming. Clamped to the exact
    /// observed `[min, max]` in both modes; 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if !self.samples.is_empty() {
            return self.samples[(rank - 1) as usize];
        }
        // The extreme ranks are tracked exactly in both modes.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0;
        for (&key, &n) in &self.bins {
            seen += n;
            if seen >= rank {
                return Self::rep(key).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another streaming histogram in — bounded memory in both
    /// directions (bin counts add; exact+exact stays exact only if the
    /// merged size fits this histogram's cap).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let cap = self.cap;
            *self = other.clone();
            self.cap = cap;
            if self.samples.len() > self.cap {
                self.spill_to_bins();
            }
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        let fits_exact = self.bins.is_empty()
            && other.bins.is_empty()
            && self.samples.len() + other.samples.len() <= self.cap;
        if fits_exact {
            for &s in &other.samples {
                let at = self.samples.partition_point(|x| *x < s);
                self.samples.insert(at, s);
            }
            return;
        }
        self.spill_to_bins();
        for &s in &other.samples {
            *self.bins.entry(Self::key(s)).or_insert(0) += 1;
        }
        for (&key, &n) in &other.bins {
            *self.bins.entry(key).or_insert(0) += n;
        }
    }

    /// Whether percentiles are still exact (sample mode, under the cap).
    pub fn is_exact(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (exact in both modes).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (exact in both modes; 0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (exact in both modes; 0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (exact in both modes; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are free-form dotted strings (`"bus.drops"`). Storage is
/// `BTreeMap`, so [`MetricsRegistry::dump`] is sorted and
/// deterministic.
///
/// ```
/// use lgv_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("bus.publishes");
/// m.inc_by("bus.publishes", 2);
/// m.set_gauge("battery.soc", 0.93);
/// m.observe("rtt_ms", 24.0);
/// m.observe("rtt_ms", 30.0);
///
/// assert_eq!(m.counter("bus.publishes"), 3);
/// assert_eq!(m.gauge("battery.soc"), Some(0.93));
/// assert_eq!(m.histogram("rtt_ms").unwrap().mean(), 27.0);
/// assert!(m.dump().contains("counter bus.publishes 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn inc_by(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Fold a value into a histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Render every metric as sorted, deterministic text: one
    /// `counter|gauge|hist <name> <value…>` line per metric.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v:?}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {name} count={} min={:?} mean={:?} p50={:?} p95={:?} p99={:?} max={:?}",
                h.count(),
                h.min(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
        out
    }
}

/// Attached as a sink, the registry aggregates the event stream:
/// per-kind event counters, outcome counters for channel sends,
/// latency/energy histograms, and latest-value gauges for the
/// controller and battery signals.
impl TraceSink for MetricsRegistry {
    fn record(&mut self, rec: &TraceRecord) {
        self.inc_by(&format!("events.{}", rec.event.kind()), 1);
        match &rec.event {
            TraceEvent::BusDrop { topic, .. } => self.inc_by(&format!("bus.drops.{topic}"), 1),
            TraceEvent::ChannelSend { dir, outcome, .. } => {
                self.inc_by(&format!("channel.{dir}.{}", outcome.as_str()), 1)
            }
            TraceEvent::ChannelLoss { dir, .. } => {
                self.inc_by(&format!("channel.{dir}.radio_loss"), 1)
            }
            TraceEvent::ChannelDeliver {
                dir, latency_ns, ..
            } => {
                self.inc_by(&format!("channel.{dir}.delivered"), 1);
                self.observe(&format!("latency_ms.{dir}"), *latency_ns as f64 / 1e6);
            }
            TraceEvent::RttSample { rtt_ns } => {
                self.observe("rtt_ms", *rtt_ns as f64 / 1e6);
            }
            TraceEvent::ProfileSample { node, nanos, .. } => {
                self.observe(&format!("proc_ms.{node}"), *nanos as f64 / 1e6);
            }
            TraceEvent::ControlDecision {
                bandwidth,
                max_linear,
                ..
            } => {
                self.set_gauge("control.bandwidth", *bandwidth);
                self.set_gauge("control.max_linear", *max_linear);
            }
            TraceEvent::GovernorDecision { threads, .. } => {
                self.set_gauge("governor.threads", f64::from(*threads));
            }
            TraceEvent::EnergyDelta { component, joules } => {
                self.observe(&format!("energy_j.{component}"), *joules);
            }
            TraceEvent::MissionProgress { battery_soc, .. } => {
                self.set_gauge("battery.soc", *battery_soc);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(2.0);
        h.observe(4.0);
        h.observe(-1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 4.0);
        assert!((h.mean() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let empty = Histogram::default();
        assert_eq!(empty.percentile(50.0), 0.0);

        let mut h = Histogram::default();
        // Insert out of order to exercise the sorted-insert path.
        for v in [50.0, 10.0, 40.0, 20.0, 30.0, 60.0, 90.0, 70.0, 100.0, 80.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(95.0), 100.0);
        assert_eq!(h.percentile(99.0), 100.0);
        assert_eq!(h.percentile(10.0), 10.0);
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(-5.0), 10.0);
        assert_eq!(h.percentile(250.0), 100.0);
    }

    #[test]
    fn histogram_merge_matches_interleaved_observe() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for (i, v) in [5.0, -2.0, 9.0, 9.0, 0.5, 7.25].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            both.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a, both);

        // Merging into/with an empty histogram is the identity.
        let mut empty = Histogram::default();
        empty.merge(&both);
        assert_eq!(empty, both);
        both.merge(&Histogram::default());
        assert_eq!(empty, both);
    }

    #[test]
    fn streaming_histogram_is_exact_under_cap() {
        let mut s = StreamingHistogram::with_cap(16);
        let mut h = Histogram::default();
        for v in [50.0, 10.0, 40.0, 20.0, 30.0] {
            s.observe(v);
            h.observe(v);
        }
        assert!(s.is_exact());
        for p in [0.0, 10.0, 50.0, 95.0, 100.0] {
            assert_eq!(s.percentile(p), h.percentile(p));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), h.mean());
    }

    #[test]
    fn streaming_histogram_bounds_memory_and_error_past_cap() {
        let mut s = StreamingHistogram::with_cap(32);
        for i in 0..10_000 {
            // Wide dynamic range: 1..=10000.
            s.observe((i + 1) as f64);
        }
        assert!(!s.is_exact());
        // Memory is bounded by dynamic range: log2(10000) * 16 ≈ 213
        // bins, not 10k samples.
        assert!(s.bins.len() <= 256, "bins: {}", s.bins.len());
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10_000.0);
        assert!((s.sum() - 50_005_000.0).abs() < 1e-6);
        for (p, exact) in [(50.0, 5000.0), (95.0, 9500.0), (99.0, 9900.0)] {
            let got = s.percentile(p);
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.045, "p{p}: got {got}, exact {exact}, rel {rel}");
        }
        // Extremes clamp to the exact observed range.
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 10_000.0);
    }

    #[test]
    fn streaming_histogram_handles_zero_and_negatives() {
        let mut s = StreamingHistogram::with_cap(2);
        for v in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            s.observe(v);
        }
        assert!(!s.is_exact());
        assert_eq!(s.min(), -100.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.percentile(0.0), -100.0);
        let mid = s.percentile(50.0);
        assert_eq!(mid, 0.0, "median of the 5 is the zero bin");
    }

    #[test]
    fn streaming_histogram_merge_adds_bins() {
        let mut a = StreamingHistogram::with_cap(4);
        let mut b = StreamingHistogram::with_cap(4);
        let mut whole = StreamingHistogram::with_cap(4);
        for i in 0..50 {
            let v = (i + 1) as f64;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Same bins, because binning is value-deterministic.
        assert_eq!(a.bins, whole.bins);

        // Exact + exact under cap stays exact.
        let mut c = StreamingHistogram::with_cap(16);
        c.observe(3.0);
        let mut d = StreamingHistogram::with_cap(16);
        d.observe(1.0);
        d.observe(2.0);
        c.merge(&d);
        assert!(c.is_exact());
        assert_eq!(c.percentile(50.0), 2.0);

        // Merge into empty adopts the source but keeps the local cap.
        let mut e = StreamingHistogram::with_cap(1);
        e.merge(&d);
        assert_eq!(e.count(), 2);
        assert!(!e.is_exact(), "2 samples exceed cap 1, spilled to bins");
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("mid", 1.5);
        m.observe("h", 3.0);
        let d = m.dump();
        let a = d.find("counter a.first").unwrap();
        let z = d.find("counter z.last").unwrap();
        assert!(a < z);
        assert!(d.contains("gauge mid 1.5"));
        assert!(d.contains("hist h count=1 min=3.0 mean=3.0 p50=3.0 p95=3.0 p99=3.0 max=3.0"));
    }

    #[test]
    fn registry_aggregates_events_as_a_sink() {
        use crate::event::SendKind;
        use crate::span::{MsgId, SpanId};
        let mut m = MetricsRegistry::new();
        let mk = |seq, event| TraceRecord {
            t_ns: 0,
            seq,
            span: SpanId::NONE,
            vehicle: 0,
            event,
        };
        m.record(&mk(0, TraceEvent::RttSample { rtt_ns: 2_000_000 }));
        m.record(&mk(
            1,
            TraceEvent::ChannelSend {
                dir: "up".into(),
                seq: 0,
                bytes: 8,
                outcome: SendKind::Discarded,
                msg: MsgId(1),
            },
        ));
        m.record(&mk(
            2,
            TraceEvent::BusDrop {
                topic: "scan".into(),
                msg: MsgId(1),
            },
        ));
        m.record(&mk(
            3,
            TraceEvent::ChannelDeliver {
                dir: "up".into(),
                seq: 1,
                msg: MsgId(2),
                latency_ns: 3_000_000,
            },
        ));
        assert_eq!(m.counter("events.rtt_sample"), 1);
        assert_eq!(m.counter("channel.up.discarded"), 1);
        assert_eq!(m.counter("bus.drops.scan"), 1);
        assert_eq!(m.counter("channel.up.delivered"), 1);
        assert_eq!(m.histogram("rtt_ms").unwrap().max(), 2.0);
        assert_eq!(m.histogram("latency_ms.up").unwrap().max(), 3.0);
    }
}
