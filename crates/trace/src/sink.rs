//! Trace sinks: where emitted records go.
//!
//! A [`TraceSink`] consumes [`TraceRecord`]s in emission order. Three
//! implementations cover the standard uses:
//!
//! * [`NullSink`] — discard everything (benchmarking the overhead);
//! * [`RingBufferSink`] — keep the newest N records in memory (tests,
//!   post-mortem inspection);
//! * [`JsonlSink`] — stream records as JSON Lines to a writer, one
//!   object per line, stamped with virtual time.

use crate::event::TraceRecord;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Consumer of trace records.
///
/// Records arrive in emission order (the `seq` field is strictly
/// increasing). Sinks must not reorder or drop silently — except
/// [`RingBufferSink`], whose bounded capacity is its documented
/// contract.
///
/// ```
/// use lgv_trace::{SpanId, TraceEvent, TraceRecord, TraceSink};
///
/// /// A sink that just counts records.
/// struct Counter(u64);
/// impl TraceSink for Counter {
///     fn record(&mut self, _rec: &TraceRecord) {
///         self.0 += 1;
///     }
/// }
///
/// let mut sink = Counter(0);
/// sink.record(&TraceRecord {
///     t_ns: 0,
///     seq: 0,
///     span: SpanId::NONE,
///     vehicle: 0,
///     event: TraceEvent::MigrationAbort,
/// });
/// assert_eq!(sink.0, 1);
/// ```
pub trait TraceSink {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Discards every record.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Keeps the newest `capacity` records in memory.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    /// Total records ever offered (≥ `len()` once the ring wraps).
    seen: u64,
}

impl RingBufferSink {
    /// Ring holding at most `capacity` records (capacity 0 is bumped
    /// to 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            seen: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained record count (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever offered, including evicted ones.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(rec.clone());
        self.seen += 1;
    }
}

/// Streams records as JSON Lines (one [`TraceRecord::to_json`] object
/// per line) to any writer.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    lines: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
            lines: 0,
        }
    }

    /// Create (truncating) a JSONL file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(file)))
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        // IO errors cannot fail the mission loop; a truncated trace is
        // detectable downstream by the seq gap at the tail.
        let _ = self.out.write_all(rec.to_json().as_bytes());
        let _ = self.out.write_all(b"\n");
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            t_ns: seq * 10,
            seq,
            span: crate::span::SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::MigrationAbort,
        }
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(&rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        use std::sync::{Arc, Mutex};

        /// Shared in-memory writer so the test can read back what the
        /// sink wrote.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record(&rec(0));
        sink.record(&rec(1));
        sink.flush();
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"seq\":1"));
    }
}
