//! Trace event vocabulary and the deterministic JSON encoding.
//!
//! Every observable action in the stack maps to exactly one
//! [`TraceEvent`] variant. Variants are grouped into coarse
//! [`EventCategory`] buckets (one per instrumented subsystem) so tests
//! and dashboards can assert coverage without enumerating every kind.
//!
//! The JSON encoding is hand-rolled (this crate has no dependencies)
//! and **byte-for-byte deterministic**: field order is fixed by the
//! code below, integers print in decimal, and floats print via Rust's
//! shortest-roundtrip `{:?}` formatting. See `docs/OBSERVABILITY.md`
//! for the full schema reference.

use crate::span::{MsgId, SpanId};
use std::fmt::Write as _;

/// What happened to a simulated UDP `send` (mirrors the outcome enum
/// of the network layer without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// Handed to the radio (may still be lost in the air).
    Transmitted,
    /// Held in the one-slot kernel buffer (weak-signal blocking).
    Held,
    /// Silently dropped at the sender: kernel buffer already full.
    Discarded,
}

impl SendKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SendKind::Transmitted => "transmitted",
            SendKind::Held => "held",
            SendKind::Discarded => "discarded",
        }
    }
}

/// Coarse event grouping, one per instrumented subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// Mission lifecycle and per-cycle progress.
    Mission,
    /// Causal span boundaries (one span per control cycle).
    Span,
    /// Pub/sub bus activity (publishes, queue drops).
    Bus,
    /// Simulated UDP channel activity (sends, radio losses).
    Channel,
    /// Round-trip-time samples from echoed stamps.
    Rtt,
    /// Per-node processing-time samples from the Profiler.
    Profile,
    /// Runtime Controller decisions (Algorithm 1 + Algorithm 2).
    Control,
    /// Thread-governor recommendations (§VIII-E).
    Governor,
    /// Energy-ledger deltas (Eq. 1a components).
    Energy,
    /// Placement switches and node-state migration transfers.
    Migration,
    /// Injected fault windows opening and closing.
    Fault,
    /// Elastic shared-cloud activity: batched admissions and replica
    /// autoscaling (emitted only by fleet runs with a shared cloud).
    Cloud,
    /// Regional fleet sharding: vehicle→region placement and
    /// cross-region WAN hops (emitted only by sharded fleet runs).
    Region,
}

impl EventCategory {
    /// Every category, in a fixed documentation order.
    pub const ALL: [EventCategory; 13] = [
        EventCategory::Mission,
        EventCategory::Span,
        EventCategory::Bus,
        EventCategory::Channel,
        EventCategory::Rtt,
        EventCategory::Profile,
        EventCategory::Control,
        EventCategory::Governor,
        EventCategory::Energy,
        EventCategory::Migration,
        EventCategory::Fault,
        EventCategory::Cloud,
        EventCategory::Region,
    ];

    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventCategory::Mission => "mission",
            EventCategory::Span => "span",
            EventCategory::Bus => "bus",
            EventCategory::Channel => "channel",
            EventCategory::Rtt => "rtt",
            EventCategory::Profile => "profile",
            EventCategory::Control => "control",
            EventCategory::Governor => "governor",
            EventCategory::Energy => "energy",
            EventCategory::Migration => "migration",
            EventCategory::Fault => "fault",
            EventCategory::Cloud => "cloud",
            EventCategory::Region => "region",
        }
    }
}

/// One structured observation from the instrumented stack.
///
/// All timestamps and durations are virtual-time nanoseconds (`u64`),
/// never wall-clock — traces replay identically for a given seed.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A mission began.
    MissionStart {
        /// Workload name (`Navigation` / `Exploration`).
        workload: String,
        /// Deployment label (Fig. 12/13 scenario).
        deployment: String,
        /// Master seed (replays of the same seed produce identical
        /// traces).
        seed: u64,
    },
    /// One control cycle's position/goal/battery snapshot.
    MissionProgress {
        /// Ground-truth x (m).
        x: f64,
        /// Ground-truth y (m).
        y: f64,
        /// Current goal x (m).
        goal_x: f64,
        /// Current goal y (m).
        goal_y: f64,
        /// Straight-line distance to the goal (m).
        goal_dist: f64,
        /// Battery state of charge in [0, 1].
        battery_soc: f64,
    },
    /// The mission ended.
    MissionEnd {
        /// Whether the goal was achieved within the caps.
        completed: bool,
        /// Human-readable reason.
        reason: String,
    },
    /// A causal span opened (one per 200 ms control cycle).
    SpanBegin {
        /// The span's id; every record emitted until the matching
        /// [`TraceEvent::SpanEnd`] carries it in its envelope.
        span: SpanId,
        /// Span name (`cycle` for control cycles).
        name: String,
        /// Ordinal of this span among same-named spans (cycle number).
        index: u64,
    },
    /// A causal span closed.
    SpanEnd {
        /// The span that closed.
        span: SpanId,
    },
    /// A message was published on a bus topic.
    BusPublish {
        /// Topic name.
        topic: String,
        /// Serialized payload size.
        bytes: u64,
        /// Number of subscriber queues the bytes fanned out to.
        fanout: u32,
        /// Lineage id allocated to this message.
        msg: MsgId,
        /// Origin message when this publish relays another message
        /// across hosts ([`MsgId::NONE`] for fresh publishes).
        parent: MsgId,
    },
    /// A full bounded subscriber queue dropped its oldest message
    /// (the freshness-over-completeness policy in action).
    BusDrop {
        /// Topic name.
        topic: String,
        /// Lineage id of the dropped (oldest) message.
        msg: MsgId,
    },
    /// A datagram was offered to a simulated UDP channel.
    ChannelSend {
        /// Channel direction label (`up` / `down` / `tcp`).
        dir: String,
        /// Channel sequence number.
        seq: u64,
        /// Payload size.
        bytes: u64,
        /// What the driver did with it.
        outcome: SendKind,
        /// Lineage id of the bus message inside the datagram
        /// ([`MsgId::NONE`] for control chatter such as acks).
        msg: MsgId,
    },
    /// A transmitted datagram was lost in the air.
    ChannelLoss {
        /// Channel direction label.
        dir: String,
        /// Channel sequence number.
        seq: u64,
        /// Lineage id of the lost datagram's message.
        msg: MsgId,
    },
    /// A datagram reached the receive queue (emitted at the tick that
    /// observed the arrival; `latency_ns` is the true channel latency
    /// including any time parked in the kernel buffer).
    ChannelDeliver {
        /// Channel direction label.
        dir: String,
        /// Channel sequence number.
        seq: u64,
        /// Lineage id of the delivered message.
        msg: MsgId,
        /// `arrived_at - sent_at` for the datagram.
        latency_ns: u64,
    },
    /// A round-trip-time sample from an echoed stamp.
    RttSample {
        /// The measured RTT.
        rtt_ns: u64,
    },
    /// The Profiler recorded a node's processing time.
    ProfileSample {
        /// Node name.
        node: String,
        /// Whether the node ran on the remote platform.
        remote: bool,
        /// Processing time.
        nanos: u64,
        /// Lineage id of the message the activation consumed
        /// ([`MsgId::NONE`] when the input did not ride the bus).
        msg: MsgId,
    },
    /// One runtime-Controller evaluation: the Algorithm 1 makespan
    /// inputs, the Algorithm 2 network inputs, and the outputs.
    ControlDecision {
        /// `T_l^v`: all-local VDP makespan estimate.
        local_vdp_ns: u64,
        /// `T_c`: offloaded VDP makespan estimate (network included).
        cloud_vdp_ns: u64,
        /// Packet bandwidth `r_t` (packets/s).
        bandwidth: f64,
        /// Signal direction `d_t` (positive = approaching the WAP).
        direction: f64,
        /// Whether the VDP runs remotely this cycle.
        vdp_remote: bool,
        /// Eq. 2c maximum linear velocity in force.
        max_linear: f64,
        /// Algorithm 2 verdict (`keep` / `invoke_local` /
        /// `invoke_remote`).
        net_decision: String,
    },
    /// One offload-policy decision tick: which `OffloadPolicy`
    /// implementation produced this cycle's placement plan and what it
    /// chose (the decision-layer counterpart of
    /// [`TraceEvent::ControlDecision`], which records the applied
    /// actuation outputs).
    PolicyDecide {
        /// Policy name (`algorithm1` / `global` / `bandit`).
        policy: String,
        /// Chosen remote node set (`+`-joined short names, `-` when
        /// everything stays on the vehicle).
        remote: String,
        /// The plan's expected VDP makespan.
        expected_vdp_ns: u64,
        /// The plan's advisory Eq. 2c velocity.
        max_velocity: f64,
    },
    /// A thread-governor recommendation (§VIII-E).
    GovernorDecision {
        /// Mean velocity-gap ratio over the window.
        mean_gap: f64,
        /// Recommended remote thread count.
        threads: u32,
    },
    /// Energy accumulated by one component since the previous delta.
    EnergyDelta {
        /// Component name (Fig. 13 bar).
        component: String,
        /// Joules added.
        joules: f64,
    },
    /// Algorithm 2 switched the placement.
    NetSwitch {
        /// `true` = nodes now invoked remotely, `false` = locally.
        to_remote: bool,
    },
    /// A node-state migration transfer started.
    MigrationStart {
        /// Total state bytes being shipped.
        bytes: u64,
    },
    /// The in-flight migration delivered its last segment.
    MigrationCommit {
        /// Transfer duration.
        elapsed_ns: u64,
        /// Cumulative reliable-channel transmission attempts.
        attempts: u64,
    },
    /// The in-flight migration was abandoned (state rebuilt from
    /// fresh sensor data instead).
    MigrationAbort,
    /// A scripted fault window opened.
    FaultBegin {
        /// Fault kind label (`blackout` / `burst_loss` /
        /// `latency_spike` / `corruption` / `remote_crash`).
        fault: String,
        /// Index of the window in the mission's fault schedule (pairs
        /// this event with its [`TraceEvent::FaultEnd`]).
        window: u64,
        /// Scripted length of the window.
        window_ns: u64,
    },
    /// A scripted fault window closed.
    FaultEnd {
        /// Fault kind label (as in [`TraceEvent::FaultBegin`]).
        fault: String,
        /// Index of the window in the mission's fault schedule.
        window: u64,
    },
    /// The cloud-liveness heartbeat expired: downlink silence under a
    /// healthy radio, so the remote host is presumed dead and the
    /// Controller invokes nodes locally at once (no outage-watchdog
    /// wait).
    HeartbeatMiss {
        /// How long the downlink had been silent when the heartbeat
        /// fired.
        silence_ns: u64,
    },
    /// A node-state migration overran its deadline and was aborted
    /// (the destination rebuilds state from fresh sensor data).
    MigrationTimeout {
        /// How long the transfer had been running.
        elapsed_ns: u64,
        /// Total state bytes the transfer was shipping.
        bytes: u64,
    },
    /// Algorithm 2 wanted to re-offload but the exponential backoff
    /// after a recent offload failure suppressed the switch.
    ReoffloadBackoff {
        /// Time remaining until re-offload is allowed again.
        wait_ns: u64,
        /// Consecutive offload failures behind the current backoff.
        failures: u64,
    },
    /// This vehicle's same-stage cloud request coalesced into a
    /// batched execution with other tenants' requests from the same
    /// contention window (the elastic scheduler's batched admission).
    CloudBatch {
        /// Coalesced stage label (`NodeKind` short name, e.g. `slam`).
        stage: String,
        /// Distinct tenants sharing the batch after this join (≥ 2).
        occupancy: u64,
        /// Contention-window index the batch formed in.
        window: u64,
        /// Marginal compute this join added instead of a full
        /// independent execution.
        marginal_ns: u64,
    },
    /// The elastic cloud's replica pool scaled at a contention-window
    /// boundary (attributed to the vehicle whose admission crossed the
    /// boundary and observed the decision).
    CloudScale {
        /// Provisioned replicas before the decision.
        from_replicas: u32,
        /// Provisioned replicas after (spin-up lag still applies
        /// before an added replica serves).
        to_replicas: u32,
        /// The previous-window utilization that triggered it.
        utilization: f64,
        /// Window index the new pool size takes effect in.
        window: u64,
    },
    /// A checkpoint transfer of offloaded node state completed: crash
    /// recovery can now resume from this snapshot instead of a cold
    /// rebuild.
    Checkpoint {
        /// Snapshot size shipped over the migration TCP path.
        bytes: u64,
        /// Transfer duration.
        elapsed_ns: u64,
    },
    /// Sustained stress (blackout or exhausted re-offload backoff)
    /// dropped the local pipeline to reduced fidelity so the control
    /// deadline keeps being met on vehicle silicon.
    DegradeEnter {
        /// What tripped the trigger (`blackout` / `backoff`).
        cause: String,
        /// SLAM particle count in force while degraded.
        slam_particles: u64,
        /// DWA trajectory-sample budget in force while degraded.
        dwa_samples: u64,
    },
    /// Sustained health restored full pipeline fidelity.
    DegradeExit {
        /// How long the degraded mode was held.
        held_ns: u64,
        /// Control cycles that missed their deadline while degraded.
        missed_cycles: u64,
    },
    /// A scripted cloud-replica crash window opened: the affected
    /// replicas stop serving (capacity shrinks) but keep billing.
    ReplicaCrash {
        /// Replicas taken down by this window.
        replicas: u64,
        /// Index of the window in the cloud fault schedule.
        window: u64,
        /// Scripted length of the window.
        window_ns: u64,
    },
    /// A scripted straggler window opened: admissions land on a slow
    /// replica and their queueing + execution stretch by `factor`.
    ReplicaStraggle {
        /// Service-time multiplier while the window is open (> 1).
        factor: f64,
        /// Index of the window in the cloud fault schedule.
        window: u64,
        /// Scripted length of the window.
        window_ns: u64,
    },
    /// A sharded fleet placed this vehicle: its floorplan stall falls
    /// in `region` (which owns the WAP it uplinks through) and its
    /// offloaded stages are served by scheduler pool `cloud_pool`.
    RegionAssign {
        /// Radio region (floorplan stripe) the vehicle parks in.
        region: u32,
        /// Cloud scheduler pool serving the region (`region %
        /// cloud_pools`).
        cloud_pool: u32,
        /// Whether the pool is homed in another region, so every
        /// admission pays the deterministic WAN hop.
        wan: bool,
    },
    /// A remote admission from a vehicle whose serving cloud pool is
    /// homed in another region paid the deterministic WAN hop.
    WanHop {
        /// Region the vehicle (and its WAP) lives in.
        from_region: u32,
        /// Region the serving scheduler pool is homed in.
        to_region: u32,
        /// The hop surcharge added to the remote processing time.
        delay_ns: u64,
    },
}

impl TraceEvent {
    /// Stable snake-case kind name (the JSON `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MissionStart { .. } => "mission_start",
            TraceEvent::MissionProgress { .. } => "mission_progress",
            TraceEvent::MissionEnd { .. } => "mission_end",
            TraceEvent::SpanBegin { .. } => "span_begin",
            TraceEvent::SpanEnd { .. } => "span_end",
            TraceEvent::BusPublish { .. } => "bus_publish",
            TraceEvent::BusDrop { .. } => "bus_drop",
            TraceEvent::ChannelSend { .. } => "channel_send",
            TraceEvent::ChannelLoss { .. } => "channel_loss",
            TraceEvent::ChannelDeliver { .. } => "channel_deliver",
            TraceEvent::RttSample { .. } => "rtt_sample",
            TraceEvent::ProfileSample { .. } => "profile_sample",
            TraceEvent::ControlDecision { .. } => "control_decision",
            TraceEvent::PolicyDecide { .. } => "policy_decide",
            TraceEvent::GovernorDecision { .. } => "governor_decision",
            TraceEvent::EnergyDelta { .. } => "energy_delta",
            TraceEvent::NetSwitch { .. } => "net_switch",
            TraceEvent::MigrationStart { .. } => "migration_start",
            TraceEvent::MigrationCommit { .. } => "migration_commit",
            TraceEvent::MigrationAbort => "migration_abort",
            TraceEvent::FaultBegin { .. } => "fault_begin",
            TraceEvent::FaultEnd { .. } => "fault_end",
            TraceEvent::HeartbeatMiss { .. } => "heartbeat_miss",
            TraceEvent::MigrationTimeout { .. } => "migration_timeout",
            TraceEvent::ReoffloadBackoff { .. } => "reoffload_backoff",
            TraceEvent::CloudBatch { .. } => "cloud_batch",
            TraceEvent::CloudScale { .. } => "cloud_scale",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::DegradeEnter { .. } => "degrade_enter",
            TraceEvent::DegradeExit { .. } => "degrade_exit",
            TraceEvent::ReplicaCrash { .. } => "replica_crash",
            TraceEvent::ReplicaStraggle { .. } => "replica_straggle",
            TraceEvent::RegionAssign { .. } => "region_assign",
            TraceEvent::WanHop { .. } => "wan_hop",
        }
    }

    /// The coarse subsystem bucket this event belongs to.
    pub fn category(&self) -> EventCategory {
        match self {
            TraceEvent::MissionStart { .. }
            | TraceEvent::MissionProgress { .. }
            | TraceEvent::MissionEnd { .. } => EventCategory::Mission,
            TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. } => EventCategory::Span,
            TraceEvent::BusPublish { .. } | TraceEvent::BusDrop { .. } => EventCategory::Bus,
            TraceEvent::ChannelSend { .. }
            | TraceEvent::ChannelLoss { .. }
            | TraceEvent::ChannelDeliver { .. } => EventCategory::Channel,
            TraceEvent::RttSample { .. } => EventCategory::Rtt,
            TraceEvent::ProfileSample { .. } => EventCategory::Profile,
            TraceEvent::ControlDecision { .. } | TraceEvent::PolicyDecide { .. } => {
                EventCategory::Control
            }
            TraceEvent::GovernorDecision { .. } => EventCategory::Governor,
            TraceEvent::EnergyDelta { .. } => EventCategory::Energy,
            TraceEvent::NetSwitch { .. }
            | TraceEvent::MigrationStart { .. }
            | TraceEvent::MigrationCommit { .. }
            | TraceEvent::MigrationAbort
            | TraceEvent::MigrationTimeout { .. }
            | TraceEvent::Checkpoint { .. } => EventCategory::Migration,
            TraceEvent::HeartbeatMiss { .. }
            | TraceEvent::ReoffloadBackoff { .. }
            | TraceEvent::DegradeEnter { .. }
            | TraceEvent::DegradeExit { .. } => EventCategory::Control,
            TraceEvent::FaultBegin { .. } | TraceEvent::FaultEnd { .. } => EventCategory::Fault,
            TraceEvent::CloudBatch { .. }
            | TraceEvent::CloudScale { .. }
            | TraceEvent::ReplicaCrash { .. }
            | TraceEvent::ReplicaStraggle { .. } => EventCategory::Cloud,
            TraceEvent::RegionAssign { .. } | TraceEvent::WanHop { .. } => EventCategory::Region,
        }
    }

    /// Append this event's fields (past `kind`) to a JSON object body.
    fn write_fields(&self, out: &mut String) {
        match self {
            TraceEvent::MissionStart {
                workload,
                deployment,
                seed,
            } => {
                field_str(out, "workload", workload);
                field_str(out, "deployment", deployment);
                field_u64(out, "seed", *seed);
            }
            TraceEvent::MissionProgress {
                x,
                y,
                goal_x,
                goal_y,
                goal_dist,
                battery_soc,
            } => {
                field_f64(out, "x", *x);
                field_f64(out, "y", *y);
                field_f64(out, "goal_x", *goal_x);
                field_f64(out, "goal_y", *goal_y);
                field_f64(out, "goal_dist", *goal_dist);
                field_f64(out, "battery_soc", *battery_soc);
            }
            TraceEvent::MissionEnd { completed, reason } => {
                field_bool(out, "completed", *completed);
                field_str(out, "reason", reason);
            }
            TraceEvent::SpanBegin { span, name, index } => {
                field_u64(out, "span_id", span.0);
                field_str(out, "name", name);
                field_u64(out, "index", *index);
            }
            TraceEvent::SpanEnd { span } => {
                field_u64(out, "span_id", span.0);
            }
            TraceEvent::BusPublish {
                topic,
                bytes,
                fanout,
                msg,
                parent,
            } => {
                field_str(out, "topic", topic);
                field_u64(out, "bytes", *bytes);
                field_u64(out, "fanout", u64::from(*fanout));
                field_u64(out, "msg", msg.0);
                field_u64(out, "parent", parent.0);
            }
            TraceEvent::BusDrop { topic, msg } => {
                field_str(out, "topic", topic);
                field_u64(out, "msg", msg.0);
            }
            TraceEvent::ChannelSend {
                dir,
                seq,
                bytes,
                outcome,
                msg,
            } => {
                field_str(out, "dir", dir);
                field_u64(out, "seq", *seq);
                field_u64(out, "bytes", *bytes);
                field_str(out, "outcome", outcome.as_str());
                field_u64(out, "msg", msg.0);
            }
            TraceEvent::ChannelLoss { dir, seq, msg } => {
                field_str(out, "dir", dir);
                field_u64(out, "seq", *seq);
                field_u64(out, "msg", msg.0);
            }
            TraceEvent::ChannelDeliver {
                dir,
                seq,
                msg,
                latency_ns,
            } => {
                field_str(out, "dir", dir);
                field_u64(out, "seq", *seq);
                field_u64(out, "msg", msg.0);
                field_u64(out, "latency_ns", *latency_ns);
            }
            TraceEvent::RttSample { rtt_ns } => {
                field_u64(out, "rtt_ns", *rtt_ns);
            }
            TraceEvent::ProfileSample {
                node,
                remote,
                nanos,
                msg,
            } => {
                field_str(out, "node", node);
                field_bool(out, "remote", *remote);
                field_u64(out, "nanos", *nanos);
                field_u64(out, "msg", msg.0);
            }
            TraceEvent::ControlDecision {
                local_vdp_ns,
                cloud_vdp_ns,
                bandwidth,
                direction,
                vdp_remote,
                max_linear,
                net_decision,
            } => {
                field_u64(out, "local_vdp_ns", *local_vdp_ns);
                field_u64(out, "cloud_vdp_ns", *cloud_vdp_ns);
                field_f64(out, "bandwidth", *bandwidth);
                field_f64(out, "direction", *direction);
                field_bool(out, "vdp_remote", *vdp_remote);
                field_f64(out, "max_linear", *max_linear);
                field_str(out, "net_decision", net_decision);
            }
            TraceEvent::PolicyDecide {
                policy,
                remote,
                expected_vdp_ns,
                max_velocity,
            } => {
                field_str(out, "policy", policy);
                field_str(out, "remote", remote);
                field_u64(out, "expected_vdp_ns", *expected_vdp_ns);
                field_f64(out, "max_velocity", *max_velocity);
            }
            TraceEvent::GovernorDecision { mean_gap, threads } => {
                field_f64(out, "mean_gap", *mean_gap);
                field_u64(out, "threads", u64::from(*threads));
            }
            TraceEvent::EnergyDelta { component, joules } => {
                field_str(out, "component", component);
                field_f64(out, "joules", *joules);
            }
            TraceEvent::NetSwitch { to_remote } => {
                field_bool(out, "to_remote", *to_remote);
            }
            TraceEvent::MigrationStart { bytes } => {
                field_u64(out, "bytes", *bytes);
            }
            TraceEvent::MigrationCommit {
                elapsed_ns,
                attempts,
            } => {
                field_u64(out, "elapsed_ns", *elapsed_ns);
                field_u64(out, "attempts", *attempts);
            }
            TraceEvent::MigrationAbort => {}
            TraceEvent::FaultBegin {
                fault,
                window,
                window_ns,
            } => {
                field_str(out, "fault", fault);
                field_u64(out, "window", *window);
                field_u64(out, "window_ns", *window_ns);
            }
            TraceEvent::FaultEnd { fault, window } => {
                field_str(out, "fault", fault);
                field_u64(out, "window", *window);
            }
            TraceEvent::HeartbeatMiss { silence_ns } => {
                field_u64(out, "silence_ns", *silence_ns);
            }
            TraceEvent::MigrationTimeout { elapsed_ns, bytes } => {
                field_u64(out, "elapsed_ns", *elapsed_ns);
                field_u64(out, "bytes", *bytes);
            }
            TraceEvent::ReoffloadBackoff { wait_ns, failures } => {
                field_u64(out, "wait_ns", *wait_ns);
                field_u64(out, "failures", *failures);
            }
            TraceEvent::CloudBatch {
                stage,
                occupancy,
                window,
                marginal_ns,
            } => {
                field_str(out, "stage", stage);
                field_u64(out, "occupancy", *occupancy);
                field_u64(out, "window", *window);
                field_u64(out, "marginal_ns", *marginal_ns);
            }
            TraceEvent::CloudScale {
                from_replicas,
                to_replicas,
                utilization,
                window,
            } => {
                field_u64(out, "from_replicas", u64::from(*from_replicas));
                field_u64(out, "to_replicas", u64::from(*to_replicas));
                field_f64(out, "utilization", *utilization);
                field_u64(out, "window", *window);
            }
            TraceEvent::Checkpoint { bytes, elapsed_ns } => {
                field_u64(out, "bytes", *bytes);
                field_u64(out, "elapsed_ns", *elapsed_ns);
            }
            TraceEvent::DegradeEnter {
                cause,
                slam_particles,
                dwa_samples,
            } => {
                field_str(out, "cause", cause);
                field_u64(out, "slam_particles", *slam_particles);
                field_u64(out, "dwa_samples", *dwa_samples);
            }
            TraceEvent::DegradeExit {
                held_ns,
                missed_cycles,
            } => {
                field_u64(out, "held_ns", *held_ns);
                field_u64(out, "missed_cycles", *missed_cycles);
            }
            TraceEvent::ReplicaCrash {
                replicas,
                window,
                window_ns,
            } => {
                field_u64(out, "replicas", *replicas);
                field_u64(out, "window", *window);
                field_u64(out, "window_ns", *window_ns);
            }
            TraceEvent::ReplicaStraggle {
                factor,
                window,
                window_ns,
            } => {
                field_f64(out, "factor", *factor);
                field_u64(out, "window", *window);
                field_u64(out, "window_ns", *window_ns);
            }
            TraceEvent::RegionAssign {
                region,
                cloud_pool,
                wan,
            } => {
                field_u64(out, "region", u64::from(*region));
                field_u64(out, "cloud_pool", u64::from(*cloud_pool));
                field_bool(out, "wan", *wan);
            }
            TraceEvent::WanHop {
                from_region,
                to_region,
                delay_ns,
            } => {
                field_u64(out, "from_region", u64::from(*from_region));
                field_u64(out, "to_region", u64::from(*to_region));
                field_u64(out, "delay_ns", *delay_ns);
            }
        }
    }
}

/// A timestamped, sequenced trace event — one JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the emission (nanoseconds since the epoch).
    pub t_ns: u64,
    /// Monotone per-tracer emission counter (total order within a
    /// run, including events sharing a timestamp).
    pub seq: u64,
    /// The causal span open at emission time ([`SpanId::NONE`] when
    /// the event fired outside any control cycle).
    pub span: SpanId,
    /// Fleet vehicle (tenant) the emitting component belongs to;
    /// `0` — the `VehicleId::NONE` sentinel — for single-vehicle runs
    /// and fleet-level events. Encoded on the wire only when non-zero,
    /// so pre-fleet traces stay byte-identical.
    pub vehicle: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Encode as one deterministic JSON object (no trailing newline).
    ///
    /// ```
    /// use lgv_trace::{SpanId, TraceEvent, TraceRecord};
    ///
    /// let rec = TraceRecord {
    ///     t_ns: 200_000_000,
    ///     seq: 3,
    ///     span: SpanId(1),
    ///     vehicle: 0,
    ///     event: TraceEvent::RttSample { rtt_ns: 24_000_000 },
    /// };
    /// assert_eq!(
    ///     rec.to_json(),
    ///     r#"{"t_ns":200000000,"seq":3,"span":1,"kind":"rtt_sample","rtt_ns":24000000}"#
    /// );
    ///
    /// // Fleet runs stamp the tenant into the envelope.
    /// let tagged = TraceRecord { vehicle: 2, ..rec };
    /// assert_eq!(
    ///     tagged.to_json(),
    ///     r#"{"t_ns":200000000,"seq":3,"span":1,"vehicle":2,"kind":"rtt_sample","rtt_ns":24000000}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        let _ = write!(
            out,
            "\"t_ns\":{},\"seq\":{},\"span\":{}",
            self.t_ns, self.seq, self.span.0
        );
        if self.vehicle != 0 {
            field_u64(&mut out, "vehicle", self.vehicle);
        }
        field_str(&mut out, "kind", self.event.kind());
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

fn field_u64(out: &mut String, name: &str, v: u64) {
    let _ = write!(out, ",\"{name}\":{v}");
}

fn field_bool(out: &mut String, name: &str, v: bool) {
    let _ = write!(out, ",\"{name}\":{v}");
}

/// Floats print via `{:?}` (shortest round-trip form, deterministic);
/// non-finite values — impossible in healthy traces — encode as
/// `null`, keeping every line valid JSON.
fn field_f64(out: &mut String, name: &str, v: f64) {
    if v.is_finite() {
        let _ = write!(out, ",\"{name}\":{v:?}");
    } else {
        let _ = write!(out, ",\"{name}\":null");
    }
}

fn field_str(out: &mut String, name: &str, v: &str) {
    let _ = write!(out, ",\"{name}\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_categories_are_consistent() {
        let events = [
            TraceEvent::MissionStart {
                workload: "Navigation".into(),
                deployment: "edge-8t".into(),
                seed: 42,
            },
            TraceEvent::SpanBegin {
                span: SpanId(1),
                name: "cycle".into(),
                index: 0,
            },
            TraceEvent::SpanEnd { span: SpanId(1) },
            TraceEvent::BusPublish {
                topic: "scan".into(),
                bytes: 10,
                fanout: 2,
                msg: MsgId(1),
                parent: MsgId::NONE,
            },
            TraceEvent::ChannelSend {
                dir: "up".into(),
                seq: 0,
                bytes: 4,
                outcome: SendKind::Transmitted,
                msg: MsgId(1),
            },
            TraceEvent::ChannelDeliver {
                dir: "up".into(),
                seq: 0,
                msg: MsgId(1),
                latency_ns: 5,
            },
            TraceEvent::RttSample { rtt_ns: 1 },
            TraceEvent::ProfileSample {
                node: "Slam".into(),
                remote: true,
                nanos: 7,
                msg: MsgId(1),
            },
            TraceEvent::ControlDecision {
                local_vdp_ns: 1,
                cloud_vdp_ns: 2,
                bandwidth: 5.0,
                direction: 0.1,
                vdp_remote: true,
                max_linear: 0.6,
                net_decision: "keep".into(),
            },
            TraceEvent::PolicyDecide {
                policy: "algorithm1".into(),
                remote: "costmap_gen+path_tracking".into(),
                expected_vdp_ns: 60_000_000,
                max_velocity: 0.6,
            },
            TraceEvent::GovernorDecision {
                mean_gap: 0.2,
                threads: 8,
            },
            TraceEvent::EnergyDelta {
                component: "motor".into(),
                joules: 0.5,
            },
            TraceEvent::MigrationAbort,
            TraceEvent::CloudBatch {
                stage: "slam".into(),
                occupancy: 3,
                window: 12,
                marginal_ns: 600_000,
            },
            TraceEvent::CloudScale {
                from_replicas: 1,
                to_replicas: 2,
                utilization: 0.9,
                window: 13,
            },
            TraceEvent::Checkpoint {
                bytes: 5184,
                elapsed_ns: 40_000_000,
            },
            TraceEvent::DegradeEnter {
                cause: "blackout".into(),
                slam_particles: 4,
                dwa_samples: 100,
            },
            TraceEvent::DegradeExit {
                held_ns: 6_000_000_000,
                missed_cycles: 0,
            },
            TraceEvent::ReplicaCrash {
                replicas: 1,
                window: 0,
                window_ns: 4_000_000_000,
            },
            TraceEvent::ReplicaStraggle {
                factor: 2.5,
                window: 1,
                window_ns: 3_000_000_000,
            },
            TraceEvent::RegionAssign {
                region: 3,
                cloud_pool: 1,
                wan: true,
            },
            TraceEvent::WanHop {
                from_region: 3,
                to_region: 1,
                delay_ns: 10_000_000,
            },
        ];
        for e in &events {
            assert!(!e.kind().is_empty());
            assert!(EventCategory::ALL.contains(&e.category()));
        }
    }

    #[test]
    fn json_escapes_strings() {
        let rec = TraceRecord {
            t_ns: 0,
            seq: 0,
            span: SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::MissionEnd {
                completed: false,
                reason: "a \"quoted\"\nline\\end".into(),
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t_ns":0,"seq":0,"span":0,"kind":"mission_end","completed":false,"reason":"a \"quoted\"\nline\\end"}"#
        );
    }

    #[test]
    fn json_floats_roundtrip_and_nonfinite_is_null() {
        let rec = TraceRecord {
            t_ns: 1,
            seq: 2,
            span: SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::EnergyDelta {
                component: "motor".into(),
                joules: 0.1,
            },
        };
        assert!(rec.to_json().contains("\"joules\":0.1"));
        let bad = TraceRecord {
            t_ns: 1,
            seq: 3,
            span: SpanId::NONE,
            vehicle: 0,
            event: TraceEvent::EnergyDelta {
                component: "motor".into(),
                joules: f64::NAN,
            },
        };
        assert!(bad.to_json().contains("\"joules\":null"));
    }

    #[test]
    fn unit_variant_encodes_without_fields() {
        let rec = TraceRecord {
            t_ns: 9,
            seq: 1,
            span: SpanId(2),
            vehicle: 0,
            event: TraceEvent::MigrationAbort,
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t_ns":9,"seq":1,"span":2,"kind":"migration_abort"}"#
        );
    }
}
