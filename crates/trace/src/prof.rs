//! Scoped wall-clock profiling: the host-time complement to the
//! virtual-time event layer.
//!
//! Where [`crate::Tracer`] answers "what did the *simulation* do,
//! when", this module answers "where did the *host CPU* go" — which is
//! what the `make fig13 fast` kernel work is judged against. The
//! design goals, in order:
//!
//! 1. **Zero cost when compiled out.** Without the `prof` cargo
//!    feature every function here is an empty inline stub and a
//!    [`scope`] guard is a zero-sized type; instrumented hot loops
//!    compile to exactly the code they had before.
//! 2. **Near-zero cost when runtime-disabled.** With the feature on
//!    but [`set_enabled`]`(false)` (the default), a [`scope`] call is
//!    one relaxed atomic load.
//! 3. **Low overhead when on.** One thread-local lookup, a linear
//!    child scan over a handful of siblings, and two `Instant::now()`
//!    calls per scope. Scopes are meant for *kernels* (a full lidar
//!    sweep, one particle's scan match), not per-beam inner loops.
//!
//! ## Model
//!
//! Each thread owns a call-path tree: entering `scope("slam/raycast")`
//! finds-or-creates the child of the current node named
//! `slam/raycast`, making call paths like
//! `fig13;mission/cycle;slam/scan_match;slam/particle_score` the unit
//! of attribution. Guards are RAII: dropping the guard pops the stack
//! and folds the elapsed wall time into the node (count, total,
//! min/max). *Self* time is derived, not stored: a node's total minus
//! its children's totals.
//!
//! Worker threads spawned by the `ParallelExecutor` harvest their
//! local trees with [`take_thread`] and the fork-join caller grafts
//! them under its own current scope with [`absorb`] — so a parallel
//! scan match is attributed to the call path that forked it, and the
//! merged tree's *shape* is deterministic (values are wall-clock and
//! are not).
//!
//! ## Naming convention
//!
//! `subsystem/kernel`, lowercase, `_`-separated words: `sim/raycast`,
//! `slam/scan_match`, `net/channel_tick`, `fleet/round`,
//! `mission/cycle`. Scenario roots use the bare scenario name
//! (`fig13`). Semicolons are reserved (folded-stack separator) and are
//! replaced with `_` on export.
//!
//! See `docs/OBSERVABILITY.md` § "Wall-clock profiling" for the JSON
//! schema built on top of this module and the flamegraph workflow.

use std::fmt::Write as _;

/// A portable, mergeable call-path profile: what [`take_thread`]
/// returns and what exports/reports consume. Plain data — available
/// with or without the `prof` feature, so report tooling always
/// compiles.
///
/// Node 0 is a synthetic root (empty name, no timing); real scopes
/// hang beneath it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileTree {
    nodes: Vec<ProfNode>,
}

/// One call-path node of a [`ProfileTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Scope name (one path segment, e.g. `slam/scan_match`).
    pub name: String,
    /// Parent index (0 for top-level scopes; the root points at itself).
    pub parent: usize,
    /// Child indices, in first-seen order.
    pub children: Vec<usize>,
    /// Number of times the scope was entered.
    pub count: u64,
    /// Total wall time spent inside, nanoseconds (includes children).
    pub total_ns: u64,
    /// Shortest single visit, nanoseconds.
    pub min_ns: u64,
    /// Longest single visit, nanoseconds.
    pub max_ns: u64,
}

impl Default for ProfileTree {
    fn default() -> Self {
        ProfileTree::new()
    }
}

impl ProfileTree {
    /// An empty tree (just the synthetic root).
    pub fn new() -> Self {
        ProfileTree {
            nodes: vec![ProfNode {
                name: String::new(),
                parent: 0,
                children: Vec::new(),
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
            }],
        }
    }

    /// All nodes, root first. Index into this with the ids returned by
    /// [`ProfileTree::children_sorted`] and [`ProfNode::children`].
    pub fn nodes(&self) -> &[ProfNode] {
        &self.nodes
    }

    /// Whether the tree holds any real scope.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// `node`'s children sorted by name — the canonical (deterministic)
    /// visiting order for exports and reports.
    pub fn children_sorted(&self, node: usize) -> Vec<usize> {
        let mut c = self.nodes[node].children.clone();
        c.sort_by(|&a, &b| self.nodes[a].name.cmp(&self.nodes[b].name));
        c
    }

    /// Wall time spent in `node` itself, excluding child scopes
    /// (saturating: clock jitter can make children sum past the
    /// parent by a few nanoseconds).
    pub fn self_ns(&self, node: usize) -> u64 {
        let children: u64 = self.nodes[node]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum();
        self.nodes[node].total_ns.saturating_sub(children)
    }

    /// Summed total time of the top-level scopes — the profiled share
    /// of whatever wall-clock interval the tree covers.
    pub fn profiled_ns(&self) -> u64 {
        self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum()
    }

    /// Find-or-create the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(ProfNode {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn fold_visit(&mut self, node: usize, count: u64, total_ns: u64, min_ns: u64, max_ns: u64) {
        let n = &mut self.nodes[node];
        if n.count == 0 {
            n.min_ns = min_ns;
            n.max_ns = max_ns;
        } else {
            n.min_ns = n.min_ns.min(min_ns);
            n.max_ns = n.max_ns.max(max_ns);
        }
        n.count += count;
        n.total_ns += total_ns;
    }

    /// Merge `other` into `self`: same-path nodes combine their stats
    /// (counts/totals add, min/max widen), new paths are created. The
    /// resulting *shape* depends only on the set of paths, not on the
    /// merge order — the cross-worker determinism the suite relies on.
    pub fn merge(&mut self, other: &ProfileTree) {
        self.graft(0, other, 0);
    }

    /// Merge `other`'s top-level scopes as children of `at` — how a
    /// fork-join caller adopts its workers' trees under the scope that
    /// spawned them.
    pub fn merge_at(&mut self, at: usize, other: &ProfileTree) {
        assert!(at < self.nodes.len(), "merge_at: node out of range");
        self.graft(at, other, 0);
    }

    fn graft(&mut self, dst: usize, src_tree: &ProfileTree, src: usize) {
        for &sc in &src_tree.nodes[src].children {
            let s = &src_tree.nodes[sc];
            let dc = self.child(dst, &s.name);
            self.fold_visit(dc, s.count, s.total_ns, s.min_ns, s.max_ns);
            self.graft(dc, src_tree, sc);
        }
    }

    /// The `;`-joined call path of `node` (empty for the root).
    pub fn path(&self, node: usize) -> String {
        let mut segs: Vec<&str> = Vec::new();
        let mut n = node;
        while n != 0 {
            segs.push(&self.nodes[n].name);
            n = self.nodes[n].parent;
        }
        segs.reverse();
        segs.join(";")
    }

    /// Visit every real node depth-first in canonical (name-sorted)
    /// order, yielding `(node, depth)` — depth 1 for top-level scopes.
    pub fn walk(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.nodes.len() - 1);
        let mut stack: Vec<(usize, usize)> = self
            .children_sorted(0)
            .into_iter()
            .rev()
            .map(|c| (c, 1))
            .collect();
        while let Some((n, d)) = stack.pop() {
            out.push((n, d));
            for c in self.children_sorted(n).into_iter().rev() {
                stack.push((c, d + 1));
            }
        }
        out
    }

    /// Folded-stack export (flamegraph-compatible): one
    /// `seg;seg;seg <self_ns>` line per node, in canonical order.
    /// Every node is emitted, including zero-self interior nodes, so
    /// [`ProfileTree::from_folded`] round-trips the full shape. Pipe
    /// through `flamegraph.pl` to render (self time in ns plays the
    /// role of sample counts).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (n, _) in self.walk() {
            let path = self.path(n).replace(' ', "_");
            let _ = writeln!(out, "{} {}", path, self.self_ns(n));
        }
        out
    }

    /// Parse a folded-stack dump back into a tree. Totals are
    /// reconstructed bottom-up (a node's total = its self value + its
    /// children's totals); counts are unknown in the format and read
    /// back as 1 per mentioned path. `to_folded ∘ from_folded` is the
    /// identity on folded text (up to count/min/max, which folded does
    /// not carry).
    pub fn from_folded(text: &str) -> Result<ProfileTree, String> {
        let mut tree = ProfileTree::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (path, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no value field", i + 1))?;
            let self_ns: u64 = value
                .parse()
                .map_err(|_| format!("line {}: bad value {value:?}", i + 1))?;
            let mut node = 0usize;
            for seg in path.split(';') {
                if seg.is_empty() {
                    return Err(format!("line {}: empty path segment", i + 1));
                }
                node = tree.child(node, seg);
            }
            tree.nodes[node].count = 1;
            // Stash self time in total_ns; promoted to true totals below.
            tree.nodes[node].total_ns += self_ns;
        }
        // Bottom-up: children were always created after their parent,
        // so a reverse index walk sees every child before its parent.
        for n in (1..tree.nodes.len()).rev() {
            let total = tree.nodes[n].total_ns;
            tree.nodes[n].min_ns = total;
            tree.nodes[n].max_ns = total;
            let p = tree.nodes[n].parent;
            if p != 0 {
                tree.nodes[p].total_ns += total;
            }
        }
        Ok(tree)
    }
}

#[cfg(feature = "prof")]
mod imp {
    use super::ProfileTree;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    struct ThreadProfiler {
        tree: ProfileTree,
        /// Open scopes: (node index, entry instant).
        stack: Vec<(usize, Instant)>,
    }

    thread_local! {
        static PROFILER: RefCell<ThreadProfiler> = RefCell::new(ThreadProfiler {
            tree: ProfileTree::new(),
            stack: Vec::new(),
        });
    }

    /// Turn collection on/off process-wide (off at startup). Existing
    /// open scopes keep their entry decision: a guard records iff
    /// profiling was enabled when it was created.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether collection is currently on.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Whether the profiler is compiled in at all (`prof` feature).
    pub fn is_available() -> bool {
        true
    }

    /// RAII wall-clock scope. Created by [`scope`]; records on drop.
    #[must_use = "a profiling scope measures until dropped"]
    pub struct ScopeGuard {
        /// Whether this guard actually pushed a frame (profiling was
        /// enabled at entry) — drop must pop exactly what entry pushed
        /// even if the enable flag flips mid-scope.
        active: bool,
    }

    /// Enter the scope `name` as a child of the thread's current
    /// scope. No-op (one atomic load) when disabled.
    pub fn scope(name: &'static str) -> ScopeGuard {
        if !is_enabled() {
            return ScopeGuard { active: false };
        }
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            let parent = p.stack.last().map_or(0, |&(n, _)| n);
            let node = p.tree.child(parent, name);
            p.stack.push((node, Instant::now()));
        });
        ScopeGuard { active: true }
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            PROFILER.with(|p| {
                let mut p = p.borrow_mut();
                if let Some((node, entered)) = p.stack.pop() {
                    let dt = entered.elapsed().as_nanos() as u64;
                    p.tree.fold_visit(node, 1, dt, dt, dt);
                }
            });
        }
    }

    /// Drain this thread's profile, leaving it empty. Open scopes (the
    /// guards still alive on the stack) survive the drain and will
    /// record into the fresh tree — but for well-attributed results,
    /// harvest at points where this thread has no open scopes.
    pub fn take_thread() -> ProfileTree {
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            let tree = std::mem::take(&mut p.tree);
            // Re-anchor surviving open scopes at the fresh root: their
            // nodes belong to the drained tree.
            for frame in p.stack.iter_mut() {
                frame.0 = 0;
            }
            let n = p.stack.len();
            let mut stack_path: Vec<usize> = Vec::with_capacity(n);
            for i in 0..n {
                let parent = stack_path.last().copied().unwrap_or(0);
                // The drained tree no longer names these frames; open
                // frames re-enter as anonymous "(open)" nodes so their
                // residual time is not silently lost.
                let node = p.tree.child(parent, "(open)");
                stack_path.push(node);
                p.stack[i].0 = node;
            }
            tree
        })
    }

    /// Graft `tree`'s top-level scopes under this thread's current
    /// scope — the fork-join caller's side of worker harvesting.
    pub fn absorb(tree: &ProfileTree) {
        if tree.is_empty() || !is_enabled() {
            return;
        }
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            let at = p.stack.last().map_or(0, |&(n, _)| n);
            p.tree.merge_at(at, tree);
        });
    }
}

#[cfg(not(feature = "prof"))]
mod imp {
    use super::ProfileTree;

    /// No-op: the profiler is compiled out (`prof` feature off).
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Always `false` without the `prof` feature.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// Whether the profiler is compiled in at all (`prof` feature).
    #[inline(always)]
    pub fn is_available() -> bool {
        false
    }

    /// Zero-sized stand-in for the RAII scope guard.
    #[must_use = "a profiling scope measures until dropped"]
    pub struct ScopeGuard;

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn scope(_name: &'static str) -> ScopeGuard {
        ScopeGuard
    }

    /// Always returns an empty tree without the `prof` feature.
    #[inline(always)]
    pub fn take_thread() -> ProfileTree {
        ProfileTree::new()
    }

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn absorb(_tree: &ProfileTree) {}
}

pub use imp::{absorb, is_available, is_enabled, scope, set_enabled, take_thread, ScopeGuard};

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a tree by hand: paths with (count, total).
    fn tree_of(paths: &[(&str, u64, u64)]) -> ProfileTree {
        let mut t = ProfileTree::new();
        for &(path, count, total) in paths {
            let mut node = 0;
            for seg in path.split(';') {
                node = t.child(node, seg);
            }
            t.fold_visit(node, count, total, total, total);
        }
        t
    }

    #[test]
    fn self_time_subtracts_children() {
        let t = tree_of(&[("a", 1, 100), ("a;b", 2, 30), ("a;c", 1, 50)]);
        let a = t.nodes()[0].children[0];
        assert_eq!(t.nodes()[a].total_ns, 100);
        assert_eq!(t.self_ns(a), 20);
        assert_eq!(t.profiled_ns(), 100);
        // A leaf's self time is its total.
        let b = t.nodes()[a].children[0];
        assert_eq!(t.self_ns(b), 30);
    }

    #[test]
    fn self_time_saturates_on_jitter() {
        // Children can sum past the parent by clock jitter.
        let t = tree_of(&[("a", 1, 100), ("a;b", 1, 120)]);
        let a = t.nodes()[0].children[0];
        assert_eq!(t.self_ns(a), 0);
    }

    #[test]
    fn merge_is_shape_deterministic_regardless_of_order() {
        let w1 = tree_of(&[("score", 3, 300), ("score;raycast", 3, 120)]);
        let w2 = tree_of(&[("integrate", 2, 80), ("score", 1, 90)]);
        let w3 = tree_of(&[("score;raycast", 5, 500)]);

        let mut ab = ProfileTree::new();
        ab.merge(&w1);
        ab.merge(&w2);
        ab.merge(&w3);
        let mut ba = ProfileTree::new();
        ba.merge(&w3);
        ba.merge(&w2);
        ba.merge(&w1);

        // Canonical folded output is identical either way (values too:
        // they are sums, and sums commute).
        assert_eq!(ab.to_folded(), ba.to_folded());
        // And the aggregates add up.
        let score = ab.children_sorted(0)[1];
        assert_eq!(ab.nodes()[score].name, "score");
        assert_eq!(ab.nodes()[score].count, 4);
        assert_eq!(ab.nodes()[score].total_ns, 390);
        let raycast = ab.nodes()[score].children[0];
        assert_eq!(ab.nodes()[raycast].count, 8);
        assert_eq!(ab.nodes()[raycast].total_ns, 620);
    }

    #[test]
    fn merge_at_grafts_under_the_given_node() {
        let mut t = tree_of(&[("job", 1, 1000)]);
        let job = t.nodes()[0].children[0];
        let worker = tree_of(&[("score", 4, 400)]);
        t.merge_at(job, &worker);
        assert_eq!(t.path(t.nodes()[job].children[0]), "job;score");
        assert_eq!(t.self_ns(job), 600);
    }

    #[test]
    fn min_max_widen_on_merge() {
        let mut t = tree_of(&[("a", 1, 10)]);
        t.merge(&tree_of(&[("a", 1, 50)]));
        let a = t.nodes()[0].children[0];
        assert_eq!(t.nodes()[a].min_ns, 10);
        assert_eq!(t.nodes()[a].max_ns, 50);
        assert_eq!(t.nodes()[a].count, 2);
    }

    #[test]
    fn folded_round_trips() {
        let t = tree_of(&[
            ("fig13", 1, 1000),
            ("fig13;mission/cycle", 10, 900),
            ("fig13;mission/cycle;slam/scan_match", 10, 600),
            ("fig13;mission/cycle;sim/raycast", 10, 200),
            ("aaa_first", 2, 5),
        ]);
        let folded = t.to_folded();
        let parsed = ProfileTree::from_folded(&folded).expect("parses");
        assert_eq!(parsed.to_folded(), folded, "folded text is a fixed point");
        // Totals are reconstructed bottom-up.
        let fig13 = parsed
            .children_sorted(0)
            .into_iter()
            .find(|&n| parsed.nodes()[n].name == "fig13")
            .unwrap();
        assert_eq!(parsed.nodes()[fig13].total_ns, 1000);
    }

    #[test]
    fn folded_output_is_name_sorted_and_counts_self() {
        let t = tree_of(&[("b", 1, 10), ("a", 1, 20), ("a;z", 1, 5)]);
        let folded = t.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["a 15", "a;z 5", "b 10"]);
    }

    #[test]
    fn from_folded_rejects_garbage() {
        assert!(ProfileTree::from_folded("no_value_here").is_err());
        assert!(ProfileTree::from_folded("a;;b 10").is_err());
        assert!(ProfileTree::from_folded("a notanumber").is_err());
        assert!(ProfileTree::from_folded("").unwrap().is_empty());
    }

    #[test]
    fn walk_is_depth_first_canonical() {
        let t = tree_of(&[("b", 1, 1), ("a", 1, 2), ("a;y", 1, 1), ("a;x", 1, 1)]);
        let names: Vec<(String, usize)> = t
            .walk()
            .into_iter()
            .map(|(n, d)| (t.nodes()[n].name.clone(), d))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".to_string(), 1),
                ("x".to_string(), 2),
                ("y".to_string(), 2),
                ("b".to_string(), 1),
            ]
        );
    }

    // Live-collection tests only exist when the profiler is compiled
    // in; `cargo test --workspace` enables it via lgv-bench's default
    // features.
    #[cfg(feature = "prof")]
    mod live {
        use super::super::*;

        /// Serialize live-profiler tests: they share the process-wide
        /// enable flag and the test harness runs threads in parallel.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

        fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let _ = take_thread();
            set_enabled(true);
            let r = f();
            set_enabled(false);
            let _ = take_thread();
            r
        }

        #[test]
        fn scopes_nest_and_account_self_vs_total() {
            let tree = with_profiler(|| {
                {
                    let _a = scope("a");
                    std::hint::black_box((0..1000).sum::<u64>());
                    {
                        let _b = scope("b");
                        std::hint::black_box((0..1000).sum::<u64>());
                    }
                    {
                        let _b = scope("b");
                    }
                    let _c = scope("c");
                }
                take_thread()
            });
            let a = tree.children_sorted(0)[0];
            assert_eq!(tree.nodes()[a].name, "a");
            assert_eq!(tree.nodes()[a].count, 1);
            let kids = tree.children_sorted(a);
            assert_eq!(kids.len(), 2, "b and c under a");
            let b = kids[0];
            assert_eq!(tree.nodes()[b].name, "b");
            assert_eq!(tree.nodes()[b].count, 2, "same-name scopes aggregate");
            assert!(tree.nodes()[b].min_ns <= tree.nodes()[b].max_ns);
            // total(a) >= total(b) + total(c); self = the difference.
            let c = kids[1];
            let child_total = tree.nodes()[b].total_ns + tree.nodes()[c].total_ns;
            assert!(tree.nodes()[a].total_ns >= child_total);
            assert_eq!(
                tree.self_ns(a),
                tree.nodes()[a].total_ns - child_total,
                "self is total minus children"
            );
        }

        #[test]
        fn disabled_collection_records_nothing() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let _ = take_thread();
            set_enabled(false);
            {
                let _s = scope("ghost");
            }
            assert!(take_thread().is_empty());
        }

        #[test]
        fn absorb_attaches_under_current_scope() {
            let tree = with_profiler(|| {
                let worker = {
                    let _s = scope("kernel");
                    drop(_s);
                    take_thread()
                };
                {
                    let _job = scope("job");
                    absorb(&worker);
                }
                take_thread()
            });
            let job = tree.children_sorted(0)[0];
            assert_eq!(tree.nodes()[job].name, "job");
            let kernel = tree.nodes()[job].children[0];
            assert_eq!(tree.path(kernel), "job;kernel");
            assert_eq!(tree.nodes()[kernel].count, 1);
        }

        #[test]
        fn worker_threads_have_independent_trees() {
            let (a, b) = with_profiler(|| {
                let h = std::thread::spawn(|| {
                    let _s = scope("worker_only");
                    drop(_s);
                    take_thread()
                });
                {
                    let _s = scope("main_only");
                }
                (take_thread(), h.join().unwrap())
            });
            assert_eq!(a.nodes()[a.children_sorted(0)[0]].name, "main_only");
            assert_eq!(b.nodes()[b.children_sorted(0)[0]].name, "worker_only");
        }
    }
}
