//! Ground-truth 2-D worlds.
//!
//! A [`World`] is an immutable boolean occupancy grid representing the
//! true environment the LGV operates in. It provides exact ray casting
//! for the laser sensor and collision queries for the vehicle. The
//! [`presets`] module ships deterministic floorplans that stand in for
//! the paper's lab environment and the Intel Research Lab dataset.

use lgv_types::prelude::*;

pub mod generator;
pub mod presets;

/// Immutable ground-truth occupancy world.
#[derive(Debug, Clone)]
pub struct World {
    dims: GridDims,
    /// Row-major occupancy; `true` = solid.
    occ: Vec<bool>,
}

impl World {
    /// Grid geometry.
    pub fn dims(&self) -> &GridDims {
        &self.dims
    }

    /// Is the cell occupied? Out-of-bounds counts as occupied (walls
    /// of the universe).
    pub fn occupied(&self, idx: GridIndex) -> bool {
        if !self.dims.contains(idx) {
            return true;
        }
        self.occ[self.dims.flat(idx)]
    }

    /// Is the world-frame point inside a solid cell?
    pub fn occupied_at(&self, p: Point2) -> bool {
        self.occupied(self.dims.world_to_grid(p))
    }

    /// Fraction of in-bounds cells that are free.
    pub fn free_fraction(&self) -> f64 {
        if self.occ.is_empty() {
            return 0.0;
        }
        let free = self.occ.iter().filter(|&&o| !o).count();
        free as f64 / self.occ.len() as f64
    }

    /// Cast a ray from `from` at absolute angle `angle` and return the
    /// distance to the first solid cell, capped at `max_range`.
    ///
    /// This is the ground-truth geometry the simulated lidar samples.
    pub fn raycast(&self, from: Point2, angle: f64, max_range: f64) -> f64 {
        self.raycast_dir(from, angle.cos(), angle.sin(), max_range)
    }

    /// [`World::raycast`] with the direction given as a unit vector.
    ///
    /// This is the hot path of the lidar model (beams × cells per
    /// scan), so the Amanatides–Woo traversal is inlined here with the
    /// occupancy lookup fused in, instead of driving the generic
    /// [`GridRay`] iterator cell by cell. The stepping math (axis
    /// tie-break, cell budget, stop-at-end-cell) mirrors `GridRay`
    /// exactly; callers precompute `(dir_x, dir_y)` once per beam
    /// table instead of paying two trig calls per beam per scan.
    pub fn raycast_dir(&self, from: Point2, dir_x: f64, dir_y: f64, max_range: f64) -> f64 {
        let dims = &self.dims;
        let res = dims.resolution;
        let to = Point2::new(from.x + max_range * dir_x, from.y + max_range * dir_y);
        let start = dims.world_to_grid(from);
        let end = dims.world_to_grid(to);
        let dx = to.x - from.x;
        let dy = to.y - from.y;

        let step_x: i32 = if dx > 0.0 { 1 } else { -1 };
        let step_y: i32 = if dy > 0.0 { 1 } else { -1 };

        // Parametric distance (p = from + t*dir, t ∈ [0,1]) to the
        // first vertical / horizontal cell border.
        let fx = (from.x - dims.origin.x) / res - start.col as f64;
        let fy = (from.y - dims.origin.y) / res - start.row as f64;
        let mut t_max_x = if dx.abs() < 1e-12 {
            f64::INFINITY
        } else if dx > 0.0 {
            (1.0 - fx) * res / dx.abs()
        } else {
            fx * res / dx.abs()
        };
        let mut t_max_y = if dy.abs() < 1e-12 {
            f64::INFINITY
        } else if dy > 0.0 {
            (1.0 - fy) * res / dy.abs()
        } else {
            fy * res / dy.abs()
        };
        let t_delta_x = if dx.abs() < 1e-12 {
            f64::INFINITY
        } else {
            res / dx.abs()
        };
        let t_delta_y = if dy.abs() < 1e-12 {
            f64::INFINITY
        } else {
            res / dy.abs()
        };

        let (w, h) = (dims.width as i32, dims.height as i32);
        let mut remaining = (start.chebyshev(end) as u32 + 1) * 2 + 4;
        let mut cur = start;
        loop {
            if remaining == 0 {
                return max_range;
            }
            remaining -= 1;
            // Out of bounds counts as occupied (walls of the universe).
            let oob = cur.col < 0 || cur.row < 0 || cur.col >= w || cur.row >= h;
            if oob || self.occ[cur.row as usize * w as usize + cur.col as usize] {
                // Distance to the hit cell centre, clamped into range.
                let hit = dims.grid_to_world(cur);
                return from.distance(hit).min(max_range);
            }
            if cur == end {
                return max_range;
            }
            if t_max_x < t_max_y {
                t_max_x += t_delta_x;
                cur.col += step_x;
            } else {
                t_max_y += t_delta_y;
                cur.row += step_y;
            }
        }
    }

    /// Would a disc of radius `r` centred at `p` collide with any
    /// solid cell? Conservative circle-vs-grid test used by the
    /// vehicle simulator.
    pub fn collides_disc(&self, p: Point2, r: f64) -> bool {
        let lo = self.dims.world_to_grid(Point2::new(p.x - r, p.y - r));
        let hi = self.dims.world_to_grid(Point2::new(p.x + r, p.y + r));
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                let idx = GridIndex::new(col, row);
                if self.occupied(idx) {
                    let c = self.dims.grid_to_world(idx);
                    let half = self.dims.resolution / 2.0;
                    // Closest point on the cell square to p.
                    let cx = p.x.clamp(c.x - half, c.x + half);
                    let cy = p.y.clamp(c.y - half, c.y + half);
                    if p.distance(Point2::new(cx, cy)) <= r {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Snapshot the world as a ground-truth [`MapMsg`] (used to seed
    /// the "known map" navigation workload).
    pub fn to_map_msg(&self, stamp: SimTime) -> MapMsg {
        MapMsg {
            stamp,
            dims: self.dims,
            cells: self
                .occ
                .iter()
                .map(|&o| if o { MapMsg::OCCUPIED } else { MapMsg::FREE })
                .collect(),
        }
    }
}

/// Builder assembling a world from geometric primitives.
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    dims: GridDims,
    occ: Vec<bool>,
}

impl WorldBuilder {
    /// Empty (all free) world of `width × height` metres at the given
    /// resolution, origin at (0, 0).
    pub fn new(width_m: f64, height_m: f64, resolution: f64) -> Self {
        let w = (width_m / resolution).round() as u32;
        let h = (height_m / resolution).round() as u32;
        let dims = GridDims::new(w, h, resolution, Point2::ORIGIN);
        WorldBuilder {
            dims,
            occ: vec![false; dims.len()],
        }
    }

    /// Surround the world with solid boundary walls.
    pub fn walls(mut self) -> Self {
        let (w, h) = (self.dims.width as i32, self.dims.height as i32);
        for col in 0..w {
            self.set(GridIndex::new(col, 0), true);
            self.set(GridIndex::new(col, h - 1), true);
        }
        for row in 0..h {
            self.set(GridIndex::new(0, row), true);
            self.set(GridIndex::new(w - 1, row), true);
        }
        self
    }

    /// Fill an axis-aligned rectangle (world metres) with solid cells.
    pub fn rect(mut self, min: Point2, max: Point2) -> Self {
        let lo = self.dims.world_to_grid(min);
        let hi = self.dims.world_to_grid(max);
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                self.set(GridIndex::new(col, row), true);
            }
        }
        self
    }

    /// Fill a disc (world metres) with solid cells.
    pub fn disc(mut self, centre: Point2, radius: f64) -> Self {
        let lo = self
            .dims
            .world_to_grid(Point2::new(centre.x - radius, centre.y - radius));
        let hi = self
            .dims
            .world_to_grid(Point2::new(centre.x + radius, centre.y + radius));
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                let idx = GridIndex::new(col, row);
                if self.dims.contains(idx)
                    && self.dims.grid_to_world(idx).distance(centre) <= radius
                {
                    self.set(idx, true);
                }
            }
        }
        self
    }

    /// Carve a free rectangle (e.g. a doorway through a wall).
    pub fn carve(mut self, min: Point2, max: Point2) -> Self {
        let lo = self.dims.world_to_grid(min);
        let hi = self.dims.world_to_grid(max);
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                self.set(GridIndex::new(col, row), false);
            }
        }
        self
    }

    fn set(&mut self, idx: GridIndex, v: bool) {
        if self.dims.contains(idx) {
            let flat = self.dims.flat(idx);
            self.occ[flat] = v;
        }
    }

    /// Finish building.
    pub fn build(self) -> World {
        World {
            dims: self.dims,
            occ: self.occ,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_room() -> World {
        WorldBuilder::new(10.0, 8.0, 0.1).walls().build()
    }

    #[test]
    fn bounds_are_occupied() {
        let w = empty_room();
        assert!(w.occupied(GridIndex::new(-1, 0)));
        assert!(w.occupied(GridIndex::new(0, 0))); // boundary wall
        assert!(!w.occupied(GridIndex::new(50, 40))); // interior
    }

    #[test]
    fn raycast_hits_wall_at_expected_distance() {
        let w = empty_room();
        let from = Point2::new(5.0, 4.0);
        // Ray towards +x: wall cells start at col 99 (x ∈ [9.9, 10.0]).
        let d = w.raycast(from, 0.0, 20.0);
        assert!((d - 4.95).abs() < 0.1, "d = {d}");
        // Ray towards -x: wall at x ∈ [0, 0.1].
        let d = w.raycast(from, std::f64::consts::PI, 20.0);
        assert!((d - 4.95).abs() < 0.1, "d = {d}");
    }

    #[test]
    fn raycast_respects_max_range() {
        let w = empty_room();
        let d = w.raycast(Point2::new(5.0, 4.0), 0.0, 2.0);
        assert_eq!(d, 2.0);
    }

    #[test]
    fn raycast_sees_obstacle() {
        let w = WorldBuilder::new(10.0, 8.0, 0.1)
            .walls()
            .rect(Point2::new(6.0, 3.0), Point2::new(6.5, 5.0))
            .build();
        let d = w.raycast(Point2::new(5.0, 4.0), 0.0, 20.0);
        assert!((d - 1.0).abs() < 0.15, "d = {d}");
    }

    #[test]
    fn disc_obstacle_marks_cells() {
        let w = WorldBuilder::new(10.0, 8.0, 0.1)
            .disc(Point2::new(5.0, 4.0), 0.5)
            .build();
        assert!(w.occupied_at(Point2::new(5.0, 4.0)));
        assert!(w.occupied_at(Point2::new(5.4, 4.0)));
        assert!(!w.occupied_at(Point2::new(5.7, 4.0)));
    }

    #[test]
    fn carve_opens_doorway() {
        let w = WorldBuilder::new(10.0, 8.0, 0.1)
            .rect(Point2::new(5.0, 0.0), Point2::new(5.1, 8.0))
            .carve(Point2::new(5.0, 3.5), Point2::new(5.1, 4.5))
            .build();
        assert!(w.occupied_at(Point2::new(5.05, 1.0)));
        assert!(!w.occupied_at(Point2::new(5.05, 4.0)));
    }

    #[test]
    fn collision_disc() {
        let w = empty_room();
        assert!(!w.collides_disc(Point2::new(5.0, 4.0), 0.2));
        // Touching the +x wall (wall occupies x ≥ 9.9).
        assert!(w.collides_disc(Point2::new(9.8, 4.0), 0.2));
        assert!(w.collides_disc(Point2::new(0.3, 0.3), 0.25));
    }

    #[test]
    fn free_fraction_sane() {
        let w = empty_room();
        let f = w.free_fraction();
        assert!(f > 0.9 && f < 1.0, "{f}");
    }

    #[test]
    fn map_msg_roundtrip_values() {
        let w = WorldBuilder::new(2.0, 2.0, 0.5).walls().build();
        let m = w.to_map_msg(SimTime::EPOCH);
        assert_eq!(m.cells.len(), 16);
        assert_eq!(m.cells[0], MapMsg::OCCUPIED);
        assert_eq!(m.cells[5], MapMsg::FREE);
        assert_eq!(m.known_fraction(), 1.0);
    }
}
