//! Compute-platform timing model (paper Table III).
//!
//! Each node reports its demand as a [`Work`] record (cycles split
//! into serial and parallelizable parts, see `lgv_types::work`). A
//! [`Platform`] converts work into processing time:
//!
//! ```text
//! t = serial/(f·ipc)  +  [parallel/S + spawn(T)]/(f·ipc)
//! S  = min(T, hw_threads, items) with SMT siblings yielding 30 %
//! spawn(T) = base + per_thread·T        (thread-pool dispatch cost)
//! ```
//!
//! The three presets are calibrated once against the paper's anchor
//! ratios: ECN (SLAM) acceleration up to ≈ 27.97× on the gateway and
//! ≈ 40.84× on the cloud (Fig. 9), VDP acceleration up to ≈ 23.92× /
//! 17.29× with the "no benefit past 4 threads" plateau (Fig. 10).
//! Two structural features produce the paper's observations:
//!
//! * the cloud has many cores but a lower clock, so it wins on the
//!   particle-heavy ECN and loses to the high-frequency gateway on the
//!   latency-critical VDP;
//! * dispatch overhead is charged per spawned thread, so nodes with
//!   little per-item work (trajectory scoring) stop improving around
//!   4 threads, while SLAM's heavy per-particle work keeps scaling.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// The three platform tiers of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// The LGV's embedded computer (Raspberry Pi 3 B+).
    Turtlebot3,
    /// High-frequency edge gateway (Intel i7-7700K).
    EdgeGateway,
    /// Manycore cloud server VM (Intel Xeon Gold 6149).
    CloudServer,
}

impl PlatformKind {
    /// All platform tiers.
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::Turtlebot3,
        PlatformKind::EdgeGateway,
        PlatformKind::CloudServer,
    ];
}

/// A concrete compute platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which tier this is.
    pub kind: PlatformKind,
    /// Human-readable model name (Table III).
    pub model: &'static str,
    /// Clock frequency (Hz).
    pub freq_hz: f64,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads (≥ cores when SMT is present).
    pub hw_threads: u32,
    /// Sustained instructions-per-cycle factor relative to the cycle
    /// counts in `Work` records (captures in-order vs out-of-order
    /// microarchitecture).
    pub ipc: f64,
    /// Memory capacity (GB), informational (Table III).
    pub memory_gb: f64,
    /// Fixed thread-pool engagement cost (cycles).
    pub spawn_base_cycles: f64,
    /// Per-spawned-thread dispatch/barrier cost (cycles).
    pub spawn_per_thread_cycles: f64,
    /// Per-item dispatch cost (cycles) charged when the parallel
    /// section is engaged: queueing/stealing one work item. Dominates
    /// on workloads with thousands of tiny items (trajectory scoring)
    /// and vanishes on coarse-grained ones (particles) — the
    /// structural reason the cloud's VDP benefit saturates (Fig. 10)
    /// while its ECN benefit keeps growing (Fig. 9).
    pub dispatch_per_item_cycles: f64,
}

/// Yield of an SMT sibling thread relative to a full core.
const SMT_YIELD: f64 = 0.3;

impl Platform {
    /// The Turtlebot3's Raspberry Pi 3 B+ (1.4 GHz, 4 in-order cores).
    pub fn turtlebot3() -> Self {
        Platform {
            kind: PlatformKind::Turtlebot3,
            model: "Raspberry Pi 3 B+",
            freq_hz: 1.4e9,
            cores: 4,
            hw_threads: 4,
            ipc: 0.5,
            memory_gb: 1.0,
            spawn_base_cycles: 1.0e6,
            spawn_per_thread_cycles: 1.0e6,
            dispatch_per_item_cycles: 2.0e3,
        }
    }

    /// The edge gateway (Intel i7-7700K, 4.2 GHz, 4C/8T).
    pub fn edge_gateway() -> Self {
        Platform {
            kind: PlatformKind::EdgeGateway,
            model: "Intel i7-7700K",
            freq_hz: 4.2e9,
            cores: 4,
            hw_threads: 8,
            ipc: 1.0,
            memory_gb: 16.0,
            spawn_base_cycles: 1.0e6,
            spawn_per_thread_cycles: 1.0e6,
            dispatch_per_item_cycles: 1.0e3,
        }
    }

    /// The cloud server VM (Intel Xeon Gold 6149, 3.1 GHz, 24 cores).
    /// Thread dispatch is costlier than on the gateway (VM exit /
    /// cross-socket traffic), which is what caps its VDP benefit.
    pub fn cloud_server() -> Self {
        Platform {
            kind: PlatformKind::CloudServer,
            model: "Intel Xeon Gold 6149",
            freq_hz: 3.1e9,
            cores: 24,
            hw_threads: 48,
            ipc: 1.15,
            memory_gb: 768.0,
            spawn_base_cycles: 2.0e6,
            spawn_per_thread_cycles: 4.0e6,
            dispatch_per_item_cycles: 30.0e3,
        }
    }

    /// Look up a preset by kind.
    pub fn preset(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::Turtlebot3 => Platform::turtlebot3(),
            PlatformKind::EdgeGateway => Platform::edge_gateway(),
            PlatformKind::CloudServer => Platform::cloud_server(),
        }
    }

    /// Effective single-thread execution rate (cycles/s).
    pub fn rate(&self) -> f64 {
        self.freq_hz * self.ipc
    }

    /// Effective parallel speedup of `threads` workers over `items`
    /// independent pieces: capped by hardware threads and by the item
    /// count, with SMT siblings contributing `SMT_YIELD` (0.3) each.
    pub fn effective_parallelism(&self, threads: u32, items: u32) -> f64 {
        let t = threads.clamp(1, self.hw_threads).min(items.max(1));
        if t <= self.cores {
            t as f64
        } else {
            self.cores as f64 + SMT_YIELD * (t - self.cores) as f64
        }
    }

    /// Time to execute `work` using `threads` worker threads.
    ///
    /// ```
    /// use lgv_sim::platform::Platform;
    /// use lgv_types::Work;
    ///
    /// // A SLAM-like workload: 10 Gcycles, 98 % parallel over 100 particles.
    /// let work = Work::with_parallel(0.2e9, 10.0e9, 100);
    /// let robot = Platform::turtlebot3().exec_time(&work, 1);
    /// let cloud = Platform::cloud_server().exec_time(&work, 12);
    /// // Offloading to the manycore server is dozens of times faster.
    /// assert!(robot.as_secs_f64() / cloud.as_secs_f64() > 30.0);
    /// ```
    pub fn exec_time(&self, work: &Work, threads: u32) -> Duration {
        let rate = self.rate();
        let mut secs = work.serial_cycles / rate;
        if work.parallel_cycles > 0.0 {
            if threads <= 1 {
                secs += work.parallel_cycles / rate;
            } else {
                let t = threads.min(self.hw_threads);
                let s = self.effective_parallelism(t, work.parallel_items);
                let spawn = self.spawn_base_cycles
                    + self.spawn_per_thread_cycles * t as f64
                    + self.dispatch_per_item_cycles * work.parallel_items as f64;
                secs += (work.parallel_cycles / s + spawn) / rate;
            }
        }
        Duration::from_secs_f64(secs)
    }

    /// The thread count (among 1..=hw_threads) minimizing `exec_time`.
    pub fn best_threads(&self, work: &Work) -> u32 {
        (1..=self.hw_threads)
            .min_by(|&a, &b| {
                self.exec_time(work, a)
                    .cmp(&self.exec_time(work, b))
                    .then(a.cmp(&b))
            })
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A SLAM-like ECN workload: heavy, 98 % parallel over 100 particles.
    fn ecn_work() -> Work {
        Work::with_parallel(0.2e9, 10.0e9, 100)
    }

    /// A VDP-like workload: 360 ms on the robot, 94 % parallel over
    /// 2000 cheap trajectories.
    fn vdp_work() -> Work {
        Work::with_parallel(20.0e6, 340.0e6, 2000)
    }

    fn speedup(base: &Platform, base_threads: u32, p: &Platform, threads: u32, w: &Work) -> f64 {
        base.exec_time(w, base_threads).as_secs_f64() / p.exec_time(w, threads).as_secs_f64()
    }

    #[test]
    fn single_thread_time_is_total_over_rate() {
        let p = Platform::turtlebot3();
        let w = Work::with_parallel(1.0e9, 1.0e9, 8);
        let t = p.exec_time(&w, 1).as_secs_f64();
        assert!((t - 2.0e9 / p.rate()).abs() < 1e-9);
    }

    #[test]
    fn serial_work_ignores_threads() {
        let p = Platform::cloud_server();
        let w = Work::serial(5.0e9);
        assert_eq!(p.exec_time(&w, 1), p.exec_time(&w, 24));
    }

    #[test]
    fn more_threads_help_heavy_parallel_work() {
        let p = Platform::cloud_server();
        let w = ecn_work();
        let t1 = p.exec_time(&w, 1);
        let t4 = p.exec_time(&w, 4);
        let t12 = p.exec_time(&w, 12);
        assert!(t4 < t1);
        assert!(t12 < t4);
    }

    #[test]
    fn parallelism_caps_at_item_count() {
        let p = Platform::cloud_server();
        assert_eq!(p.effective_parallelism(16, 2), 2.0);
        assert_eq!(p.effective_parallelism(16, 1000), 16.0);
        // SMT region.
        let e = p.effective_parallelism(32, 1000);
        assert!((e - (24.0 + 0.3 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn ecn_anchor_gateway_about_28x() {
        // Paper Fig. 9: up to 27.97× on the gateway.
        let s = speedup(
            &Platform::turtlebot3(),
            1,
            &Platform::edge_gateway(),
            8,
            &ecn_work(),
        );
        assert!((24.0..34.0).contains(&s), "gateway ECN speedup {s}");
    }

    #[test]
    fn ecn_anchor_cloud_about_41x() {
        // Paper Fig. 9: up to 40.84× on the cloud server.
        let s = speedup(
            &Platform::turtlebot3(),
            1,
            &Platform::cloud_server(),
            12,
            &ecn_work(),
        );
        assert!((35.0..48.0).contains(&s), "cloud ECN speedup {s}");
    }

    #[test]
    fn cloud_beats_gateway_on_ecn() {
        // Manycore wins on particle-heavy work (paper §VIII-B).
        let w = ecn_work();
        let gw = Platform::edge_gateway().exec_time(&w, 8);
        let cl = Platform::cloud_server().exec_time(&w, 12);
        assert!(cl < gw, "cloud {cl} vs gateway {gw}");
    }

    #[test]
    fn vdp_anchor_gateway_about_23x() {
        // Paper Fig. 10: up to 23.92× on the gateway.
        let s = speedup(
            &Platform::turtlebot3(),
            1,
            &Platform::edge_gateway(),
            8,
            &vdp_work(),
        );
        assert!((17.0..28.0).contains(&s), "gateway VDP speedup {s}");
    }

    #[test]
    fn gateway_beats_cloud_on_vdp() {
        // High frequency wins on the latency-critical path (§VIII-B).
        let w = vdp_work();
        let gw = Platform::edge_gateway().exec_time(&w, 8);
        let cl = Platform::cloud_server().exec_time(&w, 12);
        assert!(gw < cl, "gateway {gw} vs cloud {cl}");
    }

    #[test]
    fn vdp_flat_beyond_4_threads() {
        // Paper: "parallelization has no impact on the processing time
        // when the number of threads is larger than 4" for VDP.
        let w = vdp_work();
        for p in [Platform::edge_gateway(), Platform::cloud_server()] {
            let t4 = p.exec_time(&w, 4).as_secs_f64();
            let t8 = p.exec_time(&w, 8).as_secs_f64();
            let gain = t4 / t8;
            assert!(gain < 1.35, "{:?}: gain from 4→8 threads {gain}", p.kind);
        }
    }

    #[test]
    fn slam_keeps_scaling_past_4_threads_on_cloud() {
        let w = ecn_work();
        let p = Platform::cloud_server();
        let t4 = p.exec_time(&w, 4).as_secs_f64();
        let t12 = p.exec_time(&w, 12).as_secs_f64();
        assert!(t4 / t12 > 2.0, "ECN should keep scaling: {}", t4 / t12);
    }

    #[test]
    fn best_threads_finds_plateau() {
        let p = Platform::cloud_server();
        let bt_vdp = p.best_threads(&vdp_work());
        let bt_ecn = p.best_threads(&ecn_work());
        assert!(bt_vdp <= 12, "VDP optimum should be modest, got {bt_vdp}");
        assert!(bt_ecn >= 12, "ECN optimum should be large, got {bt_ecn}");
    }

    #[test]
    fn presets_match_table_iii() {
        let t = Platform::turtlebot3();
        assert_eq!(t.cores, 4);
        assert!((t.freq_hz - 1.4e9).abs() < 1.0);
        let g = Platform::edge_gateway();
        assert!((g.freq_hz - 4.2e9).abs() < 1.0);
        let c = Platform::cloud_server();
        assert_eq!(c.cores, 24);
        assert!((c.memory_gb - 768.0).abs() < 1e-9);
    }
}
