//! Procedural floorplan generation.
//!
//! The paper evaluates on one lab and one public SLAM dataset; a
//! library user wants *families* of environments to sweep. This
//! generator produces seeded office-like floorplans — a grid of rooms
//! connected by doorways along a random spanning tree (guaranteeing
//! full connectivity), plus optional extra doors and furniture
//! clutter. Same seed ⇒ same world, byte for byte.

use super::{World, WorldBuilder};
use lgv_types::prelude::*;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct FloorplanConfig {
    /// Rooms along x.
    pub rooms_x: u32,
    /// Rooms along y.
    pub rooms_y: u32,
    /// Room size (m), square rooms.
    pub room_size: f64,
    /// Wall thickness (m).
    pub wall: f64,
    /// Doorway width (m).
    pub door: f64,
    /// Probability of an *extra* door between adjacent rooms beyond
    /// the spanning tree (0 = tree only, 1 = every wall has a door).
    pub extra_door_prob: f64,
    /// Furniture pieces per room (discs/rects).
    pub clutter_per_room: u32,
    /// Grid resolution (m/cell).
    pub resolution: f64,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        FloorplanConfig {
            rooms_x: 3,
            rooms_y: 2,
            room_size: 5.0,
            wall: 0.15,
            door: 1.1,
            extra_door_prob: 0.25,
            clutter_per_room: 2,
            resolution: 0.05,
        }
    }
}

/// A generated floorplan: the world plus semantic anchors.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// The occupancy world.
    pub world: World,
    /// Centre of each room, row-major.
    pub room_centres: Vec<Point2>,
    /// A free start pose (centre of room 0).
    pub start: Pose2D,
    /// A free goal far from the start (centre of the last room).
    pub goal: Point2,
}

/// Generate a floorplan from a seed.
pub fn generate(cfg: &FloorplanConfig, seed: u64) -> Floorplan {
    assert!(
        cfg.rooms_x >= 1 && cfg.rooms_y >= 1,
        "need at least one room"
    );
    assert!(cfg.door < cfg.room_size, "door must fit in a wall");
    let mut rng = SimRng::seed_from_u64(seed);
    let (nx, ny) = (cfg.rooms_x as usize, cfg.rooms_y as usize);
    let n = nx * ny;
    let w_m = cfg.rooms_x as f64 * cfg.room_size;
    let h_m = cfg.rooms_y as f64 * cfg.room_size;

    let mut b = WorldBuilder::new(w_m, h_m, cfg.resolution).walls();

    // Interior walls between every pair of adjacent rooms.
    for i in 1..nx {
        let x = i as f64 * cfg.room_size;
        b = b.rect(
            Point2::new(x - cfg.wall / 2.0, 0.0),
            Point2::new(x + cfg.wall / 2.0, h_m),
        );
    }
    for j in 1..ny {
        let y = j as f64 * cfg.room_size;
        b = b.rect(
            Point2::new(0.0, y - cfg.wall / 2.0),
            Point2::new(w_m, y + cfg.wall / 2.0),
        );
    }

    // Spanning tree over the room grid (randomized DFS) — each tree
    // edge gets a doorway, guaranteeing connectivity.
    let mut visited = vec![false; n];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    while let Some(&cur) = stack.last() {
        let (cx, cy) = (cur % nx, cur / nx);
        let mut neighbours = Vec::new();
        if cx + 1 < nx {
            neighbours.push(cur + 1);
        }
        if cx > 0 {
            neighbours.push(cur - 1);
        }
        if cy + 1 < ny {
            neighbours.push(cur + nx);
        }
        if cy > 0 {
            neighbours.push(cur - nx);
        }
        let fresh: Vec<usize> = neighbours.into_iter().filter(|&v| !visited[v]).collect();
        if fresh.is_empty() {
            stack.pop();
            continue;
        }
        let next = fresh[rng.index(fresh.len())];
        visited[next] = true;
        tree_edges.push((cur, next));
        stack.push(next);
    }

    // Optional extra doors on non-tree adjacencies.
    let mut all_edges = tree_edges.clone();
    for j in 0..ny {
        for i in 0..nx {
            let cur = j * nx + i;
            for &other in &[
                if i + 1 < nx { Some(cur + 1) } else { None },
                if j + 1 < ny { Some(cur + nx) } else { None },
            ] {
                if let Some(other) = other {
                    let in_tree = tree_edges
                        .iter()
                        .any(|&(a, b2)| (a, b2) == (cur, other) || (a, b2) == (other, cur));
                    if !in_tree && rng.chance(cfg.extra_door_prob) {
                        all_edges.push((cur, other));
                    }
                }
            }
        }
    }

    // Carve the doorways.
    for &(a, c) in &all_edges {
        let (ax, ay) = (a % nx, a / nx);
        let (cx2, cy2) = (c % nx, c / nx);
        let margin = cfg.door / 2.0 + 0.4;
        if ay == cy2 {
            // Vertical wall between horizontally adjacent rooms.
            let x = ax.max(cx2) as f64 * cfg.room_size;
            let yc = ay as f64 * cfg.room_size + rng.uniform_range(margin, cfg.room_size - margin);
            b = b.carve(
                Point2::new(x - cfg.wall, yc - cfg.door / 2.0),
                Point2::new(x + cfg.wall, yc + cfg.door / 2.0),
            );
        } else {
            // Horizontal wall between vertically adjacent rooms.
            let y = ay.max(cy2) as f64 * cfg.room_size;
            let xc = ax as f64 * cfg.room_size + rng.uniform_range(margin, cfg.room_size - margin);
            b = b.carve(
                Point2::new(xc - cfg.door / 2.0, y - cfg.wall),
                Point2::new(xc + cfg.door / 2.0, y + cfg.wall),
            );
        }
    }

    // Clutter: keep a clear disc at each room centre so starts/goals
    // and doorway approaches stay navigable.
    let mut room_centres = Vec::with_capacity(n);
    for j in 0..ny {
        for i in 0..nx {
            let centre = Point2::new(
                (i as f64 + 0.5) * cfg.room_size,
                (j as f64 + 0.5) * cfg.room_size,
            );
            room_centres.push(centre);
            for _ in 0..cfg.clutter_per_room {
                let r = rng.uniform_range(0.15, 0.35);
                // Rejection-sample a spot away from the centre and walls.
                for _ in 0..10 {
                    let px =
                        (i as f64) * cfg.room_size + rng.uniform_range(0.8, cfg.room_size - 0.8);
                    let py =
                        (j as f64) * cfg.room_size + rng.uniform_range(0.8, cfg.room_size - 0.8);
                    let p = Point2::new(px, py);
                    if p.distance(centre) > r + 0.6 {
                        b = if rng.chance(0.5) {
                            b.disc(p, r)
                        } else {
                            b.rect(Point2::new(p.x - r, p.y - r), Point2::new(p.x + r, p.y + r))
                        };
                        break;
                    }
                }
            }
        }
    }

    let world = b.build();
    let start = Pose2D::new(room_centres[0].x, room_centres[0].y, 0.0);
    let goal = room_centres[n - 1];
    Floorplan {
        world,
        room_centres,
        start,
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Free-space BFS between two points on the generated grid.
    fn connected(world: &World, from: Point2, to: Point2) -> bool {
        let dims = *world.dims();
        let start = dims.world_to_grid(from);
        let goal = dims.world_to_grid(to);
        let mut seen = vec![false; dims.len()];
        let mut q = VecDeque::from([start]);
        seen[dims.flat(start)] = true;
        while let Some(cur) = q.pop_front() {
            if cur == goal {
                return true;
            }
            for nb in cur.neighbors4() {
                if dims.contains(nb) && !world.occupied(nb) {
                    let f = dims.flat(nb);
                    if !seen[f] {
                        seen[f] = true;
                        q.push_back(nb);
                    }
                }
            }
        }
        false
    }

    #[test]
    fn generated_worlds_are_deterministic() {
        let cfg = FloorplanConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(
            a.world.to_map_msg(SimTime::EPOCH).cells,
            b.world.to_map_msg(SimTime::EPOCH).cells
        );
        assert_eq!(a.room_centres, b.room_centres);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FloorplanConfig::default();
        let a = generate(&cfg, 1).world.to_map_msg(SimTime::EPOCH);
        let b = generate(&cfg, 2).world.to_map_msg(SimTime::EPOCH);
        assert_ne!(a.cells, b.cells);
    }

    #[test]
    fn all_rooms_are_reachable() {
        // The spanning tree guarantees it; verify across seeds.
        let cfg = FloorplanConfig {
            extra_door_prob: 0.0,
            ..Default::default()
        };
        for seed in 0..8 {
            let f = generate(&cfg, seed);
            for centre in &f.room_centres {
                assert!(
                    connected(&f.world, f.start.position(), *centre),
                    "seed {seed}: room at {centre:?} unreachable"
                );
            }
        }
    }

    #[test]
    fn start_and_goal_are_free_and_far() {
        let cfg = FloorplanConfig::default();
        for seed in 0..8 {
            let f = generate(&cfg, seed);
            assert!(
                !f.world.collides_disc(f.start.position(), 0.2),
                "seed {seed}"
            );
            assert!(!f.world.collides_disc(f.goal, 0.2), "seed {seed}");
            assert!(f.start.position().distance(f.goal) > cfg.room_size);
        }
    }

    #[test]
    fn room_count_matches_config() {
        let cfg = FloorplanConfig {
            rooms_x: 4,
            rooms_y: 3,
            ..Default::default()
        };
        let f = generate(&cfg, 3);
        assert_eq!(f.room_centres.len(), 12);
        let (w, h) = f.world.dims().world_size();
        assert!((w - 20.0).abs() < 0.1);
        assert!((h - 15.0).abs() < 0.1);
    }

    #[test]
    fn single_room_degenerates_gracefully() {
        let cfg = FloorplanConfig {
            rooms_x: 1,
            rooms_y: 1,
            ..Default::default()
        };
        let f = generate(&cfg, 5);
        assert_eq!(f.room_centres.len(), 1);
        assert!(!f.world.collides_disc(f.start.position(), 0.2));
    }
}
