//! Deterministic preset worlds.
//!
//! These stand in for the paper's physical lab and the Intel Research
//! Lab dataset: every preset is built from fixed geometry so the scan
//! streams they produce are reproducible bit-for-bit.

use super::{World, WorldBuilder};
use lgv_types::prelude::*;

/// Default grid resolution (m/cell), matching the ROS map_server default.
pub const RESOLUTION: f64 = 0.05;

/// A 12 × 10 m office-like lab: two rooms joined by a doorway, desks
/// and a pillar for clutter. Used by the end-to-end navigation and
/// exploration workloads (paper §VIII-D: "explore in our lab … then
/// navigate on the known map").
pub fn lab() -> World {
    WorldBuilder::new(12.0, 10.0, RESOLUTION)
        .walls()
        // Vertical partition wall with a 1.2 m doorway.
        .rect(Point2::new(6.0, 0.0), Point2::new(6.15, 10.0))
        .carve(Point2::new(6.0, 4.2), Point2::new(6.15, 5.4))
        // Desks along the north wall of the left room.
        .rect(Point2::new(0.8, 8.2), Point2::new(3.2, 9.2))
        // A low cabinet in the left room.
        .rect(Point2::new(1.0, 2.0), Point2::new(2.4, 2.8))
        // Chairs and boxes cluttering the rooms, several directly on
        // the door-to-goal route (forces curves — the Fig. 14 effect
        // that keeps the *real* velocity below v_max at speed).
        .disc(Point2::new(2.9, 4.4), 0.25)
        .disc(Point2::new(4.3, 5.3), 0.25)
        .disc(Point2::new(4.6, 3.6), 0.3)
        // Meeting table in the right room.
        .rect(Point2::new(8.2, 6.2), Point2::new(10.2, 7.4))
        // Structural pillar, a waste bin and crates in the right room.
        .disc(Point2::new(9.0, 2.5), 0.35)
        .disc(Point2::new(7.4, 4.3), 0.3)
        .disc(Point2::new(8.5, 3.3), 0.25)
        .disc(Point2::new(9.8, 4.2), 0.25)
        .build()
}

/// Start pose used by the lab missions (left room, facing +x).
pub fn lab_start() -> Pose2D {
    Pose2D::new(1.5, 5.0, 0.0)
}

/// Navigation goal used by the lab missions (right room).
pub fn lab_goal() -> Point2 {
    Point2::new(10.5, 3.0)
}

/// An 18 × 14 m multi-room floorplan with corridors — a synthetic
/// stand-in for the Intel Research Lab SLAM dataset. Rooms hang off a
/// central corridor; doorways are 1 m wide.
pub fn intel_like() -> World {
    let mut b = WorldBuilder::new(18.0, 14.0, RESOLUTION).walls();
    // Central horizontal corridor between y = 6 and y = 8: walls at
    // y ∈ [5.85, 6.0] and [8.0, 8.15] with doorways into each room.
    b = b.rect(Point2::new(0.0, 5.85), Point2::new(18.0, 6.0));
    b = b.rect(Point2::new(0.0, 8.0), Point2::new(18.0, 8.15));
    // Room dividers below the corridor (south rooms).
    for i in 1..4 {
        let x = i as f64 * 4.5;
        b = b.rect(Point2::new(x, 0.0), Point2::new(x + 0.15, 5.85));
    }
    // Room dividers above the corridor (north rooms).
    for i in 1..4 {
        let x = i as f64 * 4.5;
        b = b.rect(Point2::new(x, 8.15), Point2::new(x + 0.15, 14.0));
    }
    // Doorways from the corridor into each of the 8 rooms.
    for i in 0..4 {
        let x = i as f64 * 4.5 + 1.8;
        b = b.carve(Point2::new(x, 5.85), Point2::new(x + 1.0, 6.0));
        b = b.carve(Point2::new(x, 8.0), Point2::new(x + 1.0, 8.15));
    }
    // Clutter: a desk or crate per room.
    b = b
        .rect(Point2::new(1.0, 1.0), Point2::new(2.2, 1.8))
        .rect(Point2::new(6.0, 2.5), Point2::new(7.0, 3.5))
        .rect(Point2::new(10.5, 1.2), Point2::new(11.7, 2.0))
        .rect(Point2::new(15.0, 3.0), Point2::new(16.2, 3.8))
        .rect(Point2::new(1.5, 10.5), Point2::new(2.7, 11.5))
        .rect(Point2::new(6.2, 11.0), Point2::new(7.4, 12.0))
        .rect(Point2::new(10.8, 10.2), Point2::new(12.0, 11.0))
        .disc(Point2::new(15.5, 11.0), 0.4);
    b.build()
}

/// Start pose for the intel-like world (west end of the corridor).
pub fn intel_start() -> Pose2D {
    Pose2D::new(1.0, 7.0, 0.0)
}

/// A 20 × 6 m obstacle course with three phases — an obstacle slalom,
/// a long straight, and a 90° right turn — reproducing the path
/// structure of Fig. 14 (avoiding obstacles / heading straight /
/// turning right).
pub fn obstacle_course() -> World {
    WorldBuilder::new(20.0, 12.0, RESOLUTION)
        .walls()
        // Corridor walls: 6 m tall corridor along y ∈ [0, 6] for the
        // first 16 m, then the track turns north.
        .rect(Point2::new(0.0, 6.0), Point2::new(16.0, 6.15))
        // Slalom obstacles in the first 8 m.
        .disc(Point2::new(2.5, 2.2), 0.4)
        .disc(Point2::new(4.5, 3.8), 0.4)
        .disc(Point2::new(6.5, 2.0), 0.4)
        .disc(Point2::new(8.0, 3.9), 0.4)
        // The turn: block the corridor past x = 18 below y = 6 so the
        // robot must head north.
        .rect(Point2::new(19.0, 0.0), Point2::new(20.0, 6.0))
        .build()
}

/// Start pose for the obstacle course (west entrance).
pub fn course_start() -> Pose2D {
    Pose2D::new(1.0, 3.0, 0.0)
}

/// Goal for the obstacle course (north arm after the right turn).
pub fn course_goal() -> Point2 {
    Point2::new(17.5, 10.5)
}

/// A 30 × 8 m mostly-open arena for the network-robustness experiment
/// (Fig. 11): the WAP sits near point A at the west end; point C at the
/// far east end is outside reliable radio range.
pub fn arena() -> World {
    WorldBuilder::new(30.0, 8.0, RESOLUTION)
        .walls()
        .disc(Point2::new(10.0, 5.5), 0.4)
        .disc(Point2::new(20.0, 2.5), 0.4)
        .build()
}

/// Point A of the Fig. 11 trace (near the WAP).
pub fn arena_point_a() -> Pose2D {
    Pose2D::new(2.0, 4.0, 0.0)
}

/// Point C of the Fig. 11 trace (weak-signal zone).
pub fn arena_point_c() -> Point2 {
    Point2::new(28.0, 4.0)
}

/// WAP position for the arena.
pub fn arena_wap() -> Point2 {
    Point2::new(2.0, 6.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_start_and_goal_are_free() {
        let w = lab();
        assert!(!w.collides_disc(lab_start().position(), 0.15));
        assert!(!w.collides_disc(lab_goal(), 0.15));
    }

    #[test]
    fn lab_doorway_is_open() {
        let w = lab();
        assert!(!w.occupied_at(Point2::new(6.07, 4.8)));
        assert!(w.occupied_at(Point2::new(6.07, 2.0)));
    }

    #[test]
    fn intel_like_rooms_reachable_through_doorways() {
        let w = intel_like();
        // Corridor free, doorway free, wall solid.
        assert!(!w.occupied_at(Point2::new(9.0, 7.0)));
        assert!(!w.occupied_at(Point2::new(2.3, 5.9)));
        assert!(w.occupied_at(Point2::new(0.5, 5.9)));
    }

    #[test]
    fn course_phases_have_expected_geometry() {
        let w = obstacle_course();
        // Slalom obstacle present.
        assert!(w.occupied_at(Point2::new(2.5, 2.2)));
        // Straight stretch free.
        assert!(!w.occupied_at(Point2::new(12.0, 3.0)));
        // Turn forces north: corridor blocked at the east end.
        assert!(w.occupied_at(Point2::new(19.5, 3.0)));
        assert!(!w.occupied_at(Point2::new(17.5, 8.0)));
        assert!(!w.collides_disc(course_goal(), 0.15));
    }

    #[test]
    fn arena_endpoints_free_and_far_apart() {
        let w = arena();
        assert!(!w.collides_disc(arena_point_a().position(), 0.15));
        assert!(!w.collides_disc(arena_point_c(), 0.15));
        assert!(arena_point_a().position().distance(arena_point_c()) > 20.0);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = lab().to_map_msg(SimTime::EPOCH);
        let b = lab().to_map_msg(SimTime::EPOCH);
        assert_eq!(a.cells, b.cells);
    }
}
