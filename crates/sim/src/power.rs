//! Component power models (paper Eq. 1 and Table I).
//!
//! * Motor: `P_m = P_l + m(a + gμ)v` (Eq. 1d, from Mei et al. \[34\]).
//! * Embedded computer: `E_ec = k · L · f²` (Eq. 1c) plus an idle
//!   floor; `k` is calibrated so full utilization hits the Table I
//!   maximum.
//! * Wireless: `E_trans = P_trans · D_trans / R_uplink` (Eq. 1b).
//! * Sensor and microcontroller draw constant power while the mission
//!   runs.

use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// Standard gravity (m/s²).
pub const GRAVITY: f64 = 9.81;

/// Maximum power draw of each LGV component in watts (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDraw {
    /// Sensor subsystem (laser / camera).
    pub sensor: f64,
    /// Drive motors.
    pub motor: f64,
    /// Microcontroller board.
    pub microcontroller: f64,
    /// Embedded computer.
    pub embedded_computer: f64,
}

impl PowerDraw {
    /// Total maximum draw.
    pub fn total(&self) -> f64 {
        self.sensor + self.motor + self.microcontroller + self.embedded_computer
    }

    /// Percentage share of each component, in Table I order.
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total();
        [
            self.sensor / t * 100.0,
            self.motor / t * 100.0,
            self.microcontroller / t * 100.0,
            self.embedded_computer / t * 100.0,
        ]
    }
}

/// A commodity LGV profile: Table I power numbers plus the mechanical
/// constants the motor model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LgvProfile {
    /// Vehicle name.
    pub name: &'static str,
    /// Table I maximum component power.
    pub max_power: PowerDraw,
    /// Battery capacity (Wh). Turtlebot3: 19.98 Wh.
    pub battery_wh: f64,
    /// Vehicle mass (kg).
    pub mass_kg: f64,
    /// Ground friction constant μ.
    pub friction_mu: f64,
    /// Motor transforming loss `P_l` (W) — drawn whenever motors are
    /// powered, even at rest.
    pub motor_loss_w: f64,
    /// Embedded computer idle power (W).
    pub ec_idle_w: f64,
    /// Wireless transmit power `P_trans` (W).
    pub trans_power_w: f64,
}

impl LgvProfile {
    /// Turtlebot3 (burger): the paper's evaluation vehicle.
    pub fn turtlebot3() -> Self {
        LgvProfile {
            name: "Turtlebot3",
            max_power: PowerDraw {
                sensor: 1.0,
                motor: 6.7,
                microcontroller: 1.0,
                embedded_computer: 6.5,
            },
            battery_wh: 19.98,
            mass_kg: 1.8,
            friction_mu: 0.35,
            motor_loss_w: 1.2,
            ec_idle_w: 1.9,
            trans_power_w: 1.3,
        }
    }

    /// Turtlebot2 (vision-based, Table I row 1).
    pub fn turtlebot2() -> Self {
        LgvProfile {
            name: "Turtlebot2",
            max_power: PowerDraw {
                sensor: 2.5,
                motor: 9.0,
                microcontroller: 4.6,
                embedded_computer: 15.0,
            },
            battery_wh: 39.6,
            mass_kg: 6.3,
            friction_mu: 0.35,
            motor_loss_w: 1.8,
            ec_idle_w: 4.0,
            trans_power_w: 1.3,
        }
    }

    /// Pioneer 3DX (Table I row 3).
    pub fn pioneer_3dx() -> Self {
        LgvProfile {
            name: "Pioneer 3DX",
            max_power: PowerDraw {
                sensor: 0.82,
                motor: 10.6,
                microcontroller: 4.6,
                embedded_computer: 15.0,
            },
            battery_wh: 86.4,
            mass_kg: 9.0,
            friction_mu: 0.35,
            motor_loss_w: 2.2,
            ec_idle_w: 4.0,
            trans_power_w: 1.3,
        }
    }

    /// Motor model for this vehicle.
    pub fn motor_model(&self) -> MotorModel {
        MotorModel {
            loss_w: self.motor_loss_w,
            mass_kg: self.mass_kg,
            friction_mu: self.friction_mu,
            max_w: self.max_power.motor,
        }
    }

    /// Compute-energy model for this vehicle's embedded computer
    /// running at the given platform's frequency.
    pub fn compute_model(&self, platform: &Platform) -> ComputeEnergyModel {
        ComputeEnergyModel::calibrated(platform, self.max_power.embedded_computer, self.ec_idle_w)
    }
}

/// Eq. 1d: `P_m = P_l + m(a + gμ)v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotorModel {
    /// Transforming loss `P_l` (W).
    pub loss_w: f64,
    /// Vehicle mass (kg).
    pub mass_kg: f64,
    /// Ground friction constant μ.
    pub friction_mu: f64,
    /// Saturation limit (Table I motor maximum).
    pub max_w: f64,
}

impl MotorModel {
    /// Instantaneous motor power at velocity `v` (m/s) and commanded
    /// acceleration `a` (m/s²).
    pub fn power(&self, v: f64, a: f64) -> f64 {
        let p = self.loss_w + self.mass_kg * (a.abs() + GRAVITY * self.friction_mu) * v.abs();
        p.clamp(0.0, self.max_w)
    }
}

/// Eq. 1c: `E = k · L · f²`, with `k` calibrated so that running the
/// platform flat-out draws the Table I maximum above idle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeEnergyModel {
    /// Effective switched capacitance `k` (J / (cycle · Hz²)).
    pub k: f64,
    /// Clock frequency the vehicle runs at (Hz).
    pub freq_hz: f64,
    /// Idle floor power (W).
    pub idle_w: f64,
}

impl ComputeEnergyModel {
    /// Calibrate `k` from a platform and its maximum/idle power:
    /// at full utilization the platform retires `f·ipc·cores` cycles
    /// per second, and `P_dyn = k·(cycles/s)·f²` must equal
    /// `max_w − idle_w`.
    pub fn calibrated(platform: &Platform, max_w: f64, idle_w: f64) -> Self {
        let full_rate = platform.rate() * platform.cores as f64;
        let k = (max_w - idle_w).max(0.0) / (full_rate * platform.freq_hz * platform.freq_hz);
        ComputeEnergyModel {
            k,
            freq_hz: platform.freq_hz,
            idle_w,
        }
    }

    /// Dynamic energy (J) of executing `cycles` on the vehicle.
    pub fn dynamic_energy(&self, cycles: f64) -> f64 {
        self.k * cycles * self.freq_hz * self.freq_hz
    }

    /// Idle energy (J) over a span of `secs`.
    pub fn idle_energy(&self, secs: f64) -> f64 {
        self.idle_w * secs
    }
}

/// Eq. 1b: transmission energy `P_trans · D / R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmitModel {
    /// Transmit power of the wireless controller (W).
    pub power_w: f64,
}

impl TransmitModel {
    /// Energy (J) to push `bytes` up a link running at `uplink_bps`
    /// bits per second.
    pub fn energy(&self, bytes: usize, uplink_bps: f64) -> f64 {
        if uplink_bps <= 0.0 {
            return 0.0;
        }
        self.power_w * (bytes as f64 * 8.0) / uplink_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_turtlebot3_shares() {
        // Table I: Turtlebot3 = sensor 6.5 %, motor 44 %, MCU 6.5 %,
        // EC 43 % (rounded).
        let p = LgvProfile::turtlebot3().max_power;
        let s = p.shares();
        assert!((s[0] - 6.5).abs() < 1.0, "sensor {}", s[0]);
        assert!((s[1] - 44.0).abs() < 1.5, "motor {}", s[1]);
        assert!((s[3] - 43.0).abs() < 1.5, "ec {}", s[3]);
        assert!((p.total() - 15.2).abs() < 0.01);
    }

    #[test]
    fn table1_other_vehicles() {
        let t2 = LgvProfile::turtlebot2().max_power;
        assert_eq!(t2.motor, 9.0);
        assert_eq!(t2.embedded_computer, 15.0);
        let p3 = LgvProfile::pioneer_3dx().max_power;
        assert_eq!(p3.sensor, 0.82);
        assert_eq!(p3.motor, 10.6);
    }

    #[test]
    fn motor_power_increases_with_velocity() {
        let m = LgvProfile::turtlebot3().motor_model();
        let p0 = m.power(0.0, 0.0);
        let p1 = m.power(0.11, 0.0);
        let p2 = m.power(0.22, 0.0);
        assert_eq!(p0, m.loss_w);
        assert!(p1 > p0 && p2 > p1);
        // Linear in v at constant a.
        assert!(((p2 - p0) - 2.0 * (p1 - p0)).abs() < 1e-9);
    }

    #[test]
    fn motor_power_increases_with_acceleration() {
        let m = LgvProfile::turtlebot3().motor_model();
        assert!(m.power(0.2, 2.0) > m.power(0.2, 0.0));
    }

    #[test]
    fn motor_power_saturates_at_table1_max() {
        let m = MotorModel {
            loss_w: 1.0,
            mass_kg: 50.0,
            friction_mu: 1.0,
            max_w: 6.7,
        };
        assert_eq!(m.power(5.0, 10.0), 6.7);
    }

    #[test]
    fn compute_model_full_load_hits_max_power() {
        let platform = crate::platform::Platform::turtlebot3();
        let profile = LgvProfile::turtlebot3();
        let m = profile.compute_model(&platform);
        // One second of full-rate cycles on all cores:
        let cycles = platform.rate() * platform.cores as f64;
        let p = m.dynamic_energy(cycles) + m.idle_energy(1.0);
        assert!(
            (p - profile.max_power.embedded_computer).abs() < 1e-6,
            "p = {p}"
        );
    }

    #[test]
    fn compute_energy_scales_with_f_squared() {
        let mut platform = crate::platform::Platform::turtlebot3();
        let m1 = ComputeEnergyModel::calibrated(&platform, 6.5, 1.9);
        platform.freq_hz *= 2.0;
        // Same k, doubled frequency → 4× the per-cycle energy.
        let m2 = ComputeEnergyModel {
            k: m1.k,
            freq_hz: platform.freq_hz,
            idle_w: m1.idle_w,
        };
        assert!((m2.dynamic_energy(1e9) / m1.dynamic_energy(1e9) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transmit_energy_eq_1b() {
        let t = TransmitModel { power_w: 1.3 };
        // 2.94 KB scan at 10 Mbit/s.
        let e = t.energy(2940, 10e6);
        assert!((e - 1.3 * 2940.0 * 8.0 / 10e6).abs() < 1e-12);
        assert_eq!(t.energy(1000, 0.0), 0.0);
    }
}
