//! 360° laser distance sensor (LDS-01 model).
//!
//! Samples the ground-truth world by ray casting one beam per degree,
//! adds range noise, and occasionally drops a return (dust, specular
//! surfaces). Runs at a fixed scan rate; the returned [`LaserScan`]
//! matches the wire format the paper measures (≈ 2.94 KB per scan).

use crate::world::World;
use lgv_types::prelude::*;
use std::f64::consts::PI;

/// Sensor configuration.
#[derive(Debug, Clone)]
pub struct LidarConfig {
    /// Number of beams per revolution. LDS-01: 360.
    pub beams: usize,
    /// Maximum range (m). LDS-01: 3.5.
    pub range_max: f64,
    /// Gaussian range noise std-dev (m).
    pub range_noise: f64,
    /// Probability an individual beam returns nothing.
    pub dropout: f64,
    /// Scan rate (Hz). LDS-01: 5.
    pub rate: f64,
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig {
            beams: 360,
            range_max: 3.5,
            range_noise: 0.01,
            dropout: 0.002,
            rate: 5.0,
        }
    }
}

/// The simulated scanner.
#[derive(Debug, Clone)]
pub struct Lidar {
    cfg: LidarConfig,
    rng: SimRng,
    /// Per-beam `(cos, sin)` of the sensor-frame beam angle `i * inc`.
    /// Rotating this fixed table by the pose heading replaces the two
    /// trig calls per beam per scan — with 360 beams at 5 Hz, the trig
    /// dominated the scan kernel.
    beam_dirs: Vec<(f64, f64)>,
}

impl Lidar {
    /// Build a scanner.
    pub fn new(cfg: LidarConfig, rng: SimRng) -> Self {
        assert!(cfg.beams > 0, "lidar needs at least one beam");
        let inc = 2.0 * PI / cfg.beams as f64;
        let beam_dirs = (0..cfg.beams)
            .map(|i| (i as f64 * inc).sin_cos())
            .map(|(s, c)| (c, s))
            .collect();
        Lidar {
            cfg,
            rng,
            beam_dirs,
        }
    }

    /// Sensor configuration.
    pub fn config(&self) -> &LidarConfig {
        &self.cfg
    }

    /// Scan period.
    pub fn period(&self) -> Duration {
        Rate::hz(self.cfg.rate).period()
    }

    /// Produce one full sweep from the given sensor pose.
    pub fn scan(&mut self, world: &World, pose: Pose2D, stamp: SimTime) -> LaserScan {
        // One scope for the whole sweep: per-beam scopes would cost
        // two clock reads per DDA walk and drown the kernel.
        let _prof = lgv_trace::prof::scope("sim/raycast");
        let inc = 2.0 * PI / self.cfg.beams as f64;
        let origin = pose.position();
        // One sin/cos for the whole sweep: each precomputed beam
        // direction is rotated by the heading via the angle-addition
        // identity instead of evaluating cos/sin per beam.
        let (sin_th, cos_th) = pose.theta.sin_cos();
        let mut ranges = Vec::with_capacity(self.cfg.beams);
        for &(cos_b, sin_b) in &self.beam_dirs {
            let dir_x = cos_b * cos_th - sin_b * sin_th;
            let dir_y = sin_b * cos_th + cos_b * sin_th;
            let true_range = world.raycast_dir(origin, dir_x, dir_y, self.cfg.range_max);
            let r = if true_range >= self.cfg.range_max || self.rng.chance(self.cfg.dropout) {
                self.cfg.range_max
            } else {
                (true_range + self.rng.gaussian(0.0, self.cfg.range_noise))
                    .clamp(0.0, self.cfg.range_max)
            };
            ranges.push(r);
        }
        LaserScan {
            stamp,
            angle_min: 0.0,
            angle_increment: inc,
            range_max: self.cfg.range_max,
            ranges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn room() -> World {
        WorldBuilder::new(10.0, 10.0, 0.05).walls().build()
    }

    fn quiet_lidar() -> Lidar {
        let cfg = LidarConfig {
            range_noise: 0.0,
            dropout: 0.0,
            ..LidarConfig::default()
        };
        Lidar::new(cfg, SimRng::seed_from_u64(2))
    }

    #[test]
    fn scan_has_expected_shape() {
        let mut l = quiet_lidar();
        let s = l.scan(&room(), Pose2D::new(5.0, 5.0, 0.0), SimTime::EPOCH);
        assert_eq!(s.len(), 360);
        assert!((s.angle_increment - 2.0 * PI / 360.0).abs() < 1e-12);
        assert!(s.wire_size() > 2800);
    }

    #[test]
    fn centre_of_room_sees_max_range_everywhere() {
        // Room is 10 m wide, max range 3.5: every beam runs out.
        let mut l = quiet_lidar();
        let s = l.scan(&room(), Pose2D::new(5.0, 5.0, 0.0), SimTime::EPOCH);
        assert!(s.ranges.iter().all(|&r| r == 3.5));
        assert!(!s.is_hit(0));
    }

    #[test]
    fn near_wall_sees_wall_in_heading_direction() {
        let mut l = quiet_lidar();
        // 1 m from the +x wall (wall occupies x ≥ 9.95), facing it.
        let s = l.scan(&room(), Pose2D::new(9.0, 5.0, 0.0), SimTime::EPOCH);
        assert!(s.is_hit(0));
        assert!((s.ranges[0] - 0.97).abs() < 0.1, "range {}", s.ranges[0]);
        // Beam 180 looks away: out of range.
        assert!(!s.is_hit(180));
    }

    #[test]
    fn beams_rotate_with_pose() {
        let mut l = quiet_lidar();
        // Facing -x: beam 0 now sees the near wall at x = 0.
        let s = l.scan(&room(), Pose2D::new(1.0, 5.0, PI), SimTime::EPOCH);
        assert!(s.is_hit(0));
        assert!((s.ranges[0] - 0.97).abs() < 0.1);
    }

    #[test]
    fn noise_perturbs_ranges_but_stays_in_bounds() {
        let cfg = LidarConfig {
            range_noise: 0.05,
            dropout: 0.0,
            ..LidarConfig::default()
        };
        let mut l = Lidar::new(cfg, SimRng::seed_from_u64(3));
        let s = l.scan(&room(), Pose2D::new(9.0, 5.0, 0.0), SimTime::EPOCH);
        assert!(s.ranges.iter().all(|&r| (0.0..=3.5).contains(&r)));
        // The hit beams shouldn't all be identical under noise.
        let hits: Vec<f64> = (0..360)
            .filter(|&i| s.is_hit(i))
            .map(|i| s.ranges[i])
            .collect();
        assert!(hits.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn dropout_produces_max_range_returns() {
        let cfg = LidarConfig {
            range_noise: 0.0,
            dropout: 0.5,
            ..LidarConfig::default()
        };
        let mut l = Lidar::new(cfg, SimRng::seed_from_u64(4));
        let s = l.scan(&room(), Pose2D::new(9.0, 5.0, 0.0), SimTime::EPOCH);
        // Facing the wall, roughly half of the would-be hits drop out.
        let misses = (0..60).filter(|&i| !s.is_hit(i)).count();
        assert!(misses > 10, "misses {misses}");
    }

    #[test]
    fn period_matches_rate() {
        let l = quiet_lidar();
        assert_eq!(l.period(), Duration::from_millis(200));
    }

    #[test]
    fn deterministic_for_seed() {
        let mk = || {
            let cfg = LidarConfig::default();
            let mut l = Lidar::new(cfg, SimRng::seed_from_u64(9));
            l.scan(&room(), Pose2D::new(3.0, 3.0, 0.4), SimTime::EPOCH)
        };
        assert_eq!(mk(), mk());
    }
}
