//! Differential-drive vehicle simulation.
//!
//! Models the Turtlebot3 base: commanded twists are rate-limited by
//! the acceleration budget, integrated with exact unicycle kinematics,
//! blocked by collisions against the ground-truth world, and reported
//! through a drifting odometry estimate (the drift is what makes the
//! localization nodes earn their keep).

use crate::world::World;
use lgv_types::prelude::*;

/// Mechanical configuration of the vehicle.
#[derive(Debug, Clone)]
pub struct VehicleConfig {
    /// Body radius for collision checks (m).
    pub radius: f64,
    /// Hard linear velocity limit (m/s). Turtlebot3 burger: 0.22.
    pub max_linear: f64,
    /// Hard angular velocity limit (rad/s). Turtlebot3 burger: 2.84.
    pub max_angular: f64,
    /// Maximum linear acceleration (m/s²).
    pub max_lin_accel: f64,
    /// Maximum angular acceleration (rad/s²).
    pub max_ang_accel: f64,
    /// Odometry translation noise: std-dev per metre travelled.
    pub odom_trans_noise: f64,
    /// Odometry rotation noise: std-dev per radian turned.
    pub odom_rot_noise: f64,
}

impl Default for VehicleConfig {
    fn default() -> Self {
        // Turtlebot3 burger limits from the ROBOTIS e-manual.
        VehicleConfig {
            radius: 0.105,
            max_linear: 0.22,
            max_angular: 2.84,
            max_lin_accel: 2.5,
            max_ang_accel: 3.2,
            odom_trans_noise: 0.01,
            odom_rot_noise: 0.02,
        }
    }
}

/// The simulated vehicle.
#[derive(Debug, Clone)]
pub struct Vehicle {
    cfg: VehicleConfig,
    /// Ground-truth pose.
    pose: Pose2D,
    /// Current actual twist (after acceleration limiting).
    twist: Twist,
    /// Commanded twist (target for the rate limiter).
    command: Twist,
    /// Dead-reckoned odometry pose (drifts).
    odom: Pose2D,
    rng: SimRng,
    /// Cumulative distance travelled (m).
    distance: f64,
    /// True while the last step was blocked by a collision.
    bumped: bool,
}

impl Vehicle {
    /// Place a vehicle at a starting pose.
    pub fn new(cfg: VehicleConfig, start: Pose2D, rng: SimRng) -> Self {
        Vehicle {
            cfg,
            pose: start,
            twist: Twist::STOP,
            command: Twist::STOP,
            odom: start,
            rng,
            distance: 0.0,
            bumped: false,
        }
    }

    /// Mechanical configuration.
    pub fn config(&self) -> &VehicleConfig {
        &self.cfg
    }

    /// Ground-truth pose (the experiment harness may look, the
    /// algorithms may not).
    pub fn true_pose(&self) -> Pose2D {
        self.pose
    }

    /// Current actual twist.
    pub fn twist(&self) -> Twist {
        self.twist
    }

    /// Total distance travelled so far (m).
    pub fn distance_travelled(&self) -> f64 {
        self.distance
    }

    /// Whether the last `step` was blocked by an obstacle.
    pub fn bumped(&self) -> bool {
        self.bumped
    }

    /// Latch a velocity command; takes effect over subsequent steps
    /// subject to acceleration limits.
    pub fn command(&mut self, twist: Twist) {
        self.command = twist.clamped(self.cfg.max_linear, self.cfg.max_angular);
    }

    /// Advance the simulation by `dt`, colliding against `world`.
    /// Returns the actual twist applied during the step.
    pub fn step(&mut self, world: &World, dt: Duration) -> Twist {
        let dt_s = dt.as_secs_f64();
        if dt_s <= 0.0 {
            return self.twist;
        }

        // Rate-limit towards the command.
        let dv = self.cfg.max_lin_accel * dt_s;
        let dw = self.cfg.max_ang_accel * dt_s;
        self.twist.linear += (self.command.linear - self.twist.linear).clamp(-dv, dv);
        self.twist.angular += (self.command.angular - self.twist.angular).clamp(-dw, dw);

        let proposed = self.pose.integrate(self.twist, dt_s);
        self.bumped = world.collides_disc(proposed.position(), self.cfg.radius);
        if self.bumped {
            // Blocked: kill linear motion, allow rotation in place.
            self.twist.linear = 0.0;
            let spin = self
                .pose
                .integrate(Twist::new(0.0, self.twist.angular), dt_s);
            self.pose = Pose2D::new(self.pose.x, self.pose.y, spin.theta);
        } else {
            let moved = proposed.position().distance(self.pose.position());
            let turned = normalize_angle(proposed.theta - self.pose.theta).abs();
            self.distance += moved;

            // Odometry integrates the same motion plus drift noise.
            let delta = self.pose.between(proposed);
            let nx = self.rng.gaussian(0.0, self.cfg.odom_trans_noise * moved);
            let ny = self.rng.gaussian(0.0, self.cfg.odom_trans_noise * moved);
            let nth = self.rng.gaussian(
                0.0,
                self.cfg.odom_rot_noise * turned + 0.2 * self.cfg.odom_trans_noise * moved,
            );
            self.odom =
                self.odom
                    .compose(Pose2D::new(delta.x + nx, delta.y + ny, delta.theta + nth));
            self.pose = proposed;
        }
        self.twist
    }

    /// Produce the odometry message for the current instant.
    pub fn odometry(&self, stamp: SimTime) -> OdometryMsg {
        OdometryMsg {
            stamp,
            pose: self.odom,
            twist: self.twist,
        }
    }

    /// Current linear acceleration demand towards the command (m/s²),
    /// used by the motor power model (Eq. 1d's `a`).
    pub fn accel_demand(&self) -> f64 {
        (self.command.linear - self.twist.linear)
            .abs()
            .min(self.cfg.max_lin_accel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldBuilder;

    fn arena() -> World {
        WorldBuilder::new(10.0, 10.0, 0.05).walls().build()
    }

    fn vehicle_at(x: f64, y: f64, th: f64) -> Vehicle {
        Vehicle::new(
            VehicleConfig::default(),
            Pose2D::new(x, y, th),
            SimRng::seed_from_u64(1),
        )
    }

    #[test]
    fn accelerates_towards_command() {
        let w = arena();
        let mut v = vehicle_at(5.0, 5.0, 0.0);
        v.command(Twist::new(0.22, 0.0));
        let t1 = v.step(&w, Duration::from_millis(20));
        assert!(t1.linear > 0.0 && t1.linear < 0.22, "{}", t1.linear);
        for _ in 0..20 {
            v.step(&w, Duration::from_millis(20));
        }
        assert!((v.twist().linear - 0.22).abs() < 1e-9);
    }

    #[test]
    fn command_is_clamped_to_limits() {
        let w = arena();
        let mut v = vehicle_at(5.0, 5.0, 0.0);
        v.command(Twist::new(10.0, -10.0));
        for _ in 0..200 {
            v.step(&w, Duration::from_millis(20));
        }
        assert!(v.twist().linear <= 0.22 + 1e-9);
        assert!(v.twist().angular >= -2.84 - 1e-9);
    }

    #[test]
    fn moves_forward_in_world_frame() {
        let w = arena();
        let mut v = vehicle_at(2.0, 5.0, 0.0);
        v.command(Twist::new(0.2, 0.0));
        for _ in 0..100 {
            v.step(&w, Duration::from_millis(50));
        }
        assert!(v.true_pose().x > 2.5);
        assert!((v.true_pose().y - 5.0).abs() < 1e-6);
        assert!(v.distance_travelled() > 0.5);
    }

    #[test]
    fn blocked_by_wall() {
        let w = arena();
        let mut v = vehicle_at(9.5, 5.0, 0.0);
        v.command(Twist::new(0.22, 0.0));
        for _ in 0..200 {
            v.step(&w, Duration::from_millis(50));
        }
        // Never passes through the wall at x = 10.
        assert!(v.true_pose().x < 10.0 - v.config().radius + 0.1);
        assert!(v.bumped());
        assert_eq!(v.twist().linear, 0.0);
    }

    #[test]
    fn can_rotate_when_blocked() {
        let w = arena();
        let mut v = vehicle_at(9.8, 5.0, 0.0);
        v.command(Twist::new(0.22, 1.0));
        let th0 = v.true_pose().theta;
        for _ in 0..20 {
            v.step(&w, Duration::from_millis(50));
        }
        assert!(normalize_angle(v.true_pose().theta - th0).abs() > 0.1);
    }

    #[test]
    fn odometry_tracks_but_drifts() {
        let w = arena();
        let mut v = vehicle_at(2.0, 2.0, 0.5);
        v.command(Twist::new(0.2, 0.3));
        for _ in 0..400 {
            v.step(&w, Duration::from_millis(20));
        }
        let err = v.odometry(SimTime::EPOCH).pose.distance(v.true_pose());
        // Some drift, but in the same neighbourhood.
        assert!(err > 0.0, "odometry should drift");
        assert!(err < 1.0, "odometry drift too extreme: {err}");
    }

    #[test]
    fn odometry_is_deterministic_for_seed() {
        let w = arena();
        let run = || {
            let mut v = vehicle_at(2.0, 2.0, 0.0);
            v.command(Twist::new(0.2, 0.1));
            for _ in 0..100 {
                v.step(&w, Duration::from_millis(20));
            }
            v.odometry(SimTime::EPOCH).pose
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_dt_is_noop() {
        let w = arena();
        let mut v = vehicle_at(5.0, 5.0, 0.0);
        v.command(Twist::new(0.2, 0.0));
        let p0 = v.true_pose();
        v.step(&w, Duration::ZERO);
        assert_eq!(v.true_pose(), p0);
    }

    #[test]
    fn accel_demand_decreases_as_speed_converges() {
        let w = arena();
        let mut v = vehicle_at(5.0, 5.0, 0.0);
        v.command(Twist::new(0.22, 0.0));
        let d0 = v.accel_demand();
        for _ in 0..50 {
            v.step(&w, Duration::from_millis(20));
        }
        assert!(v.accel_demand() < d0);
        assert!(v.accel_demand() < 1e-6);
    }
}
