//! Mission energy accounting (Eq. 1a).
//!
//! An [`EnergyLedger`] integrates per-component energy over virtual
//! time and produces the [`EnergyReport`] breakdown that Fig. 13 plots
//! (motor / sensor / microcontroller / embedded computer / wireless).

use lgv_trace::{TraceEvent, Tracer};
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The energy-consuming components of an LGV (Fig. 13's bar stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Laser / camera subsystem.
    Sensor,
    /// Drive motors.
    Motor,
    /// Microcontroller board.
    Microcontroller,
    /// Embedded computer.
    EmbeddedComputer,
    /// Wireless controller (transmission energy, Eq. 1b).
    Wireless,
}

impl Component {
    /// All components in report order.
    pub const ALL: [Component; 5] = [
        Component::Sensor,
        Component::Motor,
        Component::Microcontroller,
        Component::EmbeddedComputer,
        Component::Wireless,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::Sensor => "sensor",
            Component::Motor => "motor",
            Component::Microcontroller => "microcontroller",
            Component::EmbeddedComputer => "embedded_computer",
            Component::Wireless => "wireless",
        }
    }
}

/// Accumulates joules per component over a mission.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    joules: [f64; 5],
    traced: [f64; 5],
    tracer: Tracer,
}

impl EnergyLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Route energy deltas to `tracer`. Deltas are only emitted by
    /// [`EnergyLedger::trace_flush`], so the caller controls the event
    /// rate (the mission engine flushes once per control cycle rather
    /// than per integration substep).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Emit one [`TraceEvent::EnergyDelta`] per component that gained
    /// energy since the previous flush.
    pub fn trace_flush(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        for c in Component::ALL {
            let i = Self::slot(c);
            let delta = self.joules[i] - self.traced[i];
            if delta > 0.0 {
                self.tracer.emit(TraceEvent::EnergyDelta {
                    component: c.name().to_string(),
                    joules: delta,
                });
                self.traced[i] = self.joules[i];
            }
        }
    }

    fn slot(c: Component) -> usize {
        Component::ALL.iter().position(|&x| x == c).unwrap()
    }

    /// Add energy (J) to one component. Negative or non-finite values
    /// are rejected with a panic in debug, clamped to zero in release.
    pub fn add(&mut self, c: Component, joules: f64) {
        debug_assert!(joules.is_finite() && joules >= 0.0, "bad energy {joules}");
        self.joules[Self::slot(c)] += joules.max(0.0);
    }

    /// Integrate constant `watts` over `span` into a component.
    pub fn add_power(&mut self, c: Component, watts: f64, span: Duration) {
        self.add(c, watts * span.as_secs_f64());
    }

    /// Joules accumulated by a component so far.
    pub fn joules(&self, c: Component) -> f64 {
        self.joules[Self::slot(c)]
    }

    /// Total joules across all components.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Snapshot the ledger as a report for a mission of length `time`.
    pub fn report(&self, time: Duration) -> EnergyReport {
        EnergyReport {
            joules: self.joules,
            mission_time: time,
        }
    }
}

/// Per-component energy breakdown plus mission completion time —
/// exactly the quantities Fig. 13 reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    joules: [f64; 5],
    /// Mission completion time.
    pub mission_time: Duration,
}

impl EnergyReport {
    /// Joules consumed by one component.
    pub fn joules(&self, c: Component) -> f64 {
        self.joules[Component::ALL.iter().position(|&x| x == c).unwrap()]
    }

    /// Total energy in joules (Eq. 1a's `E_total`).
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Total energy in watt-hours.
    pub fn total_wh(&self) -> f64 {
        self.total_joules() / 3600.0
    }

    /// Ratio of this report's total energy to another's (used for the
    /// paper's "reduced by 2.12×" statements: `other / self`).
    pub fn energy_reduction_vs(&self, baseline: &EnergyReport) -> f64 {
        baseline.total_joules() / self.total_joules()
    }

    /// Ratio of mission times (`baseline / self`).
    pub fn time_reduction_vs(&self, baseline: &EnergyReport) -> f64 {
        baseline.mission_time.as_secs_f64() / self.mission_time.as_secs_f64()
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mission time: {:.1}s", self.mission_time.as_secs_f64())?;
        for c in Component::ALL {
            writeln!(f, "  {:<18} {:>9.1} J", c.name(), self.joules(c))?;
        }
        write!(
            f,
            "  {:<18} {:>9.1} J ({:.3} Wh)",
            "TOTAL",
            self.total_joules(),
            self.total_wh()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_component() {
        let mut l = EnergyLedger::new();
        l.add(Component::Motor, 10.0);
        l.add(Component::Motor, 5.0);
        l.add(Component::Sensor, 2.0);
        assert_eq!(l.joules(Component::Motor), 15.0);
        assert_eq!(l.joules(Component::Sensor), 2.0);
        assert_eq!(l.joules(Component::Wireless), 0.0);
        assert_eq!(l.total_joules(), 17.0);
    }

    #[test]
    fn add_power_integrates() {
        let mut l = EnergyLedger::new();
        l.add_power(Component::EmbeddedComputer, 6.5, Duration::from_secs(10));
        assert!((l.joules(Component::EmbeddedComputer) - 65.0).abs() < 1e-9);
    }

    #[test]
    fn report_totals_and_units() {
        let mut l = EnergyLedger::new();
        l.add(Component::Motor, 1800.0);
        let r = l.report(Duration::from_secs(60));
        assert_eq!(r.total_joules(), 1800.0);
        assert!((r.total_wh() - 0.5).abs() < 1e-12);
        assert_eq!(r.mission_time, Duration::from_secs(60));
    }

    #[test]
    fn reduction_factors() {
        let mut a = EnergyLedger::new();
        a.add(Component::Motor, 100.0);
        let base = a.report(Duration::from_secs(100));
        let mut b = EnergyLedger::new();
        b.add(Component::Motor, 50.0);
        let opt = b.report(Duration::from_secs(40));
        assert!((opt.energy_reduction_vs(&base) - 2.0).abs() < 1e-12);
        assert!((opt.time_reduction_vs(&base) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_components() {
        let l = EnergyLedger::new();
        let s = l.report(Duration::from_secs(1)).to_string();
        assert!(s.contains("motor"));
        assert!(s.contains("TOTAL"));
    }
}
