//! # lgv-sim
//!
//! Simulation substrate replacing the paper's physical testbed:
//!
//! * [`world`] — 2-D occupancy worlds with preset floorplans and exact
//!   ray casting (stands in for the lab / Intel Research Lab dataset).
//! * [`vehicle`] — differential-drive kinematics with acceleration
//!   limits and drifting odometry (stands in for the Turtlebot3 base).
//! * [`lidar`] — a 360° laser distance sensor model (LDS-01).
//! * [`platform`] — cycle-level compute platform models for the three
//!   tiers of Table III (Turtlebot3 / edge gateway / cloud server),
//!   including the Amdahl-plus-dispatch-overhead parallel scaling that
//!   produces the shapes of Figures 9 and 10.
//! * [`power`], [`energy`], [`battery`] — the paper's analytical energy
//!   model (Eq. 1a–1d, Table I constants) integrated over virtual time.
//! * [`cloud`] — multi-tenant admission control for a shared cloud box:
//!   deterministic queueing delay when a fleet's offloaded pipelines
//!   compete for the same hardware threads.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod battery;
pub mod cloud;
pub mod energy;
pub mod lidar;
pub mod platform;
pub mod power;
pub mod vehicle;
pub mod world;

pub use battery::Battery;
pub use cloud::{CloudScheduler, CloudStats};
pub use energy::{Component, EnergyLedger, EnergyReport};
pub use lidar::{Lidar, LidarConfig};
pub use platform::{Platform, PlatformKind};
pub use power::{LgvProfile, MotorModel, PowerDraw};
pub use vehicle::{Vehicle, VehicleConfig};
pub use world::{World, WorldBuilder};
