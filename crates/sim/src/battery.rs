//! Battery model.
//!
//! A simple coulomb counter over the Table I battery capacity: the
//! paper's motivation (§I) is that the Turtlebot3's 19.98 Wh pack
//! leaves the embedded computer only ≈ 3.35 Wh per hour, so mission
//! feasibility is an energy question.

use serde::{Deserialize, Serialize};

/// A coulomb-counting battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    consumed_j: f64,
}

impl Battery {
    /// New full battery with the given capacity in watt-hours.
    pub fn new_wh(capacity_wh: f64) -> Self {
        assert!(capacity_wh > 0.0, "battery capacity must be positive");
        Battery {
            capacity_j: capacity_wh * 3600.0,
            consumed_j: 0.0,
        }
    }

    /// Drain energy (J); draining past empty clamps at empty.
    pub fn drain(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0);
        self.consumed_j = (self.consumed_j + joules.max(0.0)).min(self.capacity_j);
    }

    /// Remaining energy (J).
    pub fn remaining_j(&self) -> f64 {
        self.capacity_j - self.consumed_j
    }

    /// Remaining energy (Wh).
    pub fn remaining_wh(&self) -> f64 {
        self.remaining_j() / 3600.0
    }

    /// State of charge in [0, 1].
    pub fn soc(&self) -> f64 {
        self.remaining_j() / self.capacity_j
    }

    /// True when fully drained.
    pub fn depleted(&self) -> bool {
        self.remaining_j() <= 0.0
    }

    /// How long the battery lasts at a constant draw (seconds).
    pub fn runtime_at(&self, watts: f64) -> f64 {
        if watts <= 0.0 {
            f64::INFINITY
        } else {
            self.remaining_j() / watts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery_is_full() {
        let b = Battery::new_wh(19.98);
        assert!((b.remaining_wh() - 19.98).abs() < 1e-9);
        assert_eq!(b.soc(), 1.0);
        assert!(!b.depleted());
    }

    #[test]
    fn drain_and_deplete() {
        let mut b = Battery::new_wh(1.0); // 3600 J
        b.drain(1800.0);
        assert!((b.soc() - 0.5).abs() < 1e-12);
        b.drain(999999.0);
        assert!(b.depleted());
        assert_eq!(b.remaining_j(), 0.0);
    }

    #[test]
    fn runtime_estimate() {
        let b = Battery::new_wh(19.98);
        // Paper §I: the EC budget is ≈ 3.35 Wh for one hour; at a
        // 3.35 W draw the full pack would last ≈ 6 h.
        let hours = b.runtime_at(3.35) / 3600.0;
        assert!((hours - 19.98 / 3.35).abs() < 1e-9);
        assert_eq!(b.runtime_at(0.0), f64::INFINITY);
    }
}
