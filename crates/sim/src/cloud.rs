//! Cloud-side admission control for multi-tenant offloading.
//!
//! The paper's cloud server runs one robot's VDP and has all 48
//! hardware threads to itself. A fleet changes that: every vehicle's
//! offloaded pipeline lands on the *same* box, and the governor-chosen
//! thread counts of all tenants compete for the same cores.
//!
//! [`CloudScheduler`] models the resulting queueing delay
//! deterministically:
//!
//! * Virtual time is divided into fixed windows (one control period by
//!   default). Each admission records the tenant's requested thread
//!   count in the current window.
//! * An admission in window `w` requesting `exec` seconds of compute
//!   is stretched by `exec × (other tenants' threads in window w−1) /
//!   hw_threads` — the classic processor-sharing slowdown, fed by the
//!   *previous* window so the penalty is independent of intra-round
//!   ordering (the fleet driver runs vehicles in lockstep rounds, so
//!   window `w−1` is final before anyone executes in `w`).
//! * A tenant alone on the box — a fleet of one, or a session that
//!   never attached a scheduler — pays **exactly zero**, preserving
//!   byte-identity with single-vehicle runs.
//!
//! The returned queueing delay is experienced by the vehicle as longer
//! remote processing time, so it flows into the profiler's RTT and
//! remote-time estimates and from there into Algorithm 1's placement
//! decisions: a saturated cloud genuinely looks slower and pushes
//! stages back onto the robot or the edge.
//!
//! The handle is `Clone`; clones share state, so one scheduler is
//! created per fleet and every vehicle session attaches to it.

use lgv_types::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Aggregate counters for one shared cloud box.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CloudStats {
    /// Total admissions processed.
    pub admissions: u64,
    /// Admissions that paid a non-zero queueing delay.
    pub delayed: u64,
    /// Total queueing delay imposed across all tenants.
    pub total_queue_delay: Duration,
    /// Most requested threads observed in any single window, summed
    /// across tenants (may exceed `hw_threads` under saturation).
    pub peak_window_threads: u64,
    /// Mean utilization of the box over the busy interval:
    /// thread-seconds executed / (hardware threads × elapsed time).
    pub utilization: f64,
}

#[derive(Debug)]
struct SchedulerInner {
    window: Duration,
    hw_threads: u32,
    /// Requested threads per tenant per window index. Old windows are
    /// pruned; only `w−1` and `w` are ever consulted.
    requested: BTreeMap<u64, BTreeMap<u64, u64>>,
    admissions: u64,
    delayed: u64,
    total_queue_delay: Duration,
    peak_window_threads: u64,
    /// Thread-seconds of admitted compute, for utilization.
    thread_secs: f64,
    first_admit: Option<SimTime>,
    last_admit: SimTime,
}

/// One cloud server shared by several vehicle tenants.
///
/// Cheap to clone; clones share the same admission state.
#[derive(Debug, Clone)]
pub struct CloudScheduler {
    inner: Arc<Mutex<SchedulerInner>>,
}

impl CloudScheduler {
    /// A scheduler for a box with `hw_threads` hardware threads and
    /// the given contention window (use the fleet's control period).
    pub fn new(hw_threads: u32, window: Duration) -> Self {
        CloudScheduler {
            inner: Arc::new(Mutex::new(SchedulerInner {
                window: if window == Duration::ZERO {
                    Duration::from_millis(200)
                } else {
                    window
                },
                hw_threads: hw_threads.max(1),
                requested: BTreeMap::new(),
                admissions: 0,
                delayed: 0,
                total_queue_delay: Duration::ZERO,
                peak_window_threads: 0,
                thread_secs: 0.0,
                first_admit: None,
                last_admit: SimTime::EPOCH,
            })),
        }
    }

    /// Admit `exec` seconds of compute on `threads` threads for
    /// `tenant` at `now`, and return the queueing delay the shared box
    /// adds on top: `exec × (other tenants' window-`w−1` threads) /
    /// hw_threads`. Zero when the tenant had the box to itself.
    pub fn admit(&self, tenant: u64, now: SimTime, threads: u32, exec: Duration) -> Duration {
        let mut inner = self.inner.lock().unwrap();
        let w = now.as_nanos() / inner.window.as_nanos().max(1);

        *inner
            .requested
            .entry(w)
            .or_default()
            .entry(tenant)
            .or_insert(0) += threads as u64;
        let here: u64 = inner.requested[&w].values().sum();
        inner.peak_window_threads = inner.peak_window_threads.max(here);
        // Keep only the windows the model can still consult.
        inner.requested = inner.requested.split_off(&w.saturating_sub(1));

        let others: u64 = inner.requested.get(&w.wrapping_sub(1)).map_or(0, |prev| {
            prev.iter()
                .filter(|(&t, _)| t != tenant)
                .map(|(_, &n)| n)
                .sum()
        });

        inner.admissions += 1;
        inner.thread_secs += exec.as_secs_f64() * threads as f64;
        if inner.first_admit.is_none() {
            inner.first_admit = Some(now);
        }
        inner.last_admit = inner.last_admit.max(now + exec);

        let delay = if others == 0 {
            Duration::ZERO
        } else {
            exec * (others as f64 / inner.hw_threads as f64)
        };
        if delay > Duration::ZERO {
            inner.delayed += 1;
            inner.total_queue_delay += delay;
        }
        delay
    }

    /// Hardware threads of the modelled box.
    pub fn hw_threads(&self) -> u32 {
        self.inner.lock().unwrap().hw_threads
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> CloudStats {
        let inner = self.inner.lock().unwrap();
        let utilization = match inner.first_admit {
            None => 0.0,
            Some(first) => {
                let elapsed = inner.last_admit.saturating_since(first).as_secs_f64();
                if elapsed <= 0.0 {
                    0.0
                } else {
                    inner.thread_secs / (inner.hw_threads as f64 * elapsed)
                }
            }
        };
        CloudStats {
            admissions: inner.admissions,
            delayed: inner.delayed,
            total_queue_delay: inner.total_queue_delay,
            peak_window_threads: inner.peak_window_threads,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXEC: Duration = Duration::from_millis(40);

    fn at(ms: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_millis(ms)
    }

    fn sched() -> CloudScheduler {
        CloudScheduler::new(48, Duration::from_millis(200))
    }

    #[test]
    fn lone_tenant_pays_nothing_ever() {
        let s = sched();
        for i in 0..50 {
            assert_eq!(s.admit(1, at(i * 200), 12, EXEC), Duration::ZERO);
        }
        let stats = s.stats();
        assert_eq!(stats.delayed, 0);
        assert_eq!(stats.total_queue_delay, Duration::ZERO);
        assert_eq!(stats.admissions, 50);
        assert!(stats.utilization > 0.0);
    }

    #[test]
    fn queueing_delay_scales_with_other_tenants_threads() {
        let s = sched();
        // Window 0: tenants 2 and 3 request 12 threads each.
        s.admit(2, at(0), 12, EXEC);
        s.admit(3, at(10), 12, EXEC);
        // Window 1: tenant 1 pays for 24 foreign threads on 48 cores.
        let delay = s.admit(1, at(200), 12, EXEC);
        assert_eq!(delay, EXEC * 0.5);
        // Tenant 2 only pays for tenant 3's 12 threads.
        assert_eq!(s.admit(2, at(210), 12, EXEC), EXEC * 0.25);
    }

    #[test]
    fn order_within_a_round_does_not_matter() {
        let run = |order: &[u64]| -> Vec<Duration> {
            let s = sched();
            for &t in order {
                s.admit(t, at(0), 8, EXEC);
            }
            order
                .iter()
                .map(|&t| s.admit(t, at(200), 8, EXEC))
                .collect()
        };
        let a = run(&[1, 2, 3]);
        let b = run(&[3, 1, 2]);
        assert_eq!(a, vec![EXEC * (16.0 / 48.0); 3]);
        assert_eq!(b, a);
    }

    #[test]
    fn idle_gap_resets_the_penalty() {
        let s = sched();
        s.admit(1, at(0), 8, EXEC);
        s.admit(2, at(0), 8, EXEC);
        // Two windows later, window w−1 is empty: no charge.
        assert_eq!(s.admit(1, at(450), 8, EXEC), Duration::ZERO);
    }

    #[test]
    fn utilization_and_peak_reflect_load() {
        let s = sched();
        for t in 1..=4u64 {
            s.admit(t, at(0), 12, EXEC);
        }
        let stats = s.stats();
        assert_eq!(stats.peak_window_threads, 48);
        // 4 tenants × 40 ms × 12 threads over a 40 ms busy interval on
        // 48 threads = fully utilized.
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let s = sched();
        let s2 = s.clone();
        s.admit(1, at(0), 8, EXEC);
        s2.admit(2, at(0), 8, EXEC);
        assert!(s.admit(1, at(200), 8, EXEC) > Duration::ZERO);
        assert_eq!(s.stats().admissions, 3);
    }
}
