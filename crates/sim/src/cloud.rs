//! Cloud-side admission control for multi-tenant offloading.
//!
//! The paper's cloud server runs one robot's VDP and has all 48
//! hardware threads to itself. A fleet changes that: every vehicle's
//! offloaded pipeline lands on the *same* box, and the governor-chosen
//! thread counts of all tenants compete for the same cores.
//!
//! [`CloudScheduler`] models the resulting queueing delay
//! deterministically:
//!
//! * Virtual time is divided into fixed windows (one control period by
//!   default). Each admission records the tenant's requested thread
//!   count in the current window.
//! * An admission in window `w` requesting `exec` seconds of compute
//!   is stretched by `exec × (other tenants' threads in window w−1) /
//!   capacity` — the classic processor-sharing slowdown, fed by the
//!   *previous* window so the penalty is independent of intra-round
//!   ordering (the fleet driver runs vehicles in lockstep rounds, so
//!   window `w−1` is final before anyone executes in `w`).
//! * A tenant alone on the box — a fleet of one, or a session that
//!   never attached a scheduler — pays **exactly zero**, preserving
//!   byte-identity with single-vehicle runs.
//!
//! # Elastic mode
//!
//! [`CloudScheduler::new`] builds the paper's *fixed* box: one
//! replica, every admission charged independently. An **elastic**
//! scheduler ([`CloudScheduler::elastic`], configured by
//! [`ElasticConfig`]) adds the two levers that make cloud robotics
//! practical at fleet scale (FogROS-style adaptive provisioning):
//!
//! * **Batched admission.** Same-stage requests from *different*
//!   tenants inside one contention window coalesce into a single
//!   batched execution: the first request pays full price, each
//!   co-tenant's same-stage contribution is charged at the configured
//!   per-item marginal cost instead of a full independent execution
//!   (one SLAM batch instead of N independent SLAM charges). The
//!   *charge* still reads the final window-`w−1` census so order
//!   independence holds; batch *formation* (who joined which batch,
//!   reported via [`Admission::batch`]) is tracked in the current
//!   window, where lockstep makes co-tenant admissions concurrent.
//! * **Replica autoscaling.** A replica pool grows and shrinks at
//!   window boundaries on hysteresis thresholds over the previous
//!   window's utilization (`requested threads / (hw_threads ×
//!   replicas)`): above `scale_up_util` a replica is provisioned (it
//!   serves only after `spinup` elapses), below `scale_down_util` one
//!   is retired — the gap between the thresholds prevents flapping.
//!   Capacity in the delay model is `hw_threads × replicas ready at
//!   admission time`.
//!
//! Every decision derives from previous-window censuses and window
//! boundaries on the virtual clock, so elastic runs are exactly as
//! deterministic as fixed ones, and a lone tenant still pays exactly
//! zero — a fleet of one under an elastic scheduler is byte-identical
//! to the fixed box.
//!
//! The cost side of the trade-off is a deterministic ledger in
//! [`CloudStats`]: replica-seconds provisioned, admissions served,
//! batches formed and their occupancy, scale events.
//!
//! The returned queueing delay is experienced by the vehicle as longer
//! remote processing time, so it flows into the profiler's RTT and
//! remote-time estimates and from there into Algorithm 1's placement
//! decisions: a saturated cloud genuinely looks slower and pushes
//! stages back onto the robot or the edge.
//!
//! The handle is `Clone`; clones share state, so one scheduler is
//! created per fleet and every vehicle session attaches to it.
//!
//! # Fault injection
//!
//! [`CloudScheduler::set_faults`] attaches a deterministic
//! [`CloudFaultSchedule`] (`lgv-net`'s cloud-tier counterpart to the
//! channel fault windows):
//!
//! * **Replica crashes** remove serving capacity while the window is
//!   open — admissions land on the surviving replicas and pay the
//!   correspondingly larger processor-sharing delay — but the dead
//!   replicas keep accruing replica-seconds, ledgered separately as
//!   [`CloudStats::wasted_replica_seconds`].
//! * **Stragglers** stretch every overlapping admission end to end:
//!   `delay → delay × factor + exec × (factor − 1)`, i.e. the whole
//!   remote execution runs `factor×` slow, not just the queueing part.
//! * **Failed scale-ups** let the autoscaler decide to grow the pool
//!   and pay the spin-up, but the replica never provisions
//!   ([`CloudStats::failed_scale_ups`]).
//!
//! An empty schedule (the default) leaves every arithmetic path
//! byte-identical to a scheduler with no faults attached.

use lgv_net::fault::{CloudFaultKind, CloudFaultSchedule};
use lgv_types::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Elastic-provisioning policy for a [`CloudScheduler`].
///
/// The defaults ([`ElasticConfig::balanced`]) scale between one and
/// four replicas with a 0.75 / 0.30 hysteresis band, two contention
/// windows of spin-up lag, and a 15 % marginal cost per batched item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Coalesce same-stage requests from different tenants within a
    /// window into one batched execution.
    pub batching: bool,
    /// Fraction of a full execution each batched co-tenant item costs
    /// (0 = free riders, 1 = batching off in effect).
    pub marginal_cost: f64,
    /// Lower bound of the replica pool (clamped to ≥ 1).
    pub min_replicas: u32,
    /// Upper bound of the replica pool.
    pub max_replicas: u32,
    /// Scale up when previous-window utilization exceeds this.
    pub scale_up_util: f64,
    /// Scale down when previous-window utilization falls below this.
    /// Must sit below `scale_up_util`; the gap is the hysteresis band.
    pub scale_down_util: f64,
    /// Lag between provisioning a replica and it serving capacity.
    pub spinup: Duration,
}

impl ElasticConfig {
    /// The default elastic policy: 1–4 replicas, scale up above 75 %
    /// utilization, down below 30 %, 400 ms spin-up, batching on at
    /// 15 % marginal cost.
    pub fn balanced() -> Self {
        ElasticConfig {
            batching: true,
            marginal_cost: 0.15,
            min_replicas: 1,
            max_replicas: 4,
            scale_up_util: 0.75,
            scale_down_util: 0.30,
            spinup: Duration::from_millis(400),
        }
    }

    /// Batching disabled, autoscaling unchanged — the ablation arm of
    /// the elasticity axis.
    pub fn without_batching(mut self) -> Self {
        self.batching = false;
        self
    }

    /// Cap the pool at exactly one replica (used by the fleet-of-one
    /// identity gate: with one replica and a lone tenant the elastic
    /// scheduler is bit-for-bit the fixed one).
    pub fn single_replica(mut self) -> Self {
        self.min_replicas = 1;
        self.max_replicas = 1;
        self
    }

    /// The degenerate policy [`CloudScheduler::new`] uses: one
    /// replica, no batching — exactly the paper's fixed box.
    fn fixed() -> Self {
        ElasticConfig {
            batching: false,
            marginal_cost: 1.0,
            min_replicas: 1,
            max_replicas: 1,
            scale_up_util: f64::INFINITY,
            scale_down_util: 0.0,
            spinup: Duration::ZERO,
        }
    }
}

/// One admission's outcome: the queueing delay plus the elastic
/// signals the session forwards to the tracer (`cloud_batch` /
/// `cloud_scale` events).
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Queueing delay the shared box adds on top of nominal execution.
    pub delay: Duration,
    /// Set when this admission joined (or formed) a same-stage batch
    /// in the current window.
    pub batch: Option<BatchJoin>,
    /// Replica-pool transitions decided at window boundaries crossed
    /// since the previous admission (usually empty or one entry).
    pub scales: Vec<ScaleEvent>,
    /// Cloud-fault windows first observed open by this admission
    /// (each window is reported exactly once, by whichever tenant's
    /// admission crosses into it first — deterministic under the
    /// fleet's lockstep round order).
    pub faults: Vec<CloudFaultEdge>,
}

/// A cloud-fault window observed opening at admission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudFaultEdge {
    /// What failed.
    pub kind: CloudFaultKind,
    /// Ordinal of the window in the attached schedule.
    pub index: u64,
    /// Total span of the fault window.
    pub span: Duration,
}

/// This admission coalesced into a same-stage batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchJoin {
    /// The coalesced stage.
    pub stage: NodeKind,
    /// Distinct tenants sharing the batch after this join (≥ 2).
    pub occupancy: u64,
    /// Contention-window index the batch formed in.
    pub window: u64,
    /// Marginal compute this join added (`exec × marginal_cost`)
    /// instead of a full independent execution.
    pub marginal: Duration,
}

/// The replica pool scaled at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Provisioned replicas before the decision.
    pub from: u32,
    /// Provisioned replicas after (spin-up lag still applies before
    /// an added replica serves).
    pub to: u32,
    /// The previous-window utilization that triggered it.
    pub utilization: f64,
    /// Window index the new pool size takes effect in.
    pub window: u64,
}

/// Aggregate counters for one shared cloud box, including the elastic
/// cost ledger (a fixed scheduler reports one replica and no batch or
/// scale activity).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CloudStats {
    /// Total admissions processed.
    pub admissions: u64,
    /// Admissions that paid a non-zero queueing delay.
    pub delayed: u64,
    /// Total queueing delay imposed across all tenants.
    pub total_queue_delay: Duration,
    /// Most requested threads observed in any single window, summed
    /// across tenants (may exceed `hw_threads` under saturation).
    pub peak_window_threads: u64,
    /// Mean utilization of the box over the busy interval:
    /// thread-seconds executed / (hardware threads × elapsed time).
    pub utilization: f64,
    /// Replicas provisioned at the end of the run.
    pub replicas: u32,
    /// Largest pool size ever provisioned.
    pub peak_replicas: u32,
    /// Replica-seconds provisioned: Σ over completed contention
    /// windows of (pool size × window length) — the cost side of the
    /// cost-vs-latency trade-off.
    pub replica_seconds: f64,
    /// Scale-up decisions taken.
    pub scale_ups: u64,
    /// Scale-down decisions taken.
    pub scale_downs: u64,
    /// Same-stage batches formed (a batch exists once two distinct
    /// tenants admit the same stage in one window).
    pub batches: u64,
    /// Admissions that executed inside a batch (both the batch head
    /// and every marginal-cost join).
    pub batched_admissions: u64,
    /// Replica-crash fault windows observed open.
    pub replica_crash_windows: u64,
    /// Admissions stretched by an open straggler window.
    pub straggled_admissions: u64,
    /// Total extra delay imposed by straggler windows, over and above
    /// the fault-free processor-sharing delay.
    pub straggler_extra_delay: Duration,
    /// Scale-up decisions whose replica never provisioned because a
    /// failed-scale-up fault window covered the boundary.
    pub failed_scale_ups: u64,
    /// Replica-seconds paid for capacity that served nothing: dead
    /// replicas inside crash windows plus the spin-up of every failed
    /// scale-up.
    pub wasted_replica_seconds: f64,
}

impl CloudStats {
    /// Mean queueing delay per admission, seconds.
    pub fn mean_queue_delay_secs(&self) -> f64 {
        if self.admissions == 0 {
            0.0
        } else {
            self.total_queue_delay.as_secs_f64() / self.admissions as f64
        }
    }

    /// Mean tenants per batch (0 when no batch ever formed).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_admissions as f64 / self.batches as f64
        }
    }

    /// Fold several pools' ledgers into one fleet-wide view: counter
    /// and duration fields sum, `peak_*` fields take the max, pool
    /// sizes (`replicas`) sum, and `utilization` becomes the
    /// admissions-weighted mean. A one-element slice returns that
    /// element verbatim (no float arithmetic), so a single-pool fleet
    /// report is bit-identical to the pool's own stats.
    pub fn merged(pools: &[CloudStats]) -> CloudStats {
        if pools.len() == 1 {
            return pools[0];
        }
        let mut total = CloudStats::default();
        let mut util_weight = 0u64;
        for p in pools {
            total.admissions += p.admissions;
            total.delayed += p.delayed;
            total.total_queue_delay += p.total_queue_delay;
            total.peak_window_threads = total.peak_window_threads.max(p.peak_window_threads);
            total.replicas += p.replicas;
            total.peak_replicas = total.peak_replicas.max(p.peak_replicas);
            total.replica_seconds += p.replica_seconds;
            total.scale_ups += p.scale_ups;
            total.scale_downs += p.scale_downs;
            total.batches += p.batches;
            total.batched_admissions += p.batched_admissions;
            total.replica_crash_windows += p.replica_crash_windows;
            total.straggled_admissions += p.straggled_admissions;
            total.straggler_extra_delay += p.straggler_extra_delay;
            total.failed_scale_ups += p.failed_scale_ups;
            total.wasted_replica_seconds += p.wasted_replica_seconds;
            total.utilization += p.utilization * p.admissions as f64;
            util_weight += p.admissions;
        }
        if util_weight > 0 {
            total.utilization /= util_weight as f64;
        }
        total
    }
}

#[derive(Debug)]
struct SchedulerInner {
    window: Duration,
    hw_threads: u32,
    cfg: ElasticConfig,
    /// Requested threads per tenant per window index. Old windows are
    /// pruned; only `w−1` and `w` are ever consulted.
    requested: BTreeMap<u64, BTreeMap<u64, u64>>,
    /// Requested threads per (stage, tenant) per window index, pruned
    /// in lockstep with `requested` — the same-stage census batching
    /// charges against, and the batch-formation record.
    stage_req: BTreeMap<u64, BTreeMap<(NodeKind, u64), u64>>,
    /// Ready time of every provisioned replica, non-decreasing: the
    /// initial `min_replicas` are ready at the epoch, a scale-up
    /// appends `boundary + spinup`, a scale-down pops the newest.
    replicas: Vec<SimTime>,
    /// Next window boundary the autoscaler has yet to evaluate
    /// (`None` until the first admission anchors it).
    eval_window: Option<u64>,
    admissions: u64,
    delayed: u64,
    total_queue_delay: Duration,
    peak_window_threads: u64,
    /// Thread-seconds of admitted compute, for utilization.
    thread_secs: f64,
    first_admit: Option<SimTime>,
    last_admit: SimTime,
    // Cost ledger.
    replica_secs: f64,
    peak_replicas: u32,
    scale_ups: u64,
    scale_downs: u64,
    batches: u64,
    batched_admissions: u64,
    // Fault injection.
    faults: CloudFaultSchedule,
    /// One flag per schedule window: has its opening been reported
    /// through [`Admission::faults`] yet?
    fault_reported: Vec<bool>,
    replica_crash_windows: u64,
    straggled_admissions: u64,
    straggler_extra_delay: Duration,
    failed_scale_ups: u64,
    wasted_replica_secs: f64,
}

impl SchedulerInner {
    /// Evaluate every window boundary between the last evaluated
    /// window and `w`: accrue replica-seconds and apply the hysteresis
    /// autoscaler to each completed window's utilization. Returns the
    /// scale transitions, oldest first.
    fn advance_to(&mut self, w: u64) -> Vec<ScaleEvent> {
        let mut events = Vec::new();
        let mut ew = match self.eval_window {
            None => {
                self.eval_window = Some(w);
                return events;
            }
            Some(ew) => ew,
        };
        while ew < w {
            let provisioned = self.replicas.len() as u32;
            self.replica_secs += provisioned as f64 * self.window.as_secs_f64();
            // Dead replicas (crash window open at the window's start)
            // are still provisioned and still billed; ledger the
            // serving-nothing fraction as waste.
            let start = SimTime::from_nanos(ew.saturating_mul(self.window.as_nanos()));
            let dead = self.faults.crashed_at(start).min(provisioned);
            self.wasted_replica_secs += dead as f64 * self.window.as_secs_f64();
            let total: u64 = self.requested.get(&ew).map_or(0, |m| m.values().sum());
            let util = total as f64 / (self.hw_threads as u64 * provisioned as u64).max(1) as f64;
            let boundary = SimTime::from_nanos((ew + 1).saturating_mul(self.window.as_nanos()));
            if util > self.cfg.scale_up_util && provisioned < self.cfg.max_replicas {
                if self.faults.scale_up_fails_at(boundary) {
                    // The autoscaler commits and pays the spin-up, but
                    // the replica never comes: no capacity, no
                    // ScaleEvent, just priced waste.
                    self.failed_scale_ups += 1;
                    self.wasted_replica_secs += self.cfg.spinup.as_secs_f64();
                } else {
                    self.replicas.push(boundary + self.cfg.spinup);
                    self.scale_ups += 1;
                    self.peak_replicas = self.peak_replicas.max(provisioned + 1);
                    events.push(ScaleEvent {
                        from: provisioned,
                        to: provisioned + 1,
                        utilization: util,
                        window: ew + 1,
                    });
                }
            } else if util < self.cfg.scale_down_util && provisioned > self.cfg.min_replicas {
                // Retire the newest replica first (it may still be
                // spinning up, so retiring it costs the least).
                self.replicas.pop();
                self.scale_downs += 1;
                events.push(ScaleEvent {
                    from: provisioned,
                    to: provisioned - 1,
                    utilization: util,
                    window: ew + 1,
                });
            }
            ew += 1;
        }
        self.eval_window = Some(w);
        events
    }

    /// Replicas actually serving at `now` (provisioned minus those
    /// still inside their spin-up lag; never below one).
    fn ready_replicas(&self, now: SimTime) -> u32 {
        (self.replicas.iter().filter(|&&r| r <= now).count() as u32).max(1)
    }

    /// Ready replicas minus those dead in an open crash window, never
    /// below one — the capacity admissions are actually served by.
    /// With an empty schedule this is exactly [`Self::ready_replicas`].
    fn serving_replicas(&self, now: SimTime) -> u32 {
        self.ready_replicas(now)
            .saturating_sub(self.faults.crashed_at(now))
            .max(1)
    }

    /// Report every schedule window whose opening `now` has reached
    /// and that has not been reported yet (exactly-once per window).
    fn observe_fault_edges(&mut self, now: SimTime) -> Vec<CloudFaultEdge> {
        if self.faults.is_empty() {
            return Vec::new();
        }
        let mut edges = Vec::new();
        for (i, w) in self.faults.windows().iter().enumerate() {
            if !self.fault_reported[i] && now >= w.from {
                self.fault_reported[i] = true;
                if matches!(w.kind, CloudFaultKind::ReplicaCrash { .. }) {
                    self.replica_crash_windows += 1;
                }
                edges.push(CloudFaultEdge {
                    kind: w.kind,
                    index: i as u64,
                    span: w.until.saturating_since(w.from),
                });
            }
        }
        edges
    }
}

/// One cloud server shared by several vehicle tenants.
///
/// Cheap to clone; clones share the same admission state.
#[derive(Debug, Clone)]
pub struct CloudScheduler {
    inner: Arc<Mutex<SchedulerInner>>,
}

impl CloudScheduler {
    /// A fixed scheduler for a box with `hw_threads` hardware threads
    /// and the given contention window (use the fleet's control
    /// period): one replica, no batching — the paper's cloud.
    pub fn new(hw_threads: u32, window: Duration) -> Self {
        Self::elastic(hw_threads, window, ElasticConfig::fixed())
    }

    /// An elastic scheduler: `cfg` governs same-stage batching and
    /// replica autoscaling on top of the same windowed
    /// processor-sharing model.
    pub fn elastic(hw_threads: u32, window: Duration, cfg: ElasticConfig) -> Self {
        let cfg = ElasticConfig {
            min_replicas: cfg.min_replicas.max(1),
            max_replicas: cfg.max_replicas.max(cfg.min_replicas.max(1)),
            ..cfg
        };
        CloudScheduler {
            inner: Arc::new(Mutex::new(SchedulerInner {
                window: if window == Duration::ZERO {
                    Duration::from_millis(200)
                } else {
                    window
                },
                hw_threads: hw_threads.max(1),
                replicas: vec![SimTime::EPOCH; cfg.min_replicas as usize],
                peak_replicas: cfg.min_replicas,
                cfg,
                requested: BTreeMap::new(),
                stage_req: BTreeMap::new(),
                eval_window: None,
                admissions: 0,
                delayed: 0,
                total_queue_delay: Duration::ZERO,
                peak_window_threads: 0,
                thread_secs: 0.0,
                first_admit: None,
                last_admit: SimTime::EPOCH,
                replica_secs: 0.0,
                scale_ups: 0,
                scale_downs: 0,
                batches: 0,
                batched_admissions: 0,
                faults: CloudFaultSchedule::none(),
                fault_reported: Vec::new(),
                replica_crash_windows: 0,
                straggled_admissions: 0,
                straggler_extra_delay: Duration::ZERO,
                failed_scale_ups: 0,
                wasted_replica_secs: 0.0,
            })),
        }
    }

    /// Lock the shared state, recovering from a poisoned mutex: every
    /// mutation the scheduler performs is a plain counter or map
    /// update with no multi-step invariants, so state observed after
    /// a panicking holder is still consistent — injected cloud faults
    /// must never cascade into a simulator abort.
    fn lock(&self) -> MutexGuard<'_, SchedulerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attach a deterministic cloud-tier fault schedule. Replaces any
    /// previously attached schedule and resets the exactly-once
    /// window-edge reporting. An empty schedule restores fault-free
    /// behavior, byte for byte.
    pub fn set_faults(&self, faults: CloudFaultSchedule) {
        let mut inner = self.lock();
        inner.fault_reported = vec![false; faults.windows().len()];
        inner.faults = faults;
    }

    /// Admit `exec` seconds of `stage` compute on `threads` threads
    /// for `tenant` at `now`.
    ///
    /// The returned [`Admission::delay`] is the queueing delay the
    /// shared box adds on top:
    ///
    /// ```text
    /// exec × (marginal_cost × same-stage + other-stage foreign w−1 threads)
    ///      / (hw_threads × ready replicas)
    /// ```
    ///
    /// (marginal cost applies only with batching on; a fixed scheduler
    /// reduces to `exec × foreign threads / hw_threads`). Zero when
    /// the tenant had the box to itself — always, under any config.
    pub fn admit(
        &self,
        tenant: u64,
        stage: NodeKind,
        now: SimTime,
        threads: u32,
        exec: Duration,
    ) -> Admission {
        let mut inner = self.lock();
        let w = now.as_nanos() / inner.window.as_nanos().max(1);

        // Window boundaries crossed since the last admission: accrue
        // the ledger and run the autoscaler on each completed window.
        let scales = inner.advance_to(w);
        let faults = inner.observe_fault_edges(now);

        *inner
            .requested
            .entry(w)
            .or_default()
            .entry(tenant)
            .or_insert(0) += threads as u64;
        let here: u64 = inner.requested[&w].values().sum();
        inner.peak_window_threads = inner.peak_window_threads.max(here);

        // Batch formation in the *current* window: lockstep makes
        // co-tenant admissions within one window concurrent, so the
        // first same-stage admission from a second distinct tenant
        // forms a batch and later tenants join it.
        let stage_slot = inner.stage_req.entry(w).or_default();
        let first_for_tenant = !stage_slot.contains_key(&(stage, tenant));
        *stage_slot.entry((stage, tenant)).or_insert(0) += threads as u64;
        let occupancy = stage_slot.keys().filter(|(s, _)| *s == stage).count() as u64;
        let batch = if inner.cfg.batching && first_for_tenant && occupancy >= 2 {
            if occupancy == 2 {
                inner.batches += 1;
                inner.batched_admissions += 2;
            } else {
                inner.batched_admissions += 1;
            }
            Some(BatchJoin {
                stage,
                occupancy,
                window: w,
                marginal: exec * inner.cfg.marginal_cost,
            })
        } else {
            None
        };

        // Keep only the windows the model can still consult.
        let keep = w.saturating_sub(1);
        inner.requested = inner.requested.split_off(&keep);
        inner.stage_req = inner.stage_req.split_off(&keep);

        let prev = w.wrapping_sub(1);
        let others: u64 = inner.requested.get(&prev).map_or(0, |m| {
            m.iter()
                .filter(|(&t, _)| t != tenant)
                .map(|(_, &n)| n)
                .sum()
        });
        let same_stage: u64 = inner.stage_req.get(&prev).map_or(0, |m| {
            m.iter()
                .filter(|(&(s, t), _)| s == stage && t != tenant)
                .map(|(_, &n)| n)
                .sum()
        });

        inner.admissions += 1;
        inner.thread_secs += exec.as_secs_f64() * threads as f64;
        if inner.first_admit.is_none() {
            inner.first_admit = Some(now);
        }
        inner.last_admit = inner.last_admit.max(now + exec);

        let mut delay = if others == 0 {
            Duration::ZERO
        } else {
            let foreign = if inner.cfg.batching {
                inner.cfg.marginal_cost * same_stage as f64 + (others - same_stage) as f64
            } else {
                others as f64
            };
            // Crashed replicas serve nothing: the survivors absorb the
            // whole census.
            let capacity =
                (inner.hw_threads as u64 * inner.serving_replicas(now) as u64).max(1) as f64;
            exec * (foreign / capacity)
        };
        // A straggler window slows the whole remote execution, not
        // just the queueing part: the nominal exec runs factor× slow
        // and the queueing delay stretches with it.
        let factor = inner.faults.straggle_factor_at(now);
        if factor > 1.0 {
            let slowed = delay * factor + exec * (factor - 1.0);
            inner.straggled_admissions += 1;
            inner.straggler_extra_delay += slowed.saturating_sub(delay);
            delay = slowed;
        }
        if delay > Duration::ZERO {
            inner.delayed += 1;
            inner.total_queue_delay += delay;
        }
        Admission {
            delay,
            batch,
            scales,
            faults,
        }
    }

    /// Hardware threads of the modelled box (per replica).
    pub fn hw_threads(&self) -> u32 {
        self.lock().hw_threads
    }

    /// The provisioning policy in force.
    pub fn config(&self) -> ElasticConfig {
        self.lock().cfg
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> CloudStats {
        let inner = self.lock();
        let utilization = match inner.first_admit {
            None => 0.0,
            Some(first) => {
                let elapsed = inner.last_admit.saturating_since(first).as_secs_f64();
                if elapsed <= 0.0 {
                    0.0
                } else {
                    inner.thread_secs / (inner.hw_threads as f64 * elapsed)
                }
            }
        };
        CloudStats {
            admissions: inner.admissions,
            delayed: inner.delayed,
            total_queue_delay: inner.total_queue_delay,
            peak_window_threads: inner.peak_window_threads,
            utilization,
            replicas: inner.replicas.len() as u32,
            peak_replicas: inner.peak_replicas,
            replica_seconds: inner.replica_secs,
            scale_ups: inner.scale_ups,
            scale_downs: inner.scale_downs,
            batches: inner.batches,
            batched_admissions: inner.batched_admissions,
            replica_crash_windows: inner.replica_crash_windows,
            straggled_admissions: inner.straggled_admissions,
            straggler_extra_delay: inner.straggler_extra_delay,
            failed_scale_ups: inner.failed_scale_ups,
            wasted_replica_seconds: inner.wasted_replica_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXEC: Duration = Duration::from_millis(40);
    const VDP: NodeKind = NodeKind::CostmapGen;

    fn at(ms: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_millis(ms)
    }

    fn sched() -> CloudScheduler {
        CloudScheduler::new(48, Duration::from_millis(200))
    }

    #[test]
    fn lone_tenant_pays_nothing_ever() {
        let s = sched();
        for i in 0..50 {
            assert_eq!(s.admit(1, VDP, at(i * 200), 12, EXEC).delay, Duration::ZERO);
        }
        let stats = s.stats();
        assert_eq!(stats.delayed, 0);
        assert_eq!(stats.total_queue_delay, Duration::ZERO);
        assert_eq!(stats.admissions, 50);
        assert!(stats.utilization > 0.0);
        assert_eq!(stats.replicas, 1);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn queueing_delay_scales_with_other_tenants_threads() {
        let s = sched();
        // Window 0: tenants 2 and 3 request 12 threads each.
        s.admit(2, VDP, at(0), 12, EXEC);
        s.admit(3, VDP, at(10), 12, EXEC);
        // Window 1: tenant 1 pays for 24 foreign threads on 48 cores.
        let delay = s.admit(1, VDP, at(200), 12, EXEC).delay;
        assert_eq!(delay, EXEC * 0.5);
        // Tenant 2 only pays for tenant 3's 12 threads.
        assert_eq!(s.admit(2, VDP, at(210), 12, EXEC).delay, EXEC * 0.25);
    }

    #[test]
    fn order_within_a_round_does_not_matter() {
        let run = |order: &[u64]| -> Vec<Duration> {
            let s = sched();
            for &t in order {
                s.admit(t, VDP, at(0), 8, EXEC);
            }
            order
                .iter()
                .map(|&t| s.admit(t, VDP, at(200), 8, EXEC).delay)
                .collect()
        };
        let a = run(&[1, 2, 3]);
        let b = run(&[3, 1, 2]);
        assert_eq!(a, vec![EXEC * (16.0 / 48.0); 3]);
        assert_eq!(b, a);
    }

    #[test]
    fn idle_gap_resets_the_penalty() {
        let s = sched();
        s.admit(1, VDP, at(0), 8, EXEC);
        s.admit(2, VDP, at(0), 8, EXEC);
        // Two windows later, window w−1 is empty: no charge.
        assert_eq!(s.admit(1, VDP, at(450), 8, EXEC).delay, Duration::ZERO);
    }

    #[test]
    fn utilization_and_peak_reflect_load() {
        let s = sched();
        for t in 1..=4u64 {
            s.admit(t, VDP, at(0), 12, EXEC);
        }
        let stats = s.stats();
        assert_eq!(stats.peak_window_threads, 48);
        // 4 tenants × 40 ms × 12 threads over a 40 ms busy interval on
        // 48 threads = fully utilized.
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let s = sched();
        let s2 = s.clone();
        s.admit(1, VDP, at(0), 8, EXEC);
        s2.admit(2, VDP, at(0), 8, EXEC);
        assert!(s.admit(1, VDP, at(200), 8, EXEC).delay > Duration::ZERO);
        assert_eq!(s.stats().admissions, 3);
    }

    // ---- elastic mode ----

    fn elastic(cfg: ElasticConfig) -> CloudScheduler {
        CloudScheduler::elastic(48, Duration::from_millis(200), cfg)
    }

    #[test]
    fn same_stage_admissions_coalesce_into_one_batch() {
        let s = elastic(ElasticConfig::balanced().single_replica());
        // Window 0: four tenants admit the same stage. The first pays
        // full price (no batch to join yet); tenants 2..4 join the
        // batch at marginal cost.
        let n = 4u64;
        for t in 1..=n {
            let adm = s.admit(t, NodeKind::Slam, at(0), 12, EXEC);
            match t {
                1 => assert!(adm.batch.is_none(), "batch head pays full price"),
                _ => {
                    let b = adm.batch.expect("co-tenant joins the batch");
                    assert_eq!(b.stage, NodeKind::Slam);
                    assert_eq!(b.occupancy, t);
                    assert_eq!(b.window, 0);
                    assert_eq!(b.marginal, EXEC * 0.15);
                }
            }
        }
        let stats = s.stats();
        // One batched execution, N admissions inside it: the head plus
        // N−1 marginal charges.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_admissions, n);
        assert!((stats.mean_batch_occupancy() - n as f64).abs() < 1e-12);

        // Window 1: the same-stage foreign census is charged at
        // marginal cost — 3 × 12 × 0.15 threads on 48 cores — instead
        // of the fixed scheduler's 3 × 12.
        let delay = s.admit(1, NodeKind::Slam, at(200), 12, EXEC).delay;
        assert_eq!(delay, EXEC * (0.15 * 36.0 / 48.0));
        let fixed = sched();
        for t in 1..=n {
            fixed.admit(t, NodeKind::Slam, at(0), 12, EXEC);
        }
        let fixed_delay = fixed.admit(1, NodeKind::Slam, at(200), 12, EXEC).delay;
        assert_eq!(fixed_delay, EXEC * (36.0 / 48.0));
        assert!(delay < fixed_delay);
    }

    #[test]
    fn repeat_admissions_by_one_tenant_do_not_batch() {
        let s = elastic(ElasticConfig::balanced().single_replica());
        // Sequential re-admissions by the same tenant are not
        // concurrent work; no batch may form.
        for _ in 0..3 {
            assert!(s.admit(1, NodeKind::Slam, at(0), 12, EXEC).batch.is_none());
        }
        assert_eq!(s.stats().batches, 0);
        // A second tenant's different stage does not batch either.
        assert!(s
            .admit(2, NodeKind::CostmapGen, at(0), 12, EXEC)
            .batch
            .is_none());
        assert_eq!(s.stats().batches, 0);
    }

    #[test]
    fn pool_scales_up_under_load_and_down_when_idle() {
        let cfg = ElasticConfig {
            spinup: Duration::from_millis(200),
            ..ElasticConfig::balanced().without_batching()
        };
        let s = elastic(cfg);
        // Saturate window 0: 8 tenants × 12 threads = 96 on 48 cores.
        for t in 1..=8u64 {
            s.admit(t, VDP, at(0), 12, EXEC);
        }
        // The boundary into window 1 sees util 2.0 > 0.75: scale to 2.
        let adm = s.admit(1, VDP, at(200), 12, EXEC);
        assert_eq!(adm.scales.len(), 1);
        assert_eq!((adm.scales[0].from, adm.scales[0].to), (1, 2));
        assert!(adm.scales[0].utilization > 1.9);
        // The new replica is still spinning up at 200 ms + ε, so this
        // admission is charged against 1×48 capacity...
        assert_eq!(adm.delay, EXEC * (84.0 / 48.0));
        // ...but once the lag passes, capacity doubles.
        for t in 2..=8u64 {
            s.admit(t, VDP, at(210), 12, EXEC);
        }
        let later = s.admit(1, VDP, at(410), 12, EXEC);
        assert_eq!(later.delay, EXEC * (84.0 / 96.0));
        // Long idle stretch: utilization 0 < 0.30 every window, so the
        // pool drains back to min one step per boundary.
        let quiet = s.admit(1, VDP, at(2_000), 12, EXEC);
        assert!(quiet.scales.iter().any(|e| e.to < e.from));
        let stats = s.stats();
        assert_eq!(stats.replicas, cfg.min_replicas);
        assert!(stats.peak_replicas >= 2);
        assert!(stats.scale_downs >= 1);
        assert!(stats.replica_seconds > 0.0);
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        // Utilization held mid-band (0.5, between 0.30 and 0.75) for
        // many windows: the pool must never move.
        let s = elastic(ElasticConfig::balanced());
        for w in 0..50u64 {
            let adm1 = s.admit(1, VDP, at(w * 200), 12, EXEC);
            let adm2 = s.admit(2, VDP, at(w * 200 + 10), 12, EXEC);
            assert!(adm1.scales.is_empty() && adm2.scales.is_empty());
        }
        let stats = s.stats();
        assert_eq!(stats.scale_ups, 0);
        assert_eq!(stats.scale_downs, 0);
        assert_eq!(stats.replicas, 1);

        // Just past the up-threshold once: one scale-up, and the
        // resulting mid-band utilization (40/96 ≈ 0.42) must not
        // trigger the down-threshold — no flap back.
        let s = elastic(ElasticConfig::balanced());
        for w in 0..20u64 {
            // 40 of 48 threads ≈ 0.83 at one replica, ≈ 0.42 at two.
            for t in 1..=5u64 {
                s.admit(t, VDP, at(w * 200 + t), 8, EXEC);
            }
        }
        let stats = s.stats();
        assert_eq!(stats.scale_ups, 1, "one decisive scale-up");
        assert_eq!(stats.scale_downs, 0, "no flap at the boundary");
        assert_eq!(stats.replicas, 2);
    }

    #[test]
    fn elastic_single_replica_matches_fixed_byte_for_byte() {
        // The identity gate: batching off + a one-replica cap is the
        // fixed scheduler, bit for bit, for any admission sequence.
        let fixed = sched();
        let elas = elastic(
            ElasticConfig::balanced()
                .without_batching()
                .single_replica(),
        );
        let mut fixed_delays = Vec::new();
        let mut elastic_delays = Vec::new();
        for w in 0..30u64 {
            for t in 1..=(1 + w % 5) {
                let stage = NodeKind::ALL[(t % 7) as usize];
                let threads = 4 + (t as u32 % 9);
                fixed_delays.push(fixed.admit(t, stage, at(w * 200 + t), threads, EXEC).delay);
                elastic_delays.push(elas.admit(t, stage, at(w * 200 + t), threads, EXEC).delay);
            }
        }
        assert_eq!(fixed_delays, elastic_delays);
        let (f, e) = (fixed.stats(), elas.stats());
        assert_eq!(f.admissions, e.admissions);
        assert_eq!(f.delayed, e.delayed);
        assert_eq!(f.total_queue_delay, e.total_queue_delay);
        assert_eq!(e.scale_ups + e.scale_downs, 0);
        assert_eq!(e.batches, 0);
    }

    // ---- cloud-tier fault injection ----

    fn two_replica_pool() -> CloudScheduler {
        // A fixed two-replica pool (hysteresis pinned so it never
        // moves): ready capacity 96 threads from the epoch.
        elastic(ElasticConfig {
            min_replicas: 2,
            max_replicas: 2,
            ..ElasticConfig::balanced().without_batching()
        })
    }

    #[test]
    fn empty_fault_schedule_is_byte_identical_to_none_attached() {
        let bare = sched();
        let faulted = sched();
        faulted.set_faults(CloudFaultSchedule::none());
        for w in 0..20u64 {
            for t in 1..=3u64 {
                let a = bare.admit(t, VDP, at(w * 200 + t), 8, EXEC);
                let b = faulted.admit(t, VDP, at(w * 200 + t), 8, EXEC);
                assert_eq!(a, b);
            }
        }
        assert_eq!(bare.stats(), faulted.stats());
        let s = faulted.stats();
        assert_eq!(s.replica_crash_windows, 0);
        assert_eq!(s.straggled_admissions, 0);
        assert_eq!(s.wasted_replica_seconds, 0.0);
    }

    #[test]
    fn crashed_replica_halves_capacity_and_ledgers_waste() {
        let healthy = two_replica_pool();
        let crashed = two_replica_pool();
        crashed.set_faults(CloudFaultSchedule::none().with(
            0.0,
            1.0,
            CloudFaultKind::ReplicaCrash { replicas: 1 },
        ));
        for s in [&healthy, &crashed] {
            s.admit(2, VDP, at(0), 12, EXEC);
        }
        // Window 1: 12 foreign threads on 96 threads healthy, but on
        // 48 when one of the two replicas is dead.
        assert_eq!(
            healthy.admit(1, VDP, at(200), 12, EXEC).delay,
            EXEC * (12.0 / 96.0)
        );
        let adm = crashed.admit(1, VDP, at(200), 12, EXEC);
        assert_eq!(adm.delay, EXEC * (12.0 / 48.0));
        // The crash window is reported exactly once, by the first
        // admission that observes it open.
        assert!(
            adm.faults.is_empty(),
            "window 0 admission already reported it"
        );
        let stats = crashed.stats();
        assert_eq!(stats.replica_crash_windows, 1);
        // The dead replica was provisioned (and billed) through the
        // completed window: 1 replica × 0.2 s.
        assert!((stats.wasted_replica_seconds - 0.2).abs() < 1e-9);
        // After the window closes, capacity is whole again.
        crashed.admit(2, VDP, at(1_000), 12, EXEC);
        assert_eq!(
            crashed.admit(1, VDP, at(1_200), 12, EXEC).delay,
            EXEC * (12.0 / 96.0)
        );
    }

    #[test]
    fn crash_edges_are_reported_once_with_kind_and_span() {
        let s = two_replica_pool();
        s.set_faults(
            CloudFaultSchedule::none()
                .with(0.5, 2.0, CloudFaultKind::ReplicaCrash { replicas: 1 })
                .with(1.0, 1.0, CloudFaultKind::Straggler { factor: 2.0 }),
        );
        assert!(s.admit(1, VDP, at(0), 8, EXEC).faults.is_empty());
        let adm = s.admit(1, VDP, at(600), 8, EXEC);
        assert_eq!(adm.faults.len(), 1);
        assert_eq!(
            adm.faults[0].kind,
            CloudFaultKind::ReplicaCrash { replicas: 1 }
        );
        assert_eq!(adm.faults[0].index, 0);
        assert_eq!(adm.faults[0].span, Duration::from_secs(2));
        let adm = s.admit(2, VDP, at(1_100), 8, EXEC);
        assert_eq!(adm.faults.len(), 1);
        assert_eq!(
            adm.faults[0].kind,
            CloudFaultKind::Straggler { factor: 2.0 }
        );
        // No window reports twice.
        assert!(s.admit(1, VDP, at(1_200), 8, EXEC).faults.is_empty());
    }

    #[test]
    fn straggler_window_slows_the_whole_execution() {
        let s = sched();
        s.set_faults(CloudFaultSchedule::none().with(
            1.0,
            1.0,
            CloudFaultKind::Straggler { factor: 3.0 },
        ));
        // Outside the window: untouched.
        assert_eq!(s.admit(1, VDP, at(0), 8, EXEC).delay, Duration::ZERO);
        // Inside: even a lone tenant pays exec × (factor − 1) — the
        // remote box itself is slow.
        assert_eq!(s.admit(1, VDP, at(1_000), 8, EXEC).delay, EXEC * 2.0);
        // With contention the queueing delay stretches too:
        // base = EXEC × 8/48, slowed = base × 3 + EXEC × 2.
        s.admit(2, VDP, at(1_200), 8, EXEC);
        let base = EXEC * (8.0 / 48.0);
        assert_eq!(
            s.admit(1, VDP, at(1_400), 8, EXEC).delay,
            base * 3.0 + EXEC * 2.0
        );
        let stats = s.stats();
        // Straggled: the lone admission at 1.0 s plus the two
        // contended ones at 1.2 s and 1.4 s.
        assert_eq!(stats.straggled_admissions, 3);
        let contended = base * 3.0 + EXEC * 2.0;
        assert_eq!(
            stats.straggler_extra_delay,
            EXEC * 2.0 + (contended - base) * 2.0
        );
        // Past the window: back to the fault-free price.
        s.admit(2, VDP, at(2_000), 8, EXEC);
        assert_eq!(s.admit(1, VDP, at(2_200), 8, EXEC).delay, base);
    }

    #[test]
    fn failed_scale_up_leaves_pool_size_but_prices_the_spinup() {
        let cfg = ElasticConfig {
            spinup: Duration::from_millis(200),
            ..ElasticConfig::balanced().without_batching()
        };
        let sabotaged = elastic(cfg);
        sabotaged.set_faults(CloudFaultSchedule::none().with(
            0.0,
            1.0,
            CloudFaultKind::FailedScaleUp,
        ));
        // Saturate window 0 exactly as pool_scales_up_under_load does.
        for t in 1..=8u64 {
            sabotaged.admit(t, VDP, at(0), 12, EXEC);
        }
        let adm = sabotaged.admit(1, VDP, at(200), 12, EXEC);
        assert!(adm.scales.is_empty(), "the scale-up never lands");
        // Deep into what would have been the doubled-capacity era the
        // pool is still one replica wide.
        for t in 2..=8u64 {
            sabotaged.admit(t, VDP, at(210), 12, EXEC);
        }
        assert_eq!(
            sabotaged.admit(1, VDP, at(410), 12, EXEC).delay,
            EXEC * (84.0 / 48.0)
        );
        let stats = sabotaged.stats();
        assert!(stats.failed_scale_ups >= 1);
        assert_eq!(stats.scale_ups, 0);
        assert_eq!(stats.replicas, 1);
        assert!(stats.wasted_replica_seconds >= 0.2 * stats.failed_scale_ups as f64);
    }

    #[test]
    fn lone_tenant_pays_nothing_under_any_elastic_config() {
        for cfg in [
            ElasticConfig::balanced(),
            ElasticConfig::balanced().without_batching(),
            ElasticConfig::balanced().single_replica(),
        ] {
            let s = elastic(cfg);
            for i in 0..50 {
                let adm = s.admit(7, NodeKind::Slam, at(i * 200), 12, EXEC);
                assert_eq!(adm.delay, Duration::ZERO);
                assert!(adm.batch.is_none());
            }
            assert_eq!(s.stats().delayed, 0);
        }
    }
}
