//! Property-based tests for the simulation substrate.

use lgv_sim::platform::Platform;
use lgv_sim::power::{LgvProfile, TransmitModel};
use lgv_sim::world::WorldBuilder;
use lgv_sim::{Battery, Lidar, LidarConfig, Vehicle, VehicleConfig};
use lgv_types::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn raycast_never_exceeds_max_range(
        x in 0.5f64..9.5, y in 0.5f64..9.5, a in -3.1f64..3.1, r in 0.1f64..20.0,
    ) {
        let w = WorldBuilder::new(10.0, 10.0, 0.05).walls().build();
        let d = w.raycast(Point2::new(x, y), a, r);
        prop_assert!(d >= 0.0 && d <= r + 1e-9);
    }

    #[test]
    fn raycast_monotone_in_max_range(
        x in 1.0f64..9.0, y in 1.0f64..9.0, a in -3.1f64..3.1,
    ) {
        let w = WorldBuilder::new(10.0, 10.0, 0.05).walls()
            .disc(Point2::new(5.0, 5.0), 0.6).build();
        let d_short = w.raycast(Point2::new(x, y), a, 1.0);
        let d_long = w.raycast(Point2::new(x, y), a, 8.0);
        // A longer budget can only reveal hits at or past the short cap.
        prop_assert!(d_long + 1e-9 >= d_short || d_short >= 1.0 - 1e-9);
    }

    #[test]
    fn vehicle_never_penetrates_walls(
        seed in 0u64..200, vx in 0.0f64..0.22, wz in -2.0f64..2.0,
    ) {
        let w = WorldBuilder::new(6.0, 6.0, 0.05).walls().build();
        let mut v = Vehicle::new(
            VehicleConfig::default(),
            Pose2D::new(3.0, 3.0, 0.0),
            SimRng::seed_from_u64(seed),
        );
        v.command(Twist::new(vx, wz));
        for _ in 0..400 {
            v.step(&w, Duration::from_millis(50));
            let p = v.true_pose().position();
            prop_assert!(!w.collides_disc(p, v.config().radius * 0.9),
                "vehicle inside wall at {p:?}");
        }
    }

    #[test]
    fn vehicle_speed_never_exceeds_limits(
        vx in -1.0f64..1.0, wz in -5.0f64..5.0,
    ) {
        let w = WorldBuilder::new(6.0, 6.0, 0.05).walls().build();
        let cfg = VehicleConfig::default();
        let (ml, ma) = (cfg.max_linear, cfg.max_angular);
        let mut v = Vehicle::new(cfg, Pose2D::new(3.0, 3.0, 0.0), SimRng::seed_from_u64(1));
        v.command(Twist::new(vx, wz));
        for _ in 0..100 {
            let t = v.step(&w, Duration::from_millis(20));
            prop_assert!(t.linear.abs() <= ml + 1e-9);
            prop_assert!(t.angular.abs() <= ma + 1e-9);
        }
    }

    #[test]
    fn exec_time_monotone_in_work(
        serial in 0.0f64..1e9, par in 0.0f64..1e10, threads in 1u32..16,
    ) {
        let p = Platform::edge_gateway();
        let w1 = Work::with_parallel(serial, par, 100);
        let w2 = Work::with_parallel(serial * 2.0 + 1.0, par * 2.0 + 1.0, 100);
        prop_assert!(p.exec_time(&w2, threads) >= p.exec_time(&w1, threads));
    }

    #[test]
    fn exec_time_positive_for_nonzero_work(cycles in 1.0f64..1e10, threads in 1u32..32) {
        for p in [Platform::turtlebot3(), Platform::edge_gateway(), Platform::cloud_server()] {
            let t = p.exec_time(&Work::serial(cycles), threads);
            prop_assert!(t > lgv_types::Duration::ZERO);
        }
    }

    #[test]
    fn best_threads_is_optimal(serial in 0.0f64..1e8, par in 0.0f64..1e9, items in 1u32..256) {
        let p = Platform::cloud_server();
        let w = Work::with_parallel(serial, par, items);
        let best = p.best_threads(&w);
        let t_best = p.exec_time(&w, best);
        for t in [1u32, 2, 4, 8, 16, 24, 48] {
            prop_assert!(t_best <= p.exec_time(&w, t));
        }
    }

    #[test]
    fn motor_power_nonnegative_and_bounded(v in -1.0f64..1.0, a in -5.0f64..5.0) {
        let m = LgvProfile::turtlebot3().motor_model();
        let p = m.power(v, a);
        prop_assert!(p >= 0.0 && p <= m.max_w);
    }

    #[test]
    fn transmit_energy_linear_in_bytes(bytes in 1usize..100_000, rate in 1e3f64..1e9) {
        let t = TransmitModel { power_w: 1.3 };
        let e1 = t.energy(bytes, rate);
        let e2 = t.energy(bytes * 2, rate);
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.max(1.0));
    }

    #[test]
    fn battery_drain_conserves(cap in 0.1f64..100.0, drains in proptest::collection::vec(0.0f64..1000.0, 0..20)) {
        let mut b = Battery::new_wh(cap);
        let total_cap = cap * 3600.0;
        for d in &drains {
            b.drain(*d);
        }
        let spent: f64 = drains.iter().sum::<f64>().min(total_cap);
        prop_assert!((b.remaining_j() - (total_cap - spent)).abs() < 1e-6);
    }

    #[test]
    fn lidar_ranges_within_bounds(seed in 0u64..100, x in 1.0f64..9.0, y in 1.0f64..9.0) {
        let w = WorldBuilder::new(10.0, 10.0, 0.05).walls()
            .rect(Point2::new(4.0, 4.0), Point2::new(5.0, 5.0)).build();
        let mut l = Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(seed));
        if w.collides_disc(Point2::new(x, y), 0.2) {
            return Ok(());
        }
        let s = l.scan(&w, Pose2D::new(x, y, 0.3), SimTime::EPOCH);
        prop_assert_eq!(s.len(), 360);
        prop_assert!(s.ranges.iter().all(|&r| (0.0..=3.5).contains(&r)));
    }
}
