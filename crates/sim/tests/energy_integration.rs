//! Integration of the Eq. 1 energy models with the ledger: the
//! component models must compose into the totals Fig. 13 reports.

use lgv_sim::energy::{Component, EnergyLedger};
use lgv_sim::platform::Platform;
use lgv_sim::power::{LgvProfile, TransmitModel};
use lgv_sim::Battery;
use lgv_types::prelude::*;

#[test]
fn stationary_minute_is_exactly_the_hotel_load() {
    // A parked Turtlebot3 with motors idle: sensor + MCU + EC idle +
    // motor transforming loss, integrated over one minute.
    let profile = LgvProfile::turtlebot3();
    let platform = Platform::turtlebot3();
    let ec = profile.compute_model(&platform);
    let motor = profile.motor_model();
    let mut ledger = EnergyLedger::new();
    let dt = Duration::from_millis(100);
    for _ in 0..600 {
        ledger.add_power(Component::Sensor, profile.max_power.sensor, dt);
        ledger.add_power(
            Component::Microcontroller,
            profile.max_power.microcontroller,
            dt,
        );
        ledger.add_power(Component::EmbeddedComputer, ec.idle_w, dt);
        ledger.add_power(Component::Motor, motor.power(0.0, 0.0), dt);
    }
    let expected =
        (profile.max_power.sensor + profile.max_power.microcontroller + ec.idle_w + motor.loss_w)
            * 60.0;
    assert!(
        (ledger.total_joules() - expected).abs() < 1e-6,
        "hotel load: {} vs {expected}",
        ledger.total_joules()
    );
}

#[test]
fn full_compute_minute_matches_table1_maximum() {
    // One minute of flat-out computation on all four cores draws the
    // Table I embedded-computer maximum (that is the calibration).
    let profile = LgvProfile::turtlebot3();
    let platform = Platform::turtlebot3();
    let ec = profile.compute_model(&platform);
    let cycles_per_minute = platform.rate() * platform.cores as f64 * 60.0;
    let joules = ec.dynamic_energy(cycles_per_minute) + ec.idle_energy(60.0);
    let expected = profile.max_power.embedded_computer * 60.0;
    assert!((joules - expected).abs() < 1e-6, "{joules} vs {expected}");
}

#[test]
fn motor_energy_scales_with_distance_not_speed() {
    // Eq. 1d at constant cruise: P = P_l + m g μ v, so the *motion*
    // term integrates to m·g·μ·distance regardless of the speed it is
    // driven at — the paper's explanation for why offloading barely
    // changes motor energy (§VIII-D).
    let motor = LgvProfile::turtlebot3().motor_model();
    let distance = 10.0;
    let energy_at = |v: f64| {
        let secs = distance / v;
        let p_motion = motor.power(v, 0.0) - motor.loss_w;
        p_motion * secs
    };
    let slow = energy_at(0.1);
    let fast = energy_at(0.5);
    assert!(
        (slow - fast).abs() < 1e-9,
        "motion energy must depend on distance only: {slow} vs {fast}"
    );
}

#[test]
fn transmission_energy_is_negligible_at_mission_scale() {
    // Eq. 1b with the paper's numbers: 2.94 KB scans at 5 Hz for a
    // 60 s mission over a 20 Mb/s uplink.
    let t = TransmitModel { power_w: 1.3 };
    let per_scan = t.energy(2940, 20e6);
    let mission = per_scan * 5.0 * 60.0;
    // Fractions of a joule over a mission that burns hundreds.
    assert!(mission < 1.0, "wireless energy {mission} J");
}

#[test]
fn battery_runtime_matches_ledger_drain() {
    // Draining the ledger's joules from the pack matches the runtime
    // estimate for the equivalent constant power.
    let profile = LgvProfile::turtlebot3();
    let mut battery = Battery::new_wh(profile.battery_wh);
    let mut ledger = EnergyLedger::new();
    let watts = 11.0;
    let span = Duration::from_secs(600);
    ledger.add_power(Component::EmbeddedComputer, watts, span);
    battery.drain(ledger.total_joules());
    let remaining_runtime = battery.runtime_at(watts);
    let full_runtime = Battery::new_wh(profile.battery_wh).runtime_at(watts);
    assert!(
        ((full_runtime - remaining_runtime) - 600.0).abs() < 1.0,
        "600 s of draw should cost 600 s of runtime: {}",
        full_runtime - remaining_runtime
    );
}

#[test]
fn offloading_saves_exactly_the_migrated_cycles() {
    // The ledger view of fine-grained migration: moving L cycles off
    // the vehicle saves k·L·f² joules (Eq. 1c), nothing more or less.
    let profile = LgvProfile::turtlebot3();
    let platform = Platform::turtlebot3();
    let ec = profile.compute_model(&platform);
    let total_cycles = 50.0e9;
    let migrated = 35.0e9;

    let mut local = EnergyLedger::new();
    local.add(Component::EmbeddedComputer, ec.dynamic_energy(total_cycles));
    let mut offloaded = EnergyLedger::new();
    offloaded.add(
        Component::EmbeddedComputer,
        ec.dynamic_energy(total_cycles - migrated),
    );

    let saved = local.total_joules() - offloaded.total_joules();
    assert!((saved - ec.dynamic_energy(migrated)).abs() < 1e-9);
}
