//! Property-based tests for the SLAM stack: map-update invariants,
//! scan-matcher behaviour, and filter conservation laws.

use lgv_slam::map::OccupancyGrid;
use lgv_slam::motion::{MotionModel, MotionNoise};
use lgv_slam::pool::ParallelExecutor;
use lgv_slam::scan_match::ScanMatcher;
use lgv_slam::{GMapping, SlamConfig};
use lgv_types::prelude::*;
use proptest::prelude::*;
use std::f64::consts::PI;

fn box_scan(pose: Pose2D, beams: usize) -> LaserScan {
    let (xmin, xmax, ymin, ymax) = (0.5, 7.5, 0.5, 7.5);
    let inc = 2.0 * PI / beams as f64;
    let ranges = (0..beams)
        .map(|i| {
            let a = pose.theta + i as f64 * inc;
            let (c, s) = (a.cos(), a.sin());
            let tx = if c > 1e-12 {
                (xmax - pose.x) / c
            } else if c < -1e-12 {
                (xmin - pose.x) / c
            } else {
                f64::INFINITY
            };
            let ty = if s > 1e-12 {
                (ymax - pose.y) / s
            } else if s < -1e-12 {
                (ymin - pose.y) / s
            } else {
                f64::INFINITY
            };
            tx.min(ty).min(3.5)
        })
        .collect();
    LaserScan {
        stamp: SimTime::EPOCH,
        angle_min: 0.0,
        angle_increment: inc,
        range_max: 3.5,
        ranges,
    }
}

proptest! {
    #[test]
    fn occupancy_probabilities_stay_valid(
        px in 1.5f64..6.5, py in 1.5f64..6.5, th in -PI..PI, repeats in 1usize..6,
    ) {
        let dims = GridDims::new(160, 160, 0.05, Point2::ORIGIN);
        let mut map = OccupancyGrid::new(dims);
        let pose = Pose2D::new(px, py, th);
        let scan = box_scan(pose, 90);
        let mut meter = WorkMeter::new();
        for _ in 0..repeats {
            map.integrate_scan(pose, &scan, &mut meter);
        }
        for col in (0..160).step_by(7) {
            for row in (0..160).step_by(7) {
                let p = map.occ_prob(GridIndex::new(col, row));
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn sensor_origin_cell_is_never_occupied(
        px in 1.5f64..6.5, py in 1.5f64..6.5, repeats in 2usize..6,
    ) {
        let dims = GridDims::new(160, 160, 0.05, Point2::ORIGIN);
        let mut map = OccupancyGrid::new(dims);
        let pose = Pose2D::new(px, py, 0.0);
        let scan = box_scan(pose, 90);
        let mut meter = WorkMeter::new();
        for _ in 0..repeats {
            map.integrate_scan(pose, &scan, &mut meter);
        }
        // The robot stands in free space; repeated integration must
        // never mark its own cell occupied.
        prop_assert!(!map.is_occupied(dims.world_to_grid(pose.position())));
    }

    #[test]
    fn scan_matcher_score_is_maximal_near_truth(
        dx in -0.15f64..0.15, dy in -0.15f64..0.15,
    ) {
        prop_assume!(dx.abs() + dy.abs() > 0.08);
        let dims = GridDims::new(160, 160, 0.05, Point2::ORIGIN);
        let mut map = OccupancyGrid::new(dims);
        let truth = Pose2D::new(4.0, 4.0, 0.0);
        let scan = box_scan(truth, 180);
        let mut meter = WorkMeter::new();
        for _ in 0..4 {
            map.integrate_scan(truth, &scan, &mut meter);
        }
        let sm = ScanMatcher::default();
        let (s_true, _) = sm.score(&map, truth, &scan);
        let (s_off, _) =
            sm.score(&map, Pose2D::new(truth.x + dx, truth.y + dy, 0.0), &scan);
        prop_assert!(s_true >= s_off, "true {s_true} vs offset {s_off}");
    }

    #[test]
    fn motion_model_is_finite(
        dx in -0.5f64..0.5, dy in -0.5f64..0.5, dth in -1.0f64..1.0, seed in 0u64..100,
    ) {
        let m = MotionModel::new(MotionNoise::default());
        let mut rng = SimRng::seed_from_u64(seed);
        let q = m.sample(Pose2D::new(1.0, 1.0, 0.3), Pose2D::new(dx, dy, dth), &mut rng);
        prop_assert!(q.x.is_finite() && q.y.is_finite() && q.theta.is_finite());
        prop_assert!(q.theta > -PI && q.theta <= PI);
    }

    #[test]
    fn executor_chunk_results_cover_input(threads in 1usize..9, n in 0usize..200) {
        let ex = ParallelExecutor::new(threads);
        let mut items: Vec<u64> = (0..n as u64).collect();
        let sums = ex.run_chunks(&mut items, |c| c.iter().sum::<u64>());
        prop_assert_eq!(
            sums.iter().sum::<u64>(),
            (0..n as u64).sum::<u64>()
        );
    }

    #[test]
    fn slam_update_work_is_positive_and_mostly_parallel(
        particles in 2usize..12, seed in 0u64..50,
    ) {
        let cfg = SlamConfig {
            num_particles: particles,
            threads: 1,
            map_dims: GridDims::new(160, 160, 0.05, Point2::ORIGIN),
            ..SlamConfig::default()
        };
        let start = Pose2D::new(4.0, 4.0, 0.0);
        let mut slam = GMapping::new(cfg, start, SimRng::seed_from_u64(seed));
        let odom = OdometryMsg { stamp: SimTime::EPOCH, pose: start, twist: Twist::STOP };
        // First update builds maps; second does real matching.
        slam.process(&odom, &box_scan(start, 90));
        let out = slam.process(&odom, &box_scan(start, 90));
        prop_assert!(out.work.total_cycles() > 0.0);
        prop_assert!(out.work.parallel_fraction() > 0.5);
        prop_assert_eq!(out.work.parallel_items as usize, particles);
        prop_assert!(out.neff >= 1.0 - 1e-9);
        prop_assert!(out.neff <= particles as f64 + 1e-9);
    }

    #[test]
    fn slam_thread_count_does_not_change_estimates(
        threads in 2usize..6, seed in 0u64..30,
    ) {
        let mk = |threads: usize| {
            let cfg = SlamConfig {
                num_particles: 6,
                threads,
                map_dims: GridDims::new(160, 160, 0.05, Point2::ORIGIN),
                ..SlamConfig::default()
            };
            let start = Pose2D::new(4.0, 4.0, 0.0);
            let mut slam = GMapping::new(cfg, start, SimRng::seed_from_u64(seed));
            let mut pose = start;
            for i in 0..4 {
                let odom = OdometryMsg {
                    stamp: SimTime::EPOCH + Duration::from_millis(200 * i),
                    pose,
                    twist: Twist::STOP,
                };
                slam.process(&odom, &box_scan(pose, 90));
                pose = Pose2D::new(pose.x + 0.03, pose.y, 0.0);
            }
            slam.best_pose()
        };
        prop_assert_eq!(mk(1), mk(threads));
    }
}
