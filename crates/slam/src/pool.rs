//! Fork-join executor for particle-parallel work (paper Fig. 6).
//!
//! The paper's cloud acceleration spins up a thread pool of `N`
//! threads and hands each a slice of `M/N` particles. We implement the
//! same structure with `crossbeam`'s scoped threads: safe borrowing of
//! the particle array, disjoint `&mut` chunks, no `'static` bounds.
//! Thread count 1 short-circuits to inline execution so the
//! single-thread baseline pays no dispatch cost (mirroring the
//! platform timing model in `lgv-sim`).
//!
//! The executor is also the profiler's fork-join seam: when wall-clock
//! profiling is collecting (`lgv_trace::prof`), each worker's scope
//! tree is harvested after its chunk completes and grafted under the
//! *calling* thread's current scope in chunk order — so parallel
//! kernels are attributed to the call path that forked them, and the
//! merged tree is identical for any thread count.

use lgv_trace::prof;

/// A fork-join executor with a fixed parallelism degree.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// Executor using `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// Configured parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, splitting the slice into contiguous
    /// chunks across the worker threads. Returns one result per chunk
    /// (e.g. per-chunk work tallies) in chunk order.
    pub fn run_chunks<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut [T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let n = self.threads.min(items.len());
        if n == 1 {
            return vec![f(items)];
        }
        let chunk = items.len().div_ceil(n);
        let mut results: Vec<Option<(R, prof::ProfileTree)>> = Vec::new();
        results.resize_with(items.len().div_ceil(chunk), || None);

        crossbeam::thread::scope(|scope| {
            for (slot, part) in results.iter_mut().zip(items.chunks_mut(chunk)) {
                let f = &f;
                scope.spawn(move |_| {
                    let r = f(part);
                    // Harvest this worker's profile alongside its
                    // result (an empty tree when not collecting).
                    *slot = Some((r, prof::take_thread()));
                });
            }
        })
        .expect("worker thread panicked");

        results
            .into_iter()
            .map(|r| {
                let (r, tree) = r.expect("all chunks complete");
                // Graft in deterministic chunk order under the caller's
                // current scope (no-op for empty trees).
                prof::absorb(&tree);
                r
            })
            .collect()
    }

    /// Map every item to a value in parallel, preserving order.
    pub fn map<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let per_chunk =
            self.run_chunks(items, |chunk| chunk.iter_mut().map(&f).collect::<Vec<R>>());
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_inline() {
        let ex = ParallelExecutor::new(1);
        let mut v = vec![1, 2, 3];
        let r = ex.run_chunks(&mut v, |c| c.iter().sum::<i32>());
        assert_eq!(r, vec![6]);
    }

    #[test]
    fn chunks_cover_all_items_once() {
        let ex = ParallelExecutor::new(4);
        let mut v: Vec<u64> = (0..1000).collect();
        let partials = ex.run_chunks(&mut v, |c| c.iter().sum::<u64>());
        assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
        assert_eq!(partials.len(), 4);
    }

    #[test]
    fn mutations_are_applied() {
        let ex = ParallelExecutor::new(3);
        let mut v: Vec<i64> = (0..100).collect();
        ex.run_chunks(&mut v, |c| {
            for x in c.iter_mut() {
                *x *= 2;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as i64));
    }

    #[test]
    fn map_preserves_order() {
        let ex = ParallelExecutor::new(4);
        let mut v: Vec<u32> = (0..57).collect();
        let out = ex.map(&mut v, |x| *x * 10);
        assert_eq!(out, (0..57).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let ex = ParallelExecutor::new(16);
        let mut v = vec![5u8, 6];
        let r = ex.map(&mut v, |x| *x + 1);
        assert_eq!(r, vec![6, 7]);
    }

    #[test]
    fn empty_input_is_noop() {
        let ex = ParallelExecutor::new(4);
        let mut v: Vec<u8> = vec![];
        let r: Vec<u8> = ex.map(&mut v, |x| *x);
        assert!(r.is_empty());
    }

    #[test]
    fn worker_profiles_merge_under_caller_scope() {
        // Only meaningful when the profiler is compiled in (workspace
        // builds get it via lgv-bench's default features).
        if !prof::is_available() {
            return;
        }
        let _ = prof::take_thread();
        prof::set_enabled(true);
        let ex = ParallelExecutor::new(4);
        let mut v: Vec<u64> = (0..64).collect();
        {
            let _job = prof::scope("job");
            ex.run_chunks(&mut v, |c| {
                let _k = prof::scope("kernel");
                c.iter().sum::<u64>()
            });
        }
        prof::set_enabled(false);
        let tree = prof::take_thread();
        // Expect job -> kernel with one kernel visit per chunk,
        // regardless of which worker ran which chunk.
        let job = tree.children_sorted(0)[0];
        assert_eq!(tree.nodes()[job].name, "job");
        let kernel = tree.nodes()[job].children[0];
        assert_eq!(tree.path(kernel), "job;kernel");
        assert_eq!(tree.nodes()[kernel].count, 4, "one visit per chunk");
    }

    #[test]
    fn parallel_equals_serial_result() {
        let serial = ParallelExecutor::new(1);
        let parallel = ParallelExecutor::new(8);
        let mut a: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let mut b = a.clone();
        let ra = serial.map(&mut a, |x| x.sin());
        let rb = parallel.map(&mut b, |x| x.sin());
        assert_eq!(ra, rb);
    }
}
