//! # lgv-slam
//!
//! A from-scratch GMapping-style SLAM stack (Grisetti et al., ICRA'05):
//! a Rao-Blackwellized particle filter where each particle carries a
//! pose hypothesis and its own occupancy-grid map.
//!
//! * [`map`] — log-odds occupancy grids with ray-carving scan
//!   integration.
//! * [`motion`] — the odometry motion model (Thrun et al., chapter 5).
//! * [`scan_match`] — hill-climbing scan-to-map matching, the
//!   `scanMatch` function that consumes 98 % of SLAM compute in the
//!   paper's measurements (§V).
//! * [`pool`] — a crossbeam-based fork-join executor used to
//!   parallelize `scanMatch` across particles (paper Fig. 6).
//! * [`rbpf`] — the filter itself: propagate → scanMatch → weight →
//!   `updateTreeWeights` → resample, with full cycle-level work
//!   accounting for the platform model.

//! ## Example
//!
//! ```
//! use lgv_slam::{GMapping, SlamConfig};
//! use lgv_types::prelude::*;
//!
//! // A small filter over a 8 × 8 m area.
//! let cfg = SlamConfig {
//!     num_particles: 5,
//!     threads: 2,
//!     map_dims: GridDims::new(160, 160, 0.05, Point2::ORIGIN),
//!     ..SlamConfig::default()
//! };
//! let start = Pose2D::new(4.0, 4.0, 0.0);
//! let mut slam = GMapping::new(cfg, start, SimRng::seed_from_u64(1));
//!
//! // Feed one odometry + scan pair (a synthetic square room).
//! let beams = 90;
//! let scan = LaserScan {
//!     stamp: SimTime::EPOCH,
//!     angle_min: 0.0,
//!     angle_increment: std::f64::consts::TAU / beams as f64,
//!     range_max: 3.5,
//!     ranges: vec![2.0; beams],
//! };
//! let odom = OdometryMsg { stamp: SimTime::EPOCH, pose: start, twist: Twist::STOP };
//! let out = slam.process(&odom, &scan);
//! assert!(out.work.parallel_fraction() > 0.9); // scanMatch dominates
//! assert!(slam.best_map(SimTime::EPOCH).known_fraction() > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod map;
pub mod motion;
pub mod pool;
pub mod rbpf;
pub mod scan_match;

pub use map::OccupancyGrid;
pub use motion::{MotionModel, MotionNoise};
pub use pool::ParallelExecutor;
pub use rbpf::{GMapping, SlamConfig, SlamOutput};
pub use scan_match::{MatchResult, ScanMatcher, ScanMatcherConfig};
