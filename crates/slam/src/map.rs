//! Log-odds occupancy grid.
//!
//! Each SLAM particle owns one of these. Scan integration carves free
//! space along each beam and reinforces the endpoint cell; queries
//! expose occupancy probability for the scan matcher and export to the
//! wire-format [`MapMsg`].

use lgv_types::prelude::*;

/// Log-odds increment for an observed-occupied cell.
const L_OCC: f32 = 0.9;
/// Log-odds increment for an observed-free cell.
const L_FREE: f32 = -0.35;
/// Clamp bounds keeping cells recoverable.
const L_MIN: f32 = -8.0;
/// Upper clamp bound.
const L_MAX: f32 = 8.0;
/// Threshold above which a cell counts as occupied.
const L_OCC_THRESHOLD: f32 = 0.7;
/// Threshold below which a cell counts as free.
const L_FREE_THRESHOLD: f32 = -0.7;

/// A mutable occupancy-grid map with log-odds cells.
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    dims: GridDims,
    logodds: Vec<f32>,
    /// Count of cells ever touched by an observation.
    observed: usize,
}

impl OccupancyGrid {
    /// Fresh all-unknown grid.
    pub fn new(dims: GridDims) -> Self {
        OccupancyGrid {
            dims,
            logodds: vec![0.0; dims.len()],
            observed: 0,
        }
    }

    /// Grid geometry.
    pub fn dims(&self) -> &GridDims {
        &self.dims
    }

    /// Raw log-odds of a cell (0 = unknown); out of bounds reads 0.
    pub fn logodds(&self, idx: GridIndex) -> f32 {
        if self.dims.contains(idx) {
            self.logodds[self.dims.flat(idx)]
        } else {
            0.0
        }
    }

    /// Occupancy probability of a cell in [0, 1]; unknown = 0.5.
    pub fn occ_prob(&self, idx: GridIndex) -> f64 {
        let l = self.logodds(idx) as f64;
        1.0 / (1.0 + (-l).exp())
    }

    /// Is the cell confidently occupied?
    pub fn is_occupied(&self, idx: GridIndex) -> bool {
        self.logodds(idx) > L_OCC_THRESHOLD
    }

    /// Is the cell confidently free?
    pub fn is_free(&self, idx: GridIndex) -> bool {
        self.logodds(idx) < L_FREE_THRESHOLD
    }

    /// Is the cell still unknown?
    pub fn is_unknown(&self, idx: GridIndex) -> bool {
        !self.is_occupied(idx) && !self.is_free(idx)
    }

    /// Number of cells ever updated.
    pub fn observed_cells(&self) -> usize {
        self.observed
    }

    fn bump(&mut self, idx: GridIndex, delta: f32) {
        if self.dims.contains(idx) {
            let flat = self.dims.flat(idx);
            let old = self.logodds[flat];
            if old == 0.0 {
                self.observed += 1;
            }
            self.logodds[flat] = (old + delta).clamp(L_MIN, L_MAX);
        }
    }

    /// Integrate a laser scan taken from `pose`: carve free space
    /// along every beam, reinforce hit endpoints. Records the cell
    /// updates in `meter` (the dominant map-update cost).
    pub fn integrate_scan(&mut self, pose: Pose2D, scan: &LaserScan, meter: &mut WorkMeter) {
        let origin = pose.position();
        let mut cell_updates = 0u64;
        for i in 0..scan.len() {
            let hit = scan.is_hit(i);
            let endpoint = scan.beam_endpoint(pose, i);
            // Free space up to (but excluding) the endpoint cell.
            let end_cell = self.dims.world_to_grid(endpoint);
            for cell in GridRay::new(&self.dims, origin, endpoint) {
                if cell == end_cell {
                    break;
                }
                self.bump(cell, L_FREE);
                cell_updates += 1;
            }
            if hit {
                self.bump(end_cell, L_OCC);
                cell_updates += 1;
            }
        }
        meter.serial_ops(cell_updates, crate::rbpf::cost::CYCLES_PER_MAP_CELL_UPDATE);
    }

    /// Export as a wire-format occupancy map.
    pub fn to_map_msg(&self, stamp: SimTime) -> MapMsg {
        let cells = self
            .logodds
            .iter()
            .map(|&l| {
                if l > L_OCC_THRESHOLD {
                    MapMsg::OCCUPIED
                } else if l < L_FREE_THRESHOLD {
                    MapMsg::FREE
                } else {
                    MapMsg::UNKNOWN
                }
            })
            .collect();
        MapMsg {
            stamp,
            dims: self.dims,
            cells,
        }
    }

    /// Build a confident grid directly from a ground-truth map message
    /// (used to seed known-map workloads and tests).
    pub fn from_map_msg(msg: &MapMsg) -> Self {
        let logodds = msg
            .cells
            .iter()
            .map(|&c| match c {
                MapMsg::OCCUPIED => L_MAX,
                MapMsg::FREE => L_MIN,
                _ => 0.0,
            })
            .collect();
        let observed = msg.cells.iter().filter(|&&c| c != MapMsg::UNKNOWN).count();
        OccupancyGrid {
            dims: msg.dims,
            logodds,
            observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn dims() -> GridDims {
        GridDims::new(100, 100, 0.05, Point2::ORIGIN)
    }

    fn scan_hitting(range: f64) -> LaserScan {
        LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / 8.0,
            range_max: 3.5,
            ranges: vec![range; 8],
        }
    }

    #[test]
    fn fresh_grid_is_unknown() {
        let g = OccupancyGrid::new(dims());
        let idx = GridIndex::new(50, 50);
        assert!(g.is_unknown(idx));
        assert_eq!(g.occ_prob(idx), 0.5);
        assert_eq!(g.observed_cells(), 0);
    }

    #[test]
    fn integrate_marks_hits_and_clears_path() {
        let mut g = OccupancyGrid::new(dims());
        let pose = Pose2D::new(2.5, 2.5, 0.0);
        let scan = scan_hitting(1.0);
        let mut m = WorkMeter::new();
        // Repeat to exceed the confidence thresholds.
        for _ in 0..3 {
            g.integrate_scan(pose, &scan, &mut m);
        }
        // Endpoint of beam 0 at (3.5, 2.5) should be occupied.
        let hit_cell = g.dims().world_to_grid(Point2::new(3.5, 2.5));
        assert!(g.is_occupied(hit_cell));
        // Mid-ray cell should be free.
        let mid = g.dims().world_to_grid(Point2::new(3.0, 2.5));
        assert!(g.is_free(mid));
        assert!(g.observed_cells() > 0);
        assert!(m.finish().total_cycles() > 0.0);
    }

    #[test]
    fn max_range_beams_clear_but_do_not_mark() {
        let mut g = OccupancyGrid::new(dims());
        let pose = Pose2D::new(2.5, 2.5, 0.0);
        let scan = scan_hitting(3.5); // all out of range
        let mut m = WorkMeter::new();
        for _ in 0..3 {
            g.integrate_scan(pose, &scan, &mut m);
        }
        // No occupied cells anywhere.
        for row in 0..100 {
            for col in 0..100 {
                assert!(!g.is_occupied(GridIndex::new(col, row)));
            }
        }
        // But the path was cleared.
        assert!(g.is_free(g.dims().world_to_grid(Point2::new(3.0, 2.5))));
    }

    #[test]
    fn logodds_clamp_holds() {
        let mut g = OccupancyGrid::new(dims());
        let pose = Pose2D::new(2.5, 2.5, 0.0);
        let scan = scan_hitting(1.0);
        let mut m = WorkMeter::new();
        for _ in 0..200 {
            g.integrate_scan(pose, &scan, &mut m);
        }
        let hit_cell = g.dims().world_to_grid(Point2::new(3.5, 2.5));
        assert!(g.logodds(hit_cell) <= L_MAX);
        let mid = g.dims().world_to_grid(Point2::new(3.0, 2.5));
        assert!(g.logodds(mid) >= L_MIN);
    }

    #[test]
    fn out_of_bounds_reads_are_unknown() {
        let g = OccupancyGrid::new(dims());
        assert_eq!(g.logodds(GridIndex::new(-5, 3)), 0.0);
        assert_eq!(g.occ_prob(GridIndex::new(1000, 1000)), 0.5);
    }

    #[test]
    fn map_msg_roundtrip() {
        let mut g = OccupancyGrid::new(dims());
        let pose = Pose2D::new(2.5, 2.5, 0.0);
        let mut m = WorkMeter::new();
        for _ in 0..3 {
            g.integrate_scan(pose, &scan_hitting(1.0), &mut m);
        }
        let msg = g.to_map_msg(SimTime::EPOCH);
        let g2 = OccupancyGrid::from_map_msg(&msg);
        let hit_cell = g.dims().world_to_grid(Point2::new(3.5, 2.5));
        assert!(g2.is_occupied(hit_cell));
        assert_eq!(g2.dims(), g.dims());
        assert!(msg.known_fraction() > 0.0);
    }
}
