//! Hill-climbing scan-to-map matching.
//!
//! `scanMatch` refines a particle's predicted pose by locally
//! maximizing the likelihood of the current laser scan against the
//! particle's own map. The paper measures that 98 % of SLAM time is
//! spent here (§V), which is why it is the unit the parallel gmapping
//! algorithm distributes across threads.
//!
//! The likelihood of a pose is the sum over (subsampled) hit beams of
//! a small-neighbourhood endpoint score: a beam endpoint landing on an
//! occupied cell scores 1, next to one scores 0.55, elsewhere ~0. The
//! optimizer is a coordinate-descent hill climber with step halving —
//! the same structure GMapping's `ScanMatcher::optimize` uses.

use crate::map::OccupancyGrid;
use lgv_types::prelude::*;

/// Scan-matcher tuning knobs.
#[derive(Debug, Clone)]
pub struct ScanMatcherConfig {
    /// Initial translational step (m).
    pub step_trans: f64,
    /// Initial rotational step (rad).
    pub step_rot: f64,
    /// Number of step-halving refinement levels.
    pub levels: u32,
    /// Use every `beam_skip`-th beam (1 = all beams).
    pub beam_skip: usize,
    /// Score a pose must reach (per used beam) for the match to count
    /// as successful; otherwise the motion prediction is kept.
    pub min_score: f64,
}

impl Default for ScanMatcherConfig {
    fn default() -> Self {
        ScanMatcherConfig {
            step_trans: 0.05,
            step_rot: 0.035,
            levels: 3,
            beam_skip: 2,
            min_score: 0.15,
        }
    }
}

/// Outcome of one scan-match call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// The refined pose (or the prediction if matching failed).
    pub pose: Pose2D,
    /// Final likelihood score (sum over used beams).
    pub score: f64,
    /// Whether the optimizer beat `min_score`.
    pub converged: bool,
    /// Beam-likelihood evaluations performed (the parallel work unit).
    pub beam_evals: u64,
}

/// Precomputed per-scan data for the matcher's inner loop.
///
/// Holds the robot-frame endpoint offset `(r·cos aᵢ, r·sin aᵢ)` of
/// every used hit beam (with `beam_skip` already applied). Scoring a
/// candidate pose then reduces to one rotation + translation per beam
/// — no trig, no re-walking the skip stride, no re-testing `is_hit` —
/// which matters because `optimize` scores dozens of candidate poses
/// against the *same* scan, and the particle filter runs that for
/// every particle. The cache is plain data: build it once per scan and
/// share it read-only across the scan-match worker threads.
#[derive(Debug, Clone, Default)]
pub struct ScanCache {
    /// Robot-frame endpoint offsets of the used hit beams.
    offsets: Vec<(f64, f64)>,
}

impl ScanCache {
    /// Extract the used hit beams of `scan` at the given skip stride.
    pub fn new(scan: &LaserScan, beam_skip: usize) -> Self {
        let skip = beam_skip.max(1);
        let mut offsets = Vec::with_capacity(scan.len() / skip + 1);
        let mut i = 0;
        while i < scan.len() {
            if scan.is_hit(i) {
                let r = scan.ranges[i].min(scan.range_max);
                let (sin_a, cos_a) = scan.beam_angle(i).sin_cos();
                offsets.push((r * cos_a, r * sin_a));
            }
            i += skip;
        }
        ScanCache { offsets }
    }

    /// Number of beams the matcher will evaluate per score call.
    pub fn used_beams(&self) -> u64 {
        self.offsets.len() as u64
    }
}

/// The matcher.
#[derive(Debug, Clone, Default)]
pub struct ScanMatcher {
    cfg: ScanMatcherConfig,
}

impl ScanMatcher {
    /// Build with config.
    pub fn new(cfg: ScanMatcherConfig) -> Self {
        ScanMatcher { cfg }
    }

    /// Configuration.
    pub fn config(&self) -> &ScanMatcherConfig {
        &self.cfg
    }

    /// Likelihood of `scan` observed from `pose` against `map`.
    /// Returns (score, beams_used).
    pub fn score(&self, map: &OccupancyGrid, pose: Pose2D, scan: &LaserScan) -> (f64, u64) {
        self.score_cached(map, pose, &ScanCache::new(scan, self.cfg.beam_skip))
    }

    /// [`ScanMatcher::score`] against a prebuilt [`ScanCache`].
    ///
    /// This is the 98 %-of-SLAM-time inner loop (§V): each cached
    /// robot-frame offset is rotated by the candidate heading (one
    /// `sin_cos` per pose, not per beam) and looked up in the grid.
    pub fn score_cached(&self, map: &OccupancyGrid, pose: Pose2D, cache: &ScanCache) -> (f64, u64) {
        let mut total = 0.0;
        let dims = *map.dims();
        let (sin_th, cos_th) = pose.theta.sin_cos();
        for &(ox, oy) in &cache.offsets {
            let endpoint = Point2::new(
                pose.x + ox * cos_th - oy * sin_th,
                pose.y + ox * sin_th + oy * cos_th,
            );
            let c = dims.world_to_grid(endpoint);
            if map.is_occupied(c) {
                total += 1.0;
            } else {
                // Check the 8-neighbourhood for a near miss.
                let near = c.neighbors8().iter().any(|n| map.is_occupied(*n));
                if near {
                    total += 0.55;
                } else if map.is_unknown(c) {
                    // Unknown terrain is weak evidence either way.
                    total += 0.05;
                }
            }
        }
        (total, cache.used_beams())
    }

    /// Refine `prediction` against `map`. The returned
    /// [`MatchResult::beam_evals`] feeds the SLAM work meter.
    pub fn optimize(
        &self,
        map: &OccupancyGrid,
        prediction: Pose2D,
        scan: &LaserScan,
    ) -> MatchResult {
        self.optimize_cached(map, prediction, &ScanCache::new(scan, self.cfg.beam_skip))
    }

    /// [`ScanMatcher::optimize`] against a prebuilt [`ScanCache`] —
    /// the form the particle filter uses so the cache is built once
    /// per scan and shared across all particle threads.
    pub fn optimize_cached(
        &self,
        map: &OccupancyGrid,
        prediction: Pose2D,
        cache: &ScanCache,
    ) -> MatchResult {
        let mut evals = 0u64;
        let mut best = prediction;
        let (mut best_score, used) = self.score_cached(map, best, cache);
        evals += used;
        if used == 0 {
            return MatchResult {
                pose: prediction,
                score: 0.0,
                converged: false,
                beam_evals: evals,
            };
        }

        let mut dt = self.cfg.step_trans;
        let mut dr = self.cfg.step_rot;
        for _ in 0..self.cfg.levels {
            let mut improved = true;
            while improved {
                improved = false;
                let candidates = [
                    Pose2D::new(best.x + dt, best.y, best.theta),
                    Pose2D::new(best.x - dt, best.y, best.theta),
                    Pose2D::new(best.x, best.y + dt, best.theta),
                    Pose2D::new(best.x, best.y - dt, best.theta),
                    Pose2D::new(best.x, best.y, best.theta + dr),
                    Pose2D::new(best.x, best.y, best.theta - dr),
                ];
                for cand in candidates {
                    let (s, u) = self.score_cached(map, cand, cache);
                    evals += u;
                    if s > best_score {
                        best_score = s;
                        best = cand;
                        improved = true;
                    }
                }
            }
            dt /= 2.0;
            dr /= 2.0;
        }

        let converged = best_score / used as f64 >= self.cfg.min_score;
        MatchResult {
            pose: if converged { best } else { prediction },
            score: best_score,
            converged,
            beam_evals: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Build a map of a square room and a scan consistent with a pose
    /// at its centre.
    fn room_map_and_scan() -> (OccupancyGrid, LaserScan, Pose2D) {
        let dims = GridDims::new(120, 120, 0.05, Point2::ORIGIN);
        let mut map = OccupancyGrid::new(dims);
        let true_pose = Pose2D::new(3.0, 3.0, 0.0);
        // Synthetic room: walls at distance 2 m in all directions is
        // approximated by a scan with constant 2 m ranges; integrate it
        // repeatedly to build the map.
        let beams = 180;
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / beams as f64,
            range_max: 3.5,
            ranges: vec![2.0; beams],
        };
        let mut m = WorkMeter::new();
        for _ in 0..4 {
            map.integrate_scan(true_pose, &scan, &mut m);
        }
        (map, scan, true_pose)
    }

    #[test]
    fn true_pose_scores_high() {
        let (map, scan, pose) = room_map_and_scan();
        let sm = ScanMatcher::default();
        let (s, used) = sm.score(&map, pose, &scan);
        assert!(used > 0);
        assert!(s / used as f64 > 0.8, "per-beam score {}", s / used as f64);
    }

    #[test]
    fn offset_pose_scores_lower() {
        let (map, scan, pose) = room_map_and_scan();
        let sm = ScanMatcher::default();
        let (s_true, _) = sm.score(&map, pose, &scan);
        let off = Pose2D::new(pose.x + 0.3, pose.y - 0.2, pose.theta + 0.1);
        let (s_off, _) = sm.score(&map, off, &scan);
        assert!(s_off < s_true, "true {s_true} vs offset {s_off}");
    }

    #[test]
    fn optimizer_recovers_small_offsets() {
        let (map, scan, pose) = room_map_and_scan();
        let sm = ScanMatcher::default();
        let prediction = Pose2D::new(pose.x + 0.08, pose.y - 0.06, pose.theta + 0.05);
        let r = sm.optimize(&map, prediction, &scan);
        assert!(r.converged);
        let err = r.pose.distance(pose);
        let pred_err = prediction.distance(pose);
        assert!(
            err < pred_err,
            "optimizer should reduce error: {err} vs {pred_err}"
        );
        assert!(err < 0.06, "residual error {err}");
        assert!(r.beam_evals > 0);
    }

    #[test]
    fn fails_gracefully_on_empty_map() {
        let dims = GridDims::new(50, 50, 0.05, Point2::ORIGIN);
        let map = OccupancyGrid::new(dims);
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 0.1,
            range_max: 3.5,
            ranges: vec![1.0; 60],
        };
        let sm = ScanMatcher::default();
        let pred = Pose2D::new(1.25, 1.25, 0.0);
        let r = sm.optimize(&map, pred, &scan);
        assert!(!r.converged);
        assert_eq!(r.pose, pred, "failed match keeps the prediction");
    }

    #[test]
    fn all_misses_scan_cannot_converge() {
        let (map, _, pose) = room_map_and_scan();
        let sm = ScanMatcher::default();
        let scan = LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 0.1,
            range_max: 3.5,
            ranges: vec![3.5; 60], // nothing but max-range returns
        };
        let r = sm.optimize(&map, pose, &scan);
        assert!(!r.converged);
        assert_eq!(r.beam_evals, 0);
    }

    #[test]
    fn beam_skip_reduces_evals() {
        let (map, scan, pose) = room_map_and_scan();
        let all = ScanMatcher::new(ScanMatcherConfig {
            beam_skip: 1,
            ..Default::default()
        });
        let half = ScanMatcher::new(ScanMatcherConfig {
            beam_skip: 2,
            ..Default::default()
        });
        let (_, used_all) = all.score(&map, pose, &scan);
        let (_, used_half) = half.score(&map, pose, &scan);
        assert!(used_half * 2 <= used_all + 1);
    }
}
