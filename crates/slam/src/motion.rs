//! Odometry motion model.
//!
//! The classic sample-based model from *Probabilistic Robotics*
//! (Thrun, Burgard, Fox, ch. 5.4): a relative odometry increment is
//! decomposed into rotation–translation–rotation, each corrupted with
//! noise proportional to the motion magnitudes, then re-composed onto
//! a particle's pose.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Noise coefficients (α₁..α₄ in Thrun's notation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionNoise {
    /// Rotation noise from rotation.
    pub alpha1: f64,
    /// Rotation noise from translation.
    pub alpha2: f64,
    /// Translation noise from translation.
    pub alpha3: f64,
    /// Translation noise from rotation.
    pub alpha4: f64,
}

impl Default for MotionNoise {
    fn default() -> Self {
        MotionNoise {
            alpha1: 0.08,
            alpha2: 0.02,
            alpha3: 0.05,
            alpha4: 0.02,
        }
    }
}

/// Sampling odometry motion model.
#[derive(Debug, Clone)]
pub struct MotionModel {
    noise: MotionNoise,
}

impl MotionModel {
    /// Build with the given noise coefficients.
    pub fn new(noise: MotionNoise) -> Self {
        MotionModel { noise }
    }

    /// Noise parameters.
    pub fn noise(&self) -> MotionNoise {
        self.noise
    }

    /// Sample a new pose given the previous pose and the *relative*
    /// odometry increment (in the previous pose's frame).
    pub fn sample(&self, pose: Pose2D, delta: Pose2D, rng: &mut SimRng) -> Pose2D {
        let trans = (delta.x * delta.x + delta.y * delta.y).sqrt();
        // Decompose into rot1 → trans → rot2.
        let rot1 = if trans < 1e-6 {
            0.0
        } else {
            delta.y.atan2(delta.x)
        };
        let rot2 = normalize_angle(delta.theta - rot1);

        let n = &self.noise;
        let rot1_hat =
            rot1 + rng.gaussian(0.0, (n.alpha1 * rot1.abs() + n.alpha2 * trans).max(1e-9));
        let trans_hat = trans
            + rng.gaussian(
                0.0,
                (n.alpha3 * trans + n.alpha4 * (rot1.abs() + rot2.abs())).max(1e-9),
            );
        let rot2_hat =
            rot2 + rng.gaussian(0.0, (n.alpha1 * rot2.abs() + n.alpha2 * trans).max(1e-9));

        let theta1 = pose.theta + rot1_hat;
        Pose2D::new(
            pose.x + trans_hat * theta1.cos(),
            pose.y + trans_hat * theta1.sin(),
            theta1 + rot2_hat,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_motion_stays_close() {
        let m = MotionModel::new(MotionNoise::default());
        let mut rng = SimRng::seed_from_u64(1);
        let p = Pose2D::new(1.0, 2.0, 0.5);
        for _ in 0..100 {
            let q = m.sample(p, Pose2D::new(0.0, 0.0, 0.0), &mut rng);
            assert!(q.distance(p) < 0.01, "jumped to {q:?}");
        }
    }

    #[test]
    fn mean_motion_matches_delta() {
        let m = MotionModel::new(MotionNoise::default());
        let mut rng = SimRng::seed_from_u64(2);
        let p = Pose2D::new(0.0, 0.0, 0.0);
        let delta = Pose2D::new(0.5, 0.0, 0.1);
        let n = 5000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let q = m.sample(p, delta, &mut rng);
            sx += q.x;
            sy += q.y;
        }
        assert!(
            (sx / n as f64 - 0.5).abs() < 0.01,
            "mean x {}",
            sx / n as f64
        );
        assert!((sy / n as f64).abs() < 0.05, "mean y {}", sy / n as f64);
    }

    #[test]
    fn noise_grows_with_motion() {
        let m = MotionModel::new(MotionNoise::default());
        let spread = |delta: Pose2D, seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let p = Pose2D::new(0.0, 0.0, 0.0);
            let samples: Vec<Pose2D> = (0..2000).map(|_| m.sample(p, delta, &mut rng)).collect();
            let mx = samples.iter().map(|s| s.x).sum::<f64>() / 2000.0;
            (samples.iter().map(|s| (s.x - mx).powi(2)).sum::<f64>() / 2000.0).sqrt()
        };
        let small = spread(Pose2D::new(0.1, 0.0, 0.0), 3);
        let large = spread(Pose2D::new(1.0, 0.0, 0.0), 3);
        assert!(large > small * 2.0, "small {small}, large {large}");
    }

    #[test]
    fn motion_composes_in_local_frame() {
        // Facing +y, a forward delta should move the particle in +y.
        let m = MotionModel::new(MotionNoise {
            alpha1: 0.0,
            alpha2: 0.0,
            alpha3: 0.0,
            alpha4: 0.0,
        });
        let mut rng = SimRng::seed_from_u64(4);
        let p = Pose2D::new(0.0, 0.0, std::f64::consts::FRAC_PI_2);
        let q = m.sample(p, Pose2D::new(0.3, 0.0, 0.0), &mut rng);
        assert!(q.y > 0.29, "{q:?}");
        assert!(q.x.abs() < 0.01);
    }
}
