//! The Rao-Blackwellized particle filter (GMapping).
//!
//! Pipeline per scan (paper Fig. 6):
//!
//! 1. **propagate** every particle through the odometry motion model
//!    (serial, cheap);
//! 2. **scanMatch** every particle against its own map and integrate
//!    the scan — the 98 %-of-compute phase, distributed `M/N` particles
//!    per thread by the [`ParallelExecutor`];
//! 3. **updateTreeWeights** — normalize weights, compute `N_eff`
//!    (serial, main thread);
//! 4. **resample** with the low-variance sampler when `N_eff` drops
//!    below the threshold (serial; clones particle maps).
//!
//! Every phase tallies cycles into a [`Work`] record with the correct
//! serial/parallel split, which is what the platform model in
//! `lgv-sim` prices for Figures 9 and 13.

use crate::map::OccupancyGrid;
use crate::motion::{MotionModel, MotionNoise};
use crate::pool::ParallelExecutor;
use crate::scan_match::{ScanCache, ScanMatcher, ScanMatcherConfig};
use lgv_trace::prof;
use lgv_types::prelude::*;
use lgv_types::rng::low_variance_resample;

/// Cycle-cost constants for SLAM work accounting.
///
/// Calibrated so the default configuration (30 particles, 360-beam
/// LDS-01 at 5 Hz) demands ≈ 3.3 Gcycles/s — the paper's Table II
/// "without a map" Localization (SLAM) figure — with ≈ 98 % of it in
/// `scanMatch`, matching the paper's timestamp measurement (§V).
pub mod cost {
    /// Cycles per beam-likelihood evaluation inside `scanMatch`
    /// (9 grid reads, a world→grid transform, trig). Calibrated so a
    /// 30-particle filter over LDS-01 scans in the lab demands
    /// ≈ 3.3 Gcycles/s at 5 Hz (Table II) — in open rooms roughly half
    /// of all beams are max-range misses that skip evaluation, which
    /// this constant absorbs.
    pub const CYCLES_PER_BEAM_EVAL: f64 = 6000.0;
    /// Cycles per occupancy-grid cell update during scan integration.
    pub const CYCLES_PER_MAP_CELL_UPDATE: f64 = 50.0;
    /// Cycles to draw one motion-model sample.
    pub const CYCLES_PER_MOTION_SAMPLE: f64 = 800.0;
    /// Cycles per particle for weight normalization / N_eff.
    pub const CYCLES_PER_WEIGHT_UPDATE: f64 = 300.0;
    /// Cycles per map cell copied during resampling.
    pub const CYCLES_PER_CELL_COPY: f64 = 1.0;
}

/// Filter configuration.
#[derive(Debug, Clone)]
pub struct SlamConfig {
    /// Particle count `M` (the paper sweeps 10–100 in Fig. 9).
    pub num_particles: usize,
    /// Thread count `N` for the parallel scanMatch (Fig. 6).
    pub threads: usize,
    /// Geometry of each particle's map.
    pub map_dims: GridDims,
    /// Scan-matcher tuning.
    pub matcher: ScanMatcherConfig,
    /// Motion-model noise.
    pub motion: MotionNoise,
    /// Resample when `N_eff < frac · M`.
    pub resample_neff_frac: f64,
    /// Weight-update gain applied to match scores.
    pub score_gain: f64,
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig {
            num_particles: 30,
            threads: 1,
            map_dims: GridDims::new(400, 400, 0.05, Point2::ORIGIN),
            matcher: ScanMatcherConfig::default(),
            motion: MotionNoise::default(),
            resample_neff_frac: 0.5,
            score_gain: 0.05,
        }
    }
}

/// One filter update's outputs.
#[derive(Debug, Clone)]
pub struct SlamOutput {
    /// Best-particle pose estimate.
    pub pose: PoseEstimate,
    /// Cycle demand of this update (serial + parallel split).
    pub work: Work,
    /// Effective sample size after the weight update.
    pub neff: f64,
    /// Whether resampling fired.
    pub resampled: bool,
    /// Best particle's match score.
    pub best_score: f64,
}

#[derive(Debug, Clone)]
struct Particle {
    pose: Pose2D,
    log_weight: f64,
    map: OccupancyGrid,
    rng: SimRng,
}

/// The GMapping filter.
#[derive(Debug)]
pub struct GMapping {
    cfg: SlamConfig,
    particles: Vec<Particle>,
    /// Particles currently participating in the filter (a prefix of
    /// `particles`). Equal to the configured count at full fidelity;
    /// degraded-mode autonomy lowers it via
    /// [`GMapping::set_active_particles`].
    active: usize,
    matcher: ScanMatcher,
    motion: MotionModel,
    executor: ParallelExecutor,
    last_odom: Option<Pose2D>,
    rng: SimRng,
    best: usize,
    /// Scans processed so far.
    pub scans_processed: u64,
    /// Resampling events so far.
    pub resample_count: u64,
}

impl GMapping {
    /// Build a filter with all particles at `start`.
    pub fn new(cfg: SlamConfig, start: Pose2D, mut rng: SimRng) -> Self {
        assert!(cfg.num_particles > 0, "need at least one particle");
        let particles = (0..cfg.num_particles)
            .map(|i| Particle {
                pose: start,
                log_weight: 0.0,
                map: OccupancyGrid::new(cfg.map_dims),
                rng: rng.fork(i as u64),
            })
            .collect();
        let matcher = ScanMatcher::new(cfg.matcher.clone());
        let motion = MotionModel::new(cfg.motion);
        let executor = ParallelExecutor::new(cfg.threads);
        let active = cfg.num_particles;
        GMapping {
            cfg,
            particles,
            active,
            matcher,
            motion,
            executor,
            last_odom: None,
            rng,
            best: 0,
            scans_processed: 0,
            resample_count: 0,
        }
    }

    /// Particle count.
    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// Particles currently participating in the filter.
    pub fn active_particles(&self) -> usize {
        self.active
    }

    /// Set the fidelity knob: run the filter over the first `k`
    /// particles only (clamped to `1..=num_particles`). Shrinking
    /// keeps the best particle; growing back re-seeds the reactivated
    /// slots from the current best particle (their own state is stale)
    /// with re-forked RNGs so they diverge again. At `k ==
    /// num_particles` from construction the filter is untouched.
    pub fn set_active_particles(&mut self, k: usize) {
        let k = k.clamp(1, self.particles.len());
        if k == self.active {
            return;
        }
        if k < self.active {
            if self.best >= k {
                self.particles.swap(0, self.best);
                self.best = 0;
            }
        } else {
            let best = self.particles[self.best].clone();
            for slot in self.active..k {
                let mut p = best.clone();
                p.log_weight = 0.0;
                p.rng = self.rng.fork(slot as u64);
                self.particles[slot] = p;
            }
        }
        self.active = k;
    }

    /// Change the parallelism degree at runtime (the Controller does
    /// this when migrating the node between platforms).
    pub fn set_threads(&mut self, threads: usize) {
        self.executor = ParallelExecutor::new(threads);
    }

    /// Current best-particle pose.
    pub fn best_pose(&self) -> Pose2D {
        self.particles[self.best].pose
    }

    /// Current best-particle map.
    pub fn best_map(&self, stamp: SimTime) -> MapMsg {
        self.particles[self.best].map.to_map_msg(stamp)
    }

    /// Direct access to the best particle's grid (for costmap seeding).
    pub fn best_grid(&self) -> &OccupancyGrid {
        &self.particles[self.best].map
    }

    /// Process one odometry + scan pair.
    pub fn process(&mut self, odom: &OdometryMsg, scan: &LaserScan) -> SlamOutput {
        let delta = match self.last_odom {
            Some(last) => last.between(odom.pose),
            None => Pose2D::default(),
        };
        self.last_odom = Some(odom.pose);
        self.scans_processed += 1;

        let m = self.active;
        let mut meter = WorkMeter::new();

        // 1. Propagate (serial).
        {
            let _prof = prof::scope("slam/propagate");
            for p in &mut self.particles[..m] {
                p.pose = self.motion.sample(p.pose, delta, &mut p.rng);
            }
        }
        meter.serial_ops(m as u64, cost::CYCLES_PER_MOTION_SAMPLE);

        // 2. Parallel scanMatch + map integration (Fig. 6: each thread
        //    handles M/N particles). The scan-dependent part of the
        //    matcher's inner loop (hit filtering, skip stride, beam
        //    trig) is hoisted into a ScanCache built once per scan and
        //    shared read-only across all particle threads.
        let matcher = &self.matcher;
        let cache = {
            let _prof = prof::scope("slam/scan_cache");
            ScanCache::new(scan, self.cfg.matcher.beam_skip)
        };
        let cache = &cache;
        let gain = self.cfg.score_gain;
        let _prof_match = prof::scope("slam/scan_match");
        let chunk_stats = self.executor.run_chunks(&mut self.particles[..m], |chunk| {
            let mut beam_evals = 0u64;
            let mut map_cycles = 0.0f64;
            let mut best_local = f64::NEG_INFINITY;
            for p in chunk.iter_mut() {
                let r = {
                    let _prof = prof::scope("slam/particle_score");
                    matcher.optimize_cached(&p.map, p.pose, cache)
                };
                p.pose = r.pose;
                p.log_weight += r.score * gain;
                best_local = best_local.max(r.score);
                beam_evals += r.beam_evals;
                let mut local = WorkMeter::new();
                {
                    let _prof = prof::scope("slam/map_integrate");
                    p.map.integrate_scan(p.pose, scan, &mut local);
                }
                map_cycles += local.finish().total_cycles();
            }
            (beam_evals, map_cycles, best_local)
        });
        drop(_prof_match);
        let total_evals: u64 = chunk_stats.iter().map(|c| c.0).sum();
        let total_map_cycles: f64 = chunk_stats.iter().map(|c| c.1).sum();
        let best_score = chunk_stats
            .iter()
            .map(|c| c.2)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        meter.parallel_ops(total_evals, cost::CYCLES_PER_BEAM_EVAL, m as u32);
        meter.parallel_ops(1, total_map_cycles, m as u32);

        // 3. updateTreeWeights (serial, main thread).
        let (weights, neff) = {
            let _prof = prof::scope("slam/weights");
            self.update_tree_weights()
        };
        meter.serial_ops(m as u64, cost::CYCLES_PER_WEIGHT_UPDATE);

        // 4. Resample (serial, main thread).
        let resampled = neff < self.cfg.resample_neff_frac * m as f64;
        if resampled {
            let _prof = prof::scope("slam/resample");
            let copied_cells = self.resample(&weights);
            self.resample_count += 1;
            meter.serial_ops(copied_cells, cost::CYCLES_PER_CELL_COPY);
        }

        // Best particle by weight (among the active prefix).
        self.best = self.particles[..m]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.log_weight.total_cmp(&b.1.log_weight))
            .map(|(i, _)| i)
            .unwrap_or(0);

        let confidence = (neff / m as f64).clamp(0.0, 1.0);
        SlamOutput {
            pose: PoseEstimate {
                stamp: scan.stamp,
                pose: self.best_pose(),
                confidence,
            },
            work: meter.finish(),
            neff,
            resampled,
            best_score,
        }
    }

    /// Normalize log-weights into linear weights; returns the weights
    /// and the effective sample size `N_eff = 1 / Σ wᵢ²`.
    fn update_tree_weights(&mut self) -> (Vec<f64>, f64) {
        let active = &self.particles[..self.active];
        let max_lw = active
            .iter()
            .map(|p| p.log_weight)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut weights: Vec<f64> = active
            .iter()
            .map(|p| (p.log_weight - max_lw).exp())
            .collect();
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            let u = 1.0 / weights.len() as f64;
            weights.iter_mut().for_each(|w| *w = u);
        } else {
            weights.iter_mut().for_each(|w| *w /= sum);
        }
        let neff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        (weights, neff)
    }

    /// Low-variance resampling; returns the number of map cells copied
    /// (the dominant resampling cost in real gmapping).
    fn resample(&mut self, weights: &[f64]) -> u64 {
        let m = self.active;
        // Inactive particles sit out the resample untouched.
        let tail = self.particles.split_off(m);
        let picks = low_variance_resample(&mut self.rng, weights, m);
        let mut copied = 0u64;
        let mut new_particles: Vec<Particle> = picks
            .iter()
            .enumerate()
            .map(|(slot, &i)| {
                copied += self.particles[i].map.dims().len() as u64;
                let mut p = self.particles[i].clone();
                p.log_weight = 0.0;
                // Re-fork the RNG so duplicated particles diverge.
                p.rng = self.rng.fork(slot as u64);
                p
            })
            .collect();
        new_particles.extend(tail);
        self.particles = new_particles;
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small_cfg(particles: usize, threads: usize) -> SlamConfig {
        SlamConfig {
            num_particles: particles,
            threads,
            map_dims: GridDims::new(160, 160, 0.05, Point2::ORIGIN),
            ..Default::default()
        }
    }

    /// A synthetic "room" scan: constant-range walls all around.
    /// Only valid for a *stationary* robot (the scan is independent of
    /// position); moving tests use [`room_scan`].
    fn scan_at(stamp_ms: u64, range: f64) -> LaserScan {
        let beams = 120;
        LaserScan {
            stamp: SimTime::EPOCH + Duration::from_millis(stamp_ms),
            angle_min: 0.0,
            angle_increment: 2.0 * PI / beams as f64,
            range_max: 3.5,
            ranges: vec![range; beams],
        }
    }

    /// Exact ranges from `pose` to the walls of a fixed box room
    /// `[1,6] × [1.5,6.5]` — a position-dependent scan stream, like a
    /// real environment.
    fn room_scan(stamp_ms: u64, pose: Pose2D) -> LaserScan {
        let (xmin, xmax, ymin, ymax) = (1.0, 6.0, 1.5, 6.5);
        let beams = 120;
        let inc = 2.0 * PI / beams as f64;
        let ranges = (0..beams)
            .map(|i| {
                let a = pose.theta + i as f64 * inc;
                let (c, s) = (a.cos(), a.sin());
                let tx = if c > 1e-12 {
                    (xmax - pose.x) / c
                } else if c < -1e-12 {
                    (xmin - pose.x) / c
                } else {
                    f64::INFINITY
                };
                let ty = if s > 1e-12 {
                    (ymax - pose.y) / s
                } else if s < -1e-12 {
                    (ymin - pose.y) / s
                } else {
                    f64::INFINITY
                };
                tx.min(ty).min(3.5)
            })
            .collect();
        LaserScan {
            stamp: SimTime::EPOCH + Duration::from_millis(stamp_ms),
            angle_min: 0.0,
            angle_increment: inc,
            range_max: 3.5,
            ranges,
        }
    }

    fn odom_at(stamp_ms: u64, pose: Pose2D) -> OdometryMsg {
        OdometryMsg {
            stamp: SimTime::EPOCH + Duration::from_millis(stamp_ms),
            pose,
            twist: Twist::STOP,
        }
    }

    #[test]
    fn first_update_builds_a_map() {
        let mut slam = GMapping::new(
            small_cfg(5, 1),
            Pose2D::new(4.0, 4.0, 0.0),
            SimRng::seed_from_u64(1),
        );
        let out = slam.process(&odom_at(0, Pose2D::new(4.0, 4.0, 0.0)), &scan_at(0, 2.0));
        assert_eq!(slam.scans_processed, 1);
        assert!(out.work.total_cycles() > 0.0);
        assert!(out.work.parallel_fraction() > 0.9, "scanMatch dominates");
        let map = slam.best_map(SimTime::EPOCH);
        assert!(map.known_fraction() > 0.0);
    }

    #[test]
    fn stationary_robot_keeps_pose() {
        let start = Pose2D::new(4.0, 4.0, 0.0);
        let mut slam = GMapping::new(small_cfg(10, 1), start, SimRng::seed_from_u64(2));
        for k in 0..8 {
            slam.process(&odom_at(k * 200, start), &scan_at(k * 200, 2.0));
        }
        let err = slam.best_pose().distance(start);
        assert!(err < 0.15, "pose drifted {err} m while stationary");
    }

    #[test]
    fn tracks_odometry_motion() {
        // The robot steps forward 5 cm per scan; SLAM should follow.
        let mut slam = GMapping::new(
            small_cfg(10, 1),
            Pose2D::new(3.0, 4.0, 0.0),
            SimRng::seed_from_u64(3),
        );
        let mut pose = Pose2D::new(3.0, 4.0, 0.0);
        for k in 0..10 {
            slam.process(&odom_at(k * 200, pose), &room_scan(k * 200, pose));
            pose = Pose2D::new(pose.x + 0.05, pose.y, 0.0);
        }
        // Final odom pose was 3.45; estimate within tolerance.
        let est = slam.best_pose();
        assert!((est.x - 3.45).abs() < 0.25, "x = {}", est.x);
        assert!((est.y - 4.0).abs() < 0.2, "y = {}", est.y);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // scanMatch is deterministic per particle and motion noise uses
        // per-particle RNGs, so thread count must not change results.
        let run = |threads: usize| {
            let mut slam = GMapping::new(
                small_cfg(8, threads),
                Pose2D::new(4.0, 4.0, 0.0),
                SimRng::seed_from_u64(7),
            );
            let mut pose = Pose2D::new(4.0, 4.0, 0.0);
            for k in 0..5 {
                slam.process(&odom_at(k * 200, pose), &scan_at(k * 200, 2.0));
                pose = Pose2D::new(pose.x + 0.04, pose.y, 0.0);
            }
            slam.best_pose()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn work_scales_with_particles() {
        let mut small = GMapping::new(
            small_cfg(5, 1),
            Pose2D::new(4.0, 4.0, 0.0),
            SimRng::seed_from_u64(4),
        );
        let mut large = GMapping::new(
            small_cfg(20, 1),
            Pose2D::new(4.0, 4.0, 0.0),
            SimRng::seed_from_u64(4),
        );
        let w_small = small
            .process(&odom_at(0, Pose2D::new(4.0, 4.0, 0.0)), &scan_at(0, 2.0))
            .work;
        let w_large = large
            .process(&odom_at(0, Pose2D::new(4.0, 4.0, 0.0)), &scan_at(0, 2.0))
            .work;
        let ratio = w_large.parallel_cycles / w_small.parallel_cycles;
        assert!((3.0..5.5).contains(&ratio), "ratio {ratio} should be ≈ 4");
        assert_eq!(w_large.parallel_items, 20);
    }

    #[test]
    fn neff_stays_within_bounds_and_resampling_fires_eventually() {
        let cfg = SlamConfig {
            score_gain: 0.3,
            ..small_cfg(12, 1)
        };
        let mut slam = GMapping::new(cfg, Pose2D::new(3.0, 4.0, 0.0), SimRng::seed_from_u64(5));
        let mut pose = Pose2D::new(3.0, 4.0, 0.0);
        let mut any_resample = false;
        for k in 0..30 {
            let out = slam.process(&odom_at(k * 200, pose), &room_scan(k * 200, pose));
            assert!(
                out.neff >= 1.0 - 1e-9 && out.neff <= 12.0 + 1e-9,
                "neff {}",
                out.neff
            );
            any_resample |= out.resampled;
            pose = Pose2D::new(pose.x + 0.05, pose.y, 0.0);
        }
        assert!(any_resample, "weights should eventually degenerate");
        assert!(slam.resample_count > 0);
    }

    #[test]
    fn confidence_tracks_neff() {
        let mut slam = GMapping::new(
            small_cfg(10, 1),
            Pose2D::new(4.0, 4.0, 0.0),
            SimRng::seed_from_u64(6),
        );
        let out = slam.process(&odom_at(0, Pose2D::new(4.0, 4.0, 0.0)), &scan_at(0, 2.0));
        assert!((0.0..=1.0).contains(&out.pose.confidence));
    }

    #[test]
    fn fidelity_knob_shrinks_work_and_preserves_best_pose() {
        let start = Pose2D::new(4.0, 4.0, 0.0);
        let mut slam = GMapping::new(small_cfg(10, 1), start, SimRng::seed_from_u64(9));
        for k in 0..4 {
            slam.process(&odom_at(k * 200, start), &scan_at(k * 200, 2.0));
        }
        let full_pose = slam.best_pose();
        slam.set_active_particles(2);
        assert_eq!(slam.active_particles(), 2);
        assert_eq!(
            slam.best_pose(),
            full_pose,
            "shrink keeps the best particle"
        );
        let degraded = slam.process(&odom_at(800, start), &scan_at(800, 2.0));
        assert_eq!(degraded.work.parallel_items, 2);
        // Restore: all ten slots participate again and the filter
        // still tracks.
        slam.set_active_particles(10);
        let restored = slam.process(&odom_at(1_000, start), &scan_at(1_000, 2.0));
        assert_eq!(restored.work.parallel_items, 10);
        assert!(slam.best_pose().distance(start) < 0.2);
        // Clamped at both ends.
        slam.set_active_particles(0);
        assert_eq!(slam.active_particles(), 1);
        slam.set_active_particles(99);
        assert_eq!(slam.active_particles(), 10);
    }

    #[test]
    fn full_fidelity_knob_is_a_noop() {
        let start = Pose2D::new(4.0, 4.0, 0.0);
        let run = |touch: bool| {
            let mut slam = GMapping::new(small_cfg(8, 1), start, SimRng::seed_from_u64(11));
            if touch {
                slam.set_active_particles(8);
            }
            let mut pose = start;
            for k in 0..6 {
                slam.process(&odom_at(k * 200, pose), &room_scan(k * 200, pose));
                pose = Pose2D::new(pose.x + 0.05, pose.y, 0.0);
            }
            slam.best_pose()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn set_threads_changes_executor() {
        let mut slam = GMapping::new(
            small_cfg(4, 1),
            Pose2D::new(4.0, 4.0, 0.0),
            SimRng::seed_from_u64(8),
        );
        slam.set_threads(8);
        // Still functions after the switch.
        let out = slam.process(&odom_at(0, Pose2D::new(4.0, 4.0, 0.0)), &scan_at(0, 2.0));
        assert!(out.work.total_cycles() > 0.0);
    }
}
