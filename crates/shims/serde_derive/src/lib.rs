//! In-tree subset of the `serde_derive` proc-macro crate.
//!
//! Hand-parses the item's token stream (no `syn`/`quote`, keeping the
//! shim dependency-free) and emits impls tailored to the binary codec
//! in `lgv-middleware`: structs serialize as flat field sequences and
//! enums as a `u32` variant index followed by the variant's fields, so
//! the generated `Deserialize` visitors are sequence-only and dispatch
//! variants by index. Serde field/variant attributes (`#[serde(...)]`)
//! are not supported; generic enums are rejected.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::ser::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim emitted invalid Serialize impl")
}

/// Derive `serde::de::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing

struct Item {
    name: String,
    /// Type-parameter names (lifetimes and const params unsupported).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type PeekIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut PeekIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };

    let mut generics = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1u32;
        let mut expect_name = true;
        while depth > 0 {
            match iter.next().expect("serde_derive shim: unclosed generics") {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_name = true,
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_name = false,
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    iter.next(); // lifetime name; not a type parameter
                    expect_name = false;
                }
                TokenTree::Ident(id) if expect_name => {
                    if id.to_string() == "const" {
                        panic!("serde_derive shim: const generics are not supported");
                    }
                    generics.push(id.to_string());
                    expect_name = false;
                }
                _ => {}
            }
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!("serde_derive shim: `where` clauses are not supported")
            }
            other => panic!("serde_derive shim: unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
                }
                // Skip the type; only `<`/`>` nest at this level
                // (parenthesized types arrive as atomic groups).
                let mut depth = 0i32;
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                        Some(_) => {}
                    }
                }
            }
            other => panic!("serde_derive shim: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut item_open = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                item_open = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if item_open {
                    count += 1;
                    item_open = false;
                }
            }
            _ => item_open = true,
        }
    }
    if item_open {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        Shape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        iter.next();
                        Shape::Struct(fields)
                    }
                    _ => Shape::Unit,
                };
                // Skip to the separating comma (covers `= discr` too).
                for tt in iter.by_ref() {
                    if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(Variant { name, shape });
            }
            other => panic!("serde_derive shim: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen

fn join(parts: &[String], sep: &str) -> String {
    parts.join(sep)
}

/// `(impl_generics, ty_generics)` for a `Serialize` impl.
fn ser_generics(generics: &[String]) -> (String, String) {
    if generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::ser::Serialize"))
            .collect();
        (
            format!("<{}>", join(&bounded, ", ")),
            format!("<{}>", join(generics, ", ")),
        )
    }
}

/// `(impl_generics_with_de, ty_generics)` for a `Deserialize` impl.
fn de_generics(generics: &[String]) -> (String, String) {
    if generics.is_empty() {
        ("<'de>".to_string(), String::new())
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::de::Deserialize<'de>"))
            .collect();
        (
            format!("<'de, {}>", join(&bounded, ", ")),
            format!("<{}>", join(generics, ", ")),
        )
    }
}

fn quoted_list(names: &[String]) -> String {
    let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
    join(&quoted, ", ")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let (ig, tg) = ser_generics(&item.generics);
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut lines = String::new();
            for f in fields {
                lines.push_str(&format!(
                    "        __st.serialize_field(\"{f}\", &self.{f})?;\n"
                ));
            }
            format!(
                "        use ::serde::ser::SerializeStruct as _;\n\
                 \x20       let mut __st = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n\
                 {lines}\
                 \x20       __st.end()\n",
                n = fields.len()
            )
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => format!(
            "        ::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"
        ),
        Kind::TupleStruct(1) => format!(
            "        ::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
        ),
        Kind::TupleStruct(n) => {
            let mut lines = String::new();
            for i in 0..*n {
                lines.push_str(&format!("        __st.serialize_field(&self.{i})?;\n"));
            }
            format!(
                "        use ::serde::ser::SerializeTupleStruct as _;\n\
                 \x20       let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n\
                 {lines}\
                 \x20       __st.end()\n"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "            {name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {i}u32, \"{vname}\"),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "            {name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut lines = String::new();
                        for b in &binds {
                            lines.push_str(&format!(
                                "                __st.serialize_field({b})?;\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "            {name}::{vname}({binds}) => {{\n\
                             \x20               use ::serde::ser::SerializeTupleVariant as _;\n\
                             \x20               let mut __st = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", {n}usize)?;\n\
                             {lines}\
                             \x20               __st.end()\n\
                             \x20           }}\n",
                            binds = join(&binds, ", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let mut lines = String::new();
                        for f in fields {
                            lines.push_str(&format!(
                                "                __st.serialize_field(\"{f}\", {f})?;\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "            {name}::{vname} {{ {binds} }} => {{\n\
                             \x20               use ::serde::ser::SerializeStructVariant as _;\n\
                             \x20               let mut __st = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", {n}usize)?;\n\
                             {lines}\
                             \x20               __st.end()\n\
                             \x20           }}\n",
                            binds = join(fields, ", "),
                            n = fields.len()
                        ));
                    }
                }
            }
            format!("        match self {{\n{arms}        }}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::ser::Serialize for {name}{tg} {{\n\
         \x20   fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         \x20   }}\n\
         }}\n"
    )
}

/// One `let __fieldN = …` line for a sequence-driven visitor.
fn seq_field_let(i: usize, expected: &str) -> String {
    format!(
        "                let __field{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
         \x20                   ::core::option::Option::Some(__v) => __v,\n\
         \x20                   ::core::option::Option::None => return ::core::result::Result::Err(<__A::Error as ::serde::de::Error>::invalid_length({i}usize, &\"{expected}\")),\n\
         \x20               }};\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (ig, tg) = de_generics(&item.generics);
    let (visitor_decl, visitor_ty, visitor_init) = if item.generics.is_empty() {
        (
            "struct __Visitor;".to_string(),
            "__Visitor".to_string(),
            "__Visitor".to_string(),
        )
    } else {
        let params = join(&item.generics, ", ");
        (
            format!("struct __Visitor<{params}>(::core::marker::PhantomData<({params})>);"),
            format!("__Visitor<{params}>"),
            "__Visitor(::core::marker::PhantomData)".to_string(),
        )
    };

    let (visitor_body, driver) = match &item.kind {
        Kind::NamedStruct(fields) => {
            let n = fields.len();
            let expected = format!("struct {name} with {n} elements");
            let mut lets = String::new();
            let mut inits = Vec::new();
            for (i, f) in fields.iter().enumerate() {
                lets.push_str(&seq_field_let(i, &expected));
                inits.push(format!("{f}: __field{i}"));
            }
            let body = format!(
                "            fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 \x20               __f.write_str(\"struct {name}\")\n\
                 \x20           }}\n\
                 \x20           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 {lets}\
                 \x20               ::core::result::Result::Ok({name} {{ {inits} }})\n\
                 \x20           }}\n",
                inits = join(&inits, ", ")
            );
            let driver = format!(
                "        ::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{fields}], {visitor_init})\n",
                fields = quoted_list(fields)
            );
            (body, driver)
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => {
            let body = format!(
                "            fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 \x20               __f.write_str(\"unit struct {name}\")\n\
                 \x20           }}\n\
                 \x20           fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                 \x20               ::core::result::Result::Ok({name})\n\
                 \x20           }}\n"
            );
            let driver = format!(
                "        ::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", {visitor_init})\n"
            );
            (body, driver)
        }
        Kind::TupleStruct(1) => {
            let body = format!(
                "            fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 \x20               __f.write_str(\"newtype struct {name}\")\n\
                 \x20           }}\n\
                 \x20           fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2) -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                 \x20               ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                 \x20           }}\n"
            );
            let driver = format!(
                "        ::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", {visitor_init})\n"
            );
            (body, driver)
        }
        Kind::TupleStruct(n) => {
            let expected = format!("tuple struct {name} with {n} elements");
            let mut lets = String::new();
            let mut inits = Vec::new();
            for i in 0..*n {
                lets.push_str(&seq_field_let(i, &expected));
                inits.push(format!("__field{i}"));
            }
            let body = format!(
                "            fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 \x20               __f.write_str(\"tuple struct {name}\")\n\
                 \x20           }}\n\
                 \x20           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 {lets}\
                 \x20               ::core::result::Result::Ok({name}({inits}))\n\
                 \x20           }}\n",
                inits = join(&inits, ", ")
            );
            let driver = format!(
                "        ::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, {visitor_init})\n"
            );
            (body, driver)
        }
        Kind::Enum(variants) => {
            if !item.generics.is_empty() {
                panic!("serde_derive shim: generic enums are not supported");
            }
            let vnames: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "                    {i}u32 => {{\n\
                         \x20                       ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         \x20                       ::core::result::Result::Ok({name}::{vname})\n\
                         \x20                   }}\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "                    {i}u32 => ::core::result::Result::Ok({name}::{vname}(::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let expected = format!("tuple variant {name}::{vname} with {n} elements");
                        let mut lets = String::new();
                        let mut inits = Vec::new();
                        for k in 0..*n {
                            lets.push_str(&seq_field_let(k, &expected));
                            inits.push(format!("__field{k}"));
                        }
                        arms.push_str(&format!(
                            "                    {i}u32 => {{\n\
                             \x20                       struct __TupleVisitor{i};\n\
                             \x20                       impl<'de> ::serde::de::Visitor<'de> for __TupleVisitor{i} {{\n\
                             \x20                           type Value = {name};\n\
                             \x20                           fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                             \x20                               __f.write_str(\"tuple variant {name}::{vname}\")\n\
                             \x20                           }}\n\
                             \x20                           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                             {lets}\
                             \x20                               ::core::result::Result::Ok({name}::{vname}({inits}))\n\
                             \x20                           }}\n\
                             \x20                       }}\n\
                             \x20                       ::serde::de::VariantAccess::tuple_variant(__variant, {n}usize, __TupleVisitor{i})\n\
                             \x20                   }}\n",
                            inits = join(&inits, ", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let n = fields.len();
                        let expected =
                            format!("struct variant {name}::{vname} with {n} elements");
                        let mut lets = String::new();
                        let mut inits = Vec::new();
                        for (k, f) in fields.iter().enumerate() {
                            lets.push_str(&seq_field_let(k, &expected));
                            inits.push(format!("{f}: __field{k}"));
                        }
                        arms.push_str(&format!(
                            "                    {i}u32 => {{\n\
                             \x20                       struct __StructVisitor{i};\n\
                             \x20                       impl<'de> ::serde::de::Visitor<'de> for __StructVisitor{i} {{\n\
                             \x20                           type Value = {name};\n\
                             \x20                           fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                             \x20                               __f.write_str(\"struct variant {name}::{vname}\")\n\
                             \x20                           }}\n\
                             \x20                           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                             {lets}\
                             \x20                               ::core::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             \x20                           }}\n\
                             \x20                       }}\n\
                             \x20                       ::serde::de::VariantAccess::struct_variant(__variant, &[{fields}], __StructVisitor{i})\n\
                             \x20                   }}\n",
                            inits = join(&inits, ", "),
                            fields = quoted_list(fields)
                        ));
                    }
                }
            }
            let body = format!(
                "            fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 \x20               __f.write_str(\"enum {name}\")\n\
                 \x20           }}\n\
                 \x20           fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 \x20               let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
                 \x20               match __idx {{\n\
                 {arms}\
                 \x20                   _ => ::core::result::Result::Err(<__A::Error as ::serde::de::Error>::unknown_variant(&::std::string::ToString::to_string(&__idx), &[{vlist}])),\n\
                 \x20               }}\n\
                 \x20           }}\n",
                vlist = quoted_list(&vnames)
            );
            let driver = format!(
                "        ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{vlist}], {visitor_init})\n",
                vlist = quoted_list(&vnames)
            );
            (body, driver)
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::de::Deserialize<'de> for {name}{tg} {{\n\
         \x20   fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         \x20       {visitor_decl}\n\
         \x20       impl{ig} ::serde::de::Visitor<'de> for {visitor_ty} {{\n\
         \x20           type Value = {name}{tg};\n\
         {visitor_body}\
         \x20       }}\n\
         {driver}\
         \x20   }}\n\
         }}\n"
    )
}
