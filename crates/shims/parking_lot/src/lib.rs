//! In-tree subset of the `parking_lot` crate: a non-poisoning
//! [`Mutex`] and [`RwLock`] over the std primitives. A poisoned std
//! lock (a writer panicked) is transparently recovered, which matches
//! `parking_lot`'s no-poisoning semantics.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
