//! In-tree subset of the `crossbeam` crate: scoped threads with
//! crossbeam's panic-capturing [`thread::scope`] signature, implemented
//! over `std::thread::scope`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a joined scoped thread: `Err` carries the
    /// panic payload if a worker panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to spawn scoped threads; passed to the [`scope`] closure
    /// and to every spawned worker (crossbeam lets workers spawn
    /// siblings, hence the `|_|` argument in worker closures).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The worker may borrow from
        /// the environment (`'env`) and is joined before [`scope`]
        /// returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` = panic
        /// payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope handle; all threads spawned in the scope
    /// are joined before this returns. Returns `Err` with the panic
    /// payload if the closure or any unjoined worker panicked, like
    /// crossbeam (std's scope would propagate the panic instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_handle_returns_value() {
        let r = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
