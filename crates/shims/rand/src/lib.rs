//! In-tree subset of the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, the algorithm the real
//! `SmallRng` uses on 64-bit platforms) plus the [`Rng`], [`RngExt`],
//! and [`SeedableRng`] traits with the methods this workspace uses:
//! `next_u64`, `random::<f64>()`, and `random_range` over `f64` and
//! integer ranges. Statistical quality matters here — `lgv-types`
//! asserts Gaussian moments and Bernoulli frequencies on top of this
//! generator — so the implementation is a faithful xoshiro256++ with
//! SplitMix64 seeding, not a toy LCG.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::Range;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-number source.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Sample a value from its canonical uniform distribution
    /// (`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: Rng> RngExt for T {}

/// Types with a canonical uniform distribution for [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw one sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        // May round up to `end` for extreme spans; clamp like rand does.
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

macro_rules! sample_range_uint {
    ($($ty:ty),*) => {
        $(impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift; bias is < 2^-64 per draw,
                // far below what any test here can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        })*
    };
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($ty:ty),*) => {
        $(impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i64).wrapping_add(hi as i64)) as $ty
            }
        })*
    };
}
sample_range_int!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small fast generator: xoshiro256++ with SplitMix64 seeding, the
    /// same algorithm the real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the full state,
            // guaranteeing a non-zero state for every seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
