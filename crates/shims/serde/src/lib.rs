//! In-tree subset of the `serde` crate.
//!
//! Implements the serde data model — the [`ser`] and [`de`] trait
//! families plus impls for the std types this workspace serializes —
//! against the exact surface exercised by `lgv-middleware`'s binary
//! codec and the derive macros in the sibling `serde_derive` shim.
//!
//! Known deviations from the real crate, all irrelevant to this
//! workspace but documented for honesty:
//!
//! * deserializing `&str` always returns an interned leaked copy
//!   rather than borrowing from the input, so `&'static str` struct
//!   fields (`TopicName`, `Deployment::label`, `LgvProfile::name`)
//!   deserialize without a `'de: 'static` bound;
//! * `i128`/`u128` are unsupported;
//! * self-describing-format hooks (`deserialize_any` content buffering,
//!   untagged enums, serde attributes) are absent.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
