//! Serialization half of the serde data model.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde output format.
///
/// Mirrors the real trait: one method per data-model type, with
/// compound types returning sub-serializers.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct (`struct Marker;`).
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a single-field tuple struct (`struct Wrapper(T)`).
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a single-field enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a fixed-length heterogeneous tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a multi-field tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a multi-field tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (e.g. JSON). Binary formats
    /// override this to `false`.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Sub-serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serialize a key-value pair.
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.

macro_rules! ser_prim {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

ser_prim! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

// Arrays serialize as fixed-length tuples, matching real serde.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

macro_rules! ser_tuple {
    ($($len:literal => ($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        })*
    };
}

ser_tuple! {
    1 => (A.0)
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
    5 => (A.0, B.1, C.2, D.3, E.4)
    6 => (A.0, B.1, C.2, D.3, E.4, F.5)
    7 => (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    8 => (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}
